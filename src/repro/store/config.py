"""Store resolution: ``--store DIR`` → ``$REPRO_STORE`` → off.

Mirrors how the worker count and fault profile resolve: an explicit
argument wins, the environment variable is the ambient default, and with
neither the store is simply absent — every pipeline and experiment then
behaves exactly as before the store existed (goldens untouched).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.scope import Observer
from repro.store.checkpoint import ArtifactStore

#: Environment variable consulted when no explicit ``--store`` is given.
STORE_ENV = "REPRO_STORE"


def resolve_store_dir(explicit: Optional[str] = None) -> Optional[str]:
    """Store directory: explicit argument, else ``$REPRO_STORE``, else None."""
    if explicit:
        return explicit
    return os.environ.get(STORE_ENV, "").strip() or None


def open_store(
    explicit: Optional[str] = None, observer: Optional[Observer] = None
) -> Optional[ArtifactStore]:
    """An :class:`ArtifactStore` at the resolved directory, or None (off)."""
    directory = resolve_store_dir(explicit)
    if directory is None:
        return None
    return ArtifactStore(directory, observer=observer)
