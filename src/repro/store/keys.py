"""Cache-key derivation: configuration + code → a stable digest.

A :class:`CacheKey` answers "may this cached artifact stand in for a
recompute?".  It must change whenever anything that could change the
artifact changes — the seed, any population/scan/fault/worker setting,
the upstream artifacts feeding the stage, the RNG cursor the stage starts
from, or the code implementing it — and must *not* change under
irrelevant permutations such as dict insertion order.

Code is folded in as a fingerprint: the SHA-256 of the source bytes of
the modules a stage names.  Editing any of those modules silently
invalidates every artifact the stage ever produced, which is the only
safe default for a cache that feeds published numbers.
"""

from __future__ import annotations

import enum
import hashlib
import importlib
import pathlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, Mapping, Tuple

from repro.errors import StoreError
from repro.store.cas import canonical_json_bytes


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to plain JSON types with deterministic ordering.

    Mappings are key-sorted (insertion order never matters), tuples become
    lists, sets/frozensets become sorted lists, and enums collapse to
    their ``value``.  Anything else that is not a JSON scalar is rejected
    — a key must never depend on an object's ``repr`` or identity.
    """
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): canonicalize(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [canonicalize(item) for item in value]
        return sorted(items, key=lambda item: canonical_json_bytes({"k": item}))
    raise StoreError(
        f"cache-key field of type {type(value).__name__} is not canonicalizable"
    )


@lru_cache(maxsize=None)
def code_fingerprint(modules: Tuple[str, ...]) -> str:
    """SHA-256 over the source bytes of the named modules.

    The module list is hashed in sorted order with name separators, so the
    fingerprint is independent of declaration order but sensitive to both
    renames and content changes.  Cached per-process: stage wrappers call
    this on every stage execution.
    """
    hasher = hashlib.sha256()
    for name in sorted(set(modules)):
        try:
            module = importlib.import_module(name)
        except ImportError as exc:
            raise StoreError(f"cannot fingerprint module {name!r}: {exc}") from exc
        source = getattr(module, "__file__", None)
        if source is None:
            raise StoreError(f"module {name!r} has no source file to fingerprint")
        hasher.update(name.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(pathlib.Path(source).read_bytes())
        hasher.update(b"\x00")
    return hasher.hexdigest()


@dataclass(frozen=True)
class CacheKey:
    """Everything that decides whether a cached stage artifact is reusable."""

    stage: str
    config: Mapping[str, Any]
    fingerprint: str
    #: Content digests of the upstream artifacts this stage consumed.
    upstream: Tuple[str, ...] = ()
    #: Digest of the RNG/attempt cursor the stage starts from (or "").
    cursor: str = ""
    _canonical: Dict[str, Any] = field(
        default=None, init=False, repr=False, compare=False  # type: ignore[assignment]
    )

    def canonical(self) -> Dict[str, Any]:
        """The key's canonical JSON form (what gets hashed and ledgered)."""
        if self._canonical is None:
            object.__setattr__(
                self,
                "_canonical",
                {
                    "stage": self.stage,
                    "config": canonicalize(self.config),
                    "fingerprint": self.fingerprint,
                    "upstream": list(self.upstream),
                    "cursor": self.cursor,
                },
            )
        return self._canonical

    def digest(self) -> str:
        """SHA-256 hex digest identifying this key."""
        return hashlib.sha256(canonical_json_bytes(self.canonical())).hexdigest()
