"""Stage checkpointing: the miss→compute→put / hit→load→restore wrapper.

A :class:`Stage` names one pipeline step, the modules whose source feeds
its code fingerprint, and the encode/decode pair that round-trips its
artifact through JSON (supplied by the caller — the store never imports
measurement code).  :meth:`ArtifactStore.run` then keys an execution on
the full :class:`~repro.store.keys.CacheKey` — configuration, code
fingerprint, upstream artifact digests, and the pre-stage RNG cursor —
and either replays the cached artifact or computes and records it.

The cursor is what makes mixed warm/cold runs byte-identical to cold
ones: stages share stateful RNG streams (the transport's circuit noise,
the fault plane's attempt counters), so each checkpoint stores the
post-stage cursor alongside the artifact and a cache hit *restores* it,
leaving the world exactly as if the stage had run.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro.errors import ReproError, StoreError
from repro.obs.scope import Observer, ensure_observer
from repro.store.cas import ContentStore, atomic_write_bytes, canonical_json_bytes, digest_of
from repro.store.keys import CacheKey, code_fingerprint
from repro.store.ledger import Ledger

PathLike = Union[str, pathlib.Path]

_PAYLOAD_SCHEMA = 1

#: Crash-point labels the store hits on every miss commit (spelled here,
#: not imported from ``repro.supervise`` — the dependency points up).
#: ``store:commit`` fires after the object lands in the CAS but before
#: the index entry names it: a death there leaves an unindexed object the
#: recompute re-puts idempotently.  ``store:ledger:append`` fires after
#: the index write but before the audit line: a death there makes the
#: next run a hit whose ledger line simply records the hit.
STORE_COMMIT_POINT = "store:commit"
LEDGER_APPEND_POINT = "store:ledger:append"


class StateCursor:
    """Capture/restore hooks for the mutable state a stage advances.

    Subclasses (defined next to the state they snapshot — e.g. the
    pipeline's transport cursor) return a JSON-compatible dict from
    :meth:`capture` and accept it back in :meth:`restore`.
    """

    def capture(self) -> Dict[str, Any]:
        raise NotImplementedError

    def restore(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Stage:
    """One checkpointable pipeline step.

    ``modules`` are dotted module names hashed into the stage's code
    fingerprint; list every module whose behaviour the artifact depends
    on.  ``encode``/``decode`` round-trip the artifact through plain JSON
    (usually a :mod:`repro.io` pair).
    """

    name: str
    modules: Tuple[str, ...]
    encode: Callable[[Any], Dict[str, Any]]
    decode: Callable[[Dict[str, Any]], Any]

    def fingerprint(self) -> str:
        """The stage's current code fingerprint."""
        return code_fingerprint(self.modules)


class ArtifactStore:
    """A store directory: content objects + per-stage index + run ledger.

    Layout::

        <root>/objects/<aa>/<sha256>.json   content-addressed artifacts
        <root>/index/<stage>/<key>.json     cache key → object digest
        <root>/ledger.jsonl                 append-only hit/miss audit log

    ``observer`` (assignable after construction) receives
    ``store_hits_total`` / ``store_misses_total`` / ``store_corrupt_total``
    per stage plus byte counters, so cache behaviour lands in the same
    deterministic snapshot as everything else.
    """

    def __init__(
        self,
        root: PathLike,
        observer: Optional[Observer] = None,
        run_id: Optional[str] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.cas = ContentStore(self.root)
        self.ledger = Ledger(self.root / "ledger.jsonl")
        self.index_dir = self.root / "index"
        self.observer = ensure_observer(observer)
        #: Assignable crash hook (``repro.supervise`` threads its
        #: :class:`~repro.supervise.crashplan.CrashPoints` in here); called
        #: with a label at each commit point, may raise to simulate death.
        self.crash_point: Optional[Callable[[str], None]] = None
        #: Ledger run id.  Auto-allocated (``run-NNNNNN``) unless the caller
        #: pins one — the service plane pins ``epoch-NNNNNN`` so every
        #: incarnation of an epoch (crash restarts, warm re-runs) shares one
        #: ledgered run and retention can reason per epoch.
        self.run_id = run_id if run_id is not None else self.ledger.next_run_id()
        #: stage name → content digest of its most recent artifact (this
        #: process), which is how downstream stages chain upstream digests
        #: into their keys.
        self.last_digests: Dict[str, str] = {}

    # -- key assembly ------------------------------------------------------ #

    def _resolve_upstream(self, upstream: Sequence[str]) -> Tuple[str, ...]:
        digests = []
        for name in upstream:
            digest = self.last_digests.get(name)
            if digest is None:
                raise StoreError(
                    f"upstream stage {name!r} has not run through this store; "
                    "run stages in dependency order"
                )
            digests.append(f"{name}={digest}")
        return tuple(digests)

    def index_path(self, stage_name: str, key_digest: str) -> pathlib.Path:
        """Where the index entry for (stage, key) lives."""
        return self.index_dir / stage_name / f"{key_digest}.json"

    # -- the checkpoint protocol ------------------------------------------- #

    def run(
        self,
        stage: Stage,
        config: Dict[str, Any],
        compute: Callable[[], Any],
        cursor: Optional[StateCursor] = None,
        upstream: Sequence[str] = (),
    ) -> Any:
        """Return the stage artifact, from cache when the key matches.

        On a hit the artifact is decoded, the post-stage cursor restored,
        and the hit ledgered.  On a miss (or on detected corruption, which
        is counted and then treated as a miss) ``compute()`` runs, the
        artifact and post-cursor are stored atomically, and the miss is
        ledgered with the simulated seconds the compute took.
        """
        cursor_digest = ""
        if cursor is not None:
            cursor_digest = digest_of({"cursor": cursor.capture()})
        key = CacheKey(
            stage=stage.name,
            config=config,
            fingerprint=stage.fingerprint(),
            upstream=self._resolve_upstream(upstream),
            cursor=cursor_digest,
        )
        key_digest = key.digest()

        loaded = self._load(stage, key_digest)
        if loaded is not None:
            try:
                obj_digest, payload = loaded
                artifact = stage.decode(payload["artifact"])
                if cursor is not None and payload.get("cursor_after") is not None:
                    cursor.restore(payload["cursor_after"])
            except (ReproError, ValueError, KeyError, TypeError):
                # The object decoded as JSON but no longer round-trips as
                # this stage's artifact (e.g. an io schema bump): corrupt.
                self.observer.count("store_corrupt_total", stage=stage.name)
                self.ledger.append(self.run_id, stage.name, "corrupt", key_digest)
                loaded = None
        if loaded is not None:
            size = self.cas.size_of(obj_digest)
            self.observer.count("store_hits_total", stage=stage.name)
            self.observer.count("store_bytes_read_total", amount=size)
            self.ledger.append(
                self.run_id, stage.name, "hit", key_digest, obj_digest, size=size
            )
            self.last_digests[stage.name] = obj_digest
            return artifact

        sim_before = self._sim_seconds()
        artifact = compute()
        sim_spent = max(0, self._sim_seconds() - sim_before)
        payload = {
            "schema": _PAYLOAD_SCHEMA,
            "kind": "stage-artifact",
            "stage": stage.name,
            "key": key.canonical(),
            "artifact": stage.encode(artifact),
            "cursor_after": cursor.capture() if cursor is not None else None,
        }
        obj_digest = self.cas.put(payload)
        if self.crash_point is not None:
            self.crash_point(STORE_COMMIT_POINT)
        entry = {
            "schema": _PAYLOAD_SCHEMA,
            "kind": "store-index",
            "stage": stage.name,
            "key_digest": key_digest,
            "object": obj_digest,
        }
        atomic_write_bytes(
            self.index_path(stage.name, key_digest), canonical_json_bytes(entry)
        )
        if self.crash_point is not None:
            self.crash_point(LEDGER_APPEND_POINT)
        size = self.cas.size_of(obj_digest)
        self.observer.count("store_misses_total", stage=stage.name)
        self.observer.count("store_bytes_written_total", amount=size)
        self.ledger.append(
            self.run_id,
            stage.name,
            "miss",
            key_digest,
            obj_digest,
            sim_seconds=sim_spent,
            size=size,
        )
        self.last_digests[stage.name] = obj_digest
        return artifact

    def _load(
        self, stage: Stage, key_digest: str
    ) -> Optional[Tuple[str, Dict[str, Any]]]:
        """The (object digest, payload) for a key, or None on miss/corruption.

        Corruption anywhere on the load path — unreadable index entry,
        missing or bit-rotted object, a payload that no longer matches the
        stage — is *counted and ledgered*, then reported as a miss so the
        stage recomputes and overwrites the damage.
        """
        index_path = self.index_path(stage.name, key_digest)
        if not index_path.exists():
            return None
        obj_digest = ""
        try:
            entry = json.loads(index_path.read_text(encoding="utf-8"))
            obj_digest = entry["object"]
            payload = self.cas.get(obj_digest)
            if payload.get("stage") != stage.name or "artifact" not in payload:
                raise StoreError(
                    f"object {obj_digest} is not a {stage.name!r} stage artifact"
                )
            return obj_digest, payload
        except (ReproError, ValueError, KeyError, TypeError):
            self.observer.count("store_corrupt_total", stage=stage.name)
            self.ledger.append(self.run_id, stage.name, "corrupt", key_digest)
            # Drop the damaged object: ``put`` skips writing when a file
            # already sits at the digest path, so leaving the bad bytes in
            # place would make the recompute's store a silent no-op.  A
            # digest that is not well-formed names no file to drop.
            if (
                isinstance(obj_digest, str)
                and len(obj_digest) == 64
                and set(obj_digest) <= set("0123456789abcdef")
            ):
                self.cas.delete(obj_digest)
            return None

    def _sim_seconds(self) -> int:
        """Simulated seconds visible on the observer right now."""
        observer = self.observer
        if not observer.enabled:
            return 0
        current = observer.current_span
        if current is not None:
            return current.duration
        return sum(span.duration for span in observer.spans)
