"""The append-only run ledger.

One JSONL line per stage event: which run, which stage, which cache key,
hit or miss or corrupt, how many simulated seconds the compute took, and
how many bytes moved.  The ledger is the store's audit trail — ``repro
store ls`` renders it, and the warm-cache CI job proves a re-run
recomputed nothing by asserting its latest run contains zero misses.

Run identifiers are deterministic (``run-000001``, ``run-000002``, …):
the next index is one past the highest already present, so ledgers from
repeated runs diff cleanly and no wall-clock ever leaks into the file.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings
from typing import Any, Dict, Iterator, List, Union

from repro.errors import StoreError
from repro.store.cas import canonical_json_bytes

PathLike = Union[str, pathlib.Path]

#: Events a ledger line may carry.
EVENTS = ("hit", "miss", "corrupt")


class Ledger:
    """Append-only JSONL event log for one store directory."""

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)

    def append(
        self,
        run: str,
        stage: str,
        event: str,
        key: str,
        obj: str = "",
        sim_seconds: int = 0,
        size: int = 0,
    ) -> None:
        """Record one stage event (one canonical JSON line)."""
        if event not in EVENTS:
            raise StoreError(f"unknown ledger event {event!r} (want one of {EVENTS})")
        record = {
            "run": run,
            "stage": stage,
            "event": event,
            "key": key,
            "object": obj,
            "sim_seconds": sim_seconds,
            "bytes": size,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._heal_torn_tail()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(canonical_json_bytes(record).decode("utf-8") + "\n")
            # fsync the line: a crash right after append must not be able
            # to lose an event whose artifact already landed on disk.
            handle.flush()
            os.fsync(handle.fileno())

    def _heal_torn_tail(self) -> None:
        """Truncate a torn final line so the next append starts clean.

        Without this, appending after a mid-line crash would concatenate
        the new record onto the torn fragment — turning a recoverable torn
        tail into unrecoverable mid-file corruption.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1
        warnings.warn(
            f"ledger {self.path} ends in a torn line "
            "(writer killed mid-append); truncating it before appending",
            stacklevel=3,
        )
        with self.path.open("rb+") as handle:
            handle.truncate(keep)

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Parsed ledger lines in file order.

        A *torn tail* — a final line with no trailing newline, i.e. a
        writer killed mid-append — is skipped with a warning: the event it
        described never finished happening.  A malformed line anywhere
        else (or a final line that does end in a newline) raises — that is
        corruption, not an interrupted append.
        """
        if not self.path.exists():
            return
        text = self.path.read_text(encoding="utf-8")
        lines = text.splitlines()
        if text and not text.endswith("\n"):
            # No trailing newline = the append never committed, even if
            # the fragment happens to parse; :meth:`append` will truncate
            # it, so counting it here would make run ids non-monotonic.
            warnings.warn(
                f"ledger {self.path} ends in a torn line "
                "(writer killed mid-append); skipping it",
                stacklevel=2,
            )
            lines = lines[:-1]
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except ValueError as exc:
                raise StoreError(
                    f"ledger {self.path} line {index + 1} is corrupt: {exc}"
                ) from exc

    def next_run_id(self) -> str:
        """A fresh deterministic run identifier."""
        highest = 0
        for record in self.entries():
            run = str(record.get("run", ""))
            if run.startswith("run-"):
                try:
                    highest = max(highest, int(run[4:]))
                except ValueError:
                    continue
        return f"run-{highest + 1:06d}"

    def run_summaries(self) -> List[Dict[str, Any]]:
        """Per-run totals in first-appearance order.

        Each summary counts hits/misses/corruptions, the stages touched,
        simulated seconds spent computing, and bytes written.
        """
        order: List[str] = []
        by_run: Dict[str, Dict[str, Any]] = {}
        for record in self.entries():
            run = str(record.get("run", "?"))
            if run not in by_run:
                order.append(run)
                by_run[run] = {
                    "run": run,
                    "hits": 0,
                    "misses": 0,
                    "corrupt": 0,
                    "stages": [],
                    "sim_seconds": 0,
                    "bytes_written": 0,
                }
            summary = by_run[run]
            event = record.get("event")
            if event == "hit":
                summary["hits"] += 1
            elif event == "miss":
                summary["misses"] += 1
            elif event == "corrupt":
                summary["corrupt"] += 1
            stage = record.get("stage")
            if stage and stage not in summary["stages"]:
                summary["stages"].append(stage)
            summary["sim_seconds"] += int(record.get("sim_seconds", 0) or 0)
            if event == "miss":
                summary["bytes_written"] += int(record.get("bytes", 0) or 0)
        return [by_run[run] for run in order]
