"""Content-addressed artifact store with stage checkpoint/resume.

Every pipeline stage is a pure function of (seed, configuration, fault
profile, code); the store makes that purity pay: a stage's output is
serialised through :mod:`repro.io`, addressed by the SHA-256 of its
canonical JSON encoding, and keyed by a :class:`~repro.store.keys.CacheKey`
that folds in the run configuration, a per-stage code fingerprint, and the
pre-stage RNG cursor.  A warm re-run loads every artifact instead of
recomputing it — byte-identical at any worker count, clean or faulted —
and an append-only :class:`~repro.store.ledger.Ledger` records every
hit/miss so a run can prove it recomputed nothing.

Layering: the store is a substrate like ``parallel`` and ``obs`` — it
never imports measurement code.  Stage-specific encoders/decoders are
supplied by the caller (the pipeline), keeping the dependency arrows
pointing down.
"""

from repro.store.cas import (
    ContentStore,
    canonical_json_bytes,
    digest_of,
)
from repro.store.checkpoint import (
    LEDGER_APPEND_POINT,
    STORE_COMMIT_POINT,
    ArtifactStore,
    Stage,
    StateCursor,
)
from repro.store.config import STORE_ENV, open_store, resolve_store_dir
from repro.store.keys import CacheKey, canonicalize, code_fingerprint
from repro.store.ledger import Ledger

__all__ = [
    "ArtifactStore",
    "CacheKey",
    "ContentStore",
    "LEDGER_APPEND_POINT",
    "Ledger",
    "STORE_COMMIT_POINT",
    "STORE_ENV",
    "Stage",
    "StateCursor",
    "canonical_json_bytes",
    "canonicalize",
    "code_fingerprint",
    "digest_of",
    "open_store",
    "resolve_store_dir",
]
