"""The content-addressed object store.

Objects are JSON-compatible dictionaries.  Each is serialised to a
*canonical* encoding (sorted keys, minimal separators, no NaN/Infinity),
hashed with SHA-256, and written to ``objects/<aa>/<digest>.json`` via
write-to-temp-then-rename, so a crashed writer can never leave a
half-written object under its final name.  Loads re-hash the bytes and
raise :class:`~repro.errors.StoreCorruptionError` on any mismatch — bit
rot, truncation, or hand edits all surface instead of silently feeding a
wrong artifact back into an experiment.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Iterator, Union

from repro.errors import StoreCorruptionError, StoreError

PathLike = Union[str, pathlib.Path]

#: Subdirectory fan-out: two hex chars keeps directories small at any size.
_FANOUT = 2


def canonical_json_bytes(payload: Dict[str, Any]) -> bytes:
    """The one canonical byte encoding of a JSON-compatible payload.

    Keys are sorted recursively and separators are minimal, so logically
    equal payloads hash identically regardless of construction order.
    ``allow_nan=False`` keeps the encoding inside strict JSON — a NaN
    would round-trip as a parse error on some readers.
    """
    try:
        text = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise StoreError(f"payload is not canonically serialisable: {exc}") from exc
    return text.encode("utf-8")


def digest_of(payload: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical encoding of ``payload``."""
    return hashlib.sha256(canonical_json_bytes(payload)).hexdigest()


def atomic_write_bytes(path: pathlib.Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + ``os.replace``).

    The fsync before the rename is what makes the atomicity real: without
    it a crash after ``os.replace`` can leave the final name pointing at
    data the kernel never flushed — a torn write wearing an atomic name.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ContentStore:
    """SHA-256-addressed object storage under ``root/objects``."""

    def __init__(self, root: PathLike) -> None:
        self.root = pathlib.Path(root)
        self.objects_dir = self.root / "objects"

    def path_of(self, digest: str) -> pathlib.Path:
        """Where the object with ``digest`` lives (whether or not it exists)."""
        if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
            raise StoreError(f"not a SHA-256 hex digest: {digest!r}")
        return self.objects_dir / digest[:_FANOUT] / f"{digest}.json"

    def has(self, digest: str) -> bool:
        """Whether an object with ``digest`` is present (bytes unverified)."""
        return self.path_of(digest).exists()

    def put(self, payload: Dict[str, Any]) -> str:
        """Store ``payload``; returns its content address.

        Idempotent: an object that already exists is not rewritten (its
        name *is* its content hash, so equal digests mean equal bytes —
        unless corrupted, which :meth:`get` and :meth:`verify` detect).
        """
        data = canonical_json_bytes(payload)
        digest = hashlib.sha256(data).hexdigest()
        path = self.path_of(digest)
        if not path.exists():
            atomic_write_bytes(path, data)
        return digest

    def get(self, digest: str) -> Dict[str, Any]:
        """Load and verify the object at ``digest``.

        Raises :class:`StoreError` when absent and
        :class:`StoreCorruptionError` when the stored bytes do not hash
        back to ``digest`` or do not parse.
        """
        path = self.path_of(digest)
        try:
            data = path.read_bytes()
        except FileNotFoundError as exc:
            raise StoreError(f"no object {digest} in {self.objects_dir}") from exc
        actual = hashlib.sha256(data).hexdigest()
        if actual != digest:
            raise StoreCorruptionError(
                f"object {digest} is corrupt: bytes hash to {actual}",
                digest=digest,
            )
        try:
            return json.loads(data.decode("utf-8"))
        except ValueError as exc:
            raise StoreCorruptionError(
                f"object {digest} is corrupt: {exc}", digest=digest
            ) from exc

    def delete(self, digest: str) -> bool:
        """Remove an object; True when something was deleted."""
        path = self.path_of(digest)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def size_of(self, digest: str) -> int:
        """On-disk byte size of the object (0 when absent)."""
        try:
            return self.path_of(digest).stat().st_size
        except FileNotFoundError:
            return 0

    def iter_digests(self) -> Iterator[str]:
        """Every stored object's digest, in sorted order."""
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.glob("*/*.json")):
            if len(path.stem) == 64:
                yield path.stem

    def verify(self, digest: str) -> bool:
        """Whether the object's bytes still match its address."""
        try:
            self.get(digest)
        except StoreError:
            return False
        return True
