"""Store maintenance: the queries behind ``repro store ls|gc|verify``.

Pure functions over an :class:`~repro.store.checkpoint.ArtifactStore`;
the CLI only formats what these return.  Everything iterates in sorted
order, so the renderings are deterministic and diffable.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import StoreError
from repro.store.checkpoint import ArtifactStore


@dataclass(frozen=True)
class IndexEntry:
    """One cache-key → object binding in the store's index."""

    stage: str
    key_digest: str
    object_digest: str
    path: pathlib.Path


def iter_index(store: ArtifactStore) -> Iterator[IndexEntry]:
    """Every index entry, ordered by (stage, key digest).

    An unreadable entry raises :class:`StoreError` — ``verify`` reports
    it; ``ls``/``gc`` must not silently skip references.
    """
    if not store.index_dir.is_dir():
        return
    for path in sorted(store.index_dir.glob("*/*.json")):
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            yield IndexEntry(
                stage=str(entry["stage"]),
                key_digest=str(entry["key_digest"]),
                object_digest=str(entry["object"]),
                path=path,
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreError(f"unreadable index entry {path}: {exc}") from exc


def ls_lines(store: ArtifactStore) -> List[str]:
    """The ``repro store ls`` rendering: runs, then indexed artifacts."""
    lines: List[str] = [f"store: {store.root}"]
    summaries = store.ledger.run_summaries()
    if summaries:
        lines.append("runs:")
        for summary in summaries:
            lines.append(
                f"  {summary['run']}  hits={summary['hits']} "
                f"misses={summary['misses']} corrupt={summary['corrupt']} "
                f"sim_seconds={summary['sim_seconds']} "
                f"bytes_written={summary['bytes_written']}"
            )
    else:
        lines.append("runs: (none ledgered)")
    entries = list(iter_index(store))
    lines.append(f"artifacts: {len(entries)}")
    for entry in entries:
        size = store.cas.size_of(entry.object_digest)
        lines.append(
            f"  {entry.stage}  key={entry.key_digest[:12]} "
            f"object={entry.object_digest[:12]} bytes={size}"
        )
    return lines


def gc(store: ArtifactStore) -> Tuple[int, int]:
    """Delete objects no index entry references; (count, bytes) removed.

    The ledger is an audit log, not a root set: a re-keyed stage (code
    change, config change) leaves its old object unreferenced, and gc
    reclaims it.
    """
    referenced = {entry.object_digest for entry in iter_index(store)}
    removed = 0
    freed = 0
    for digest in list(store.cas.iter_digests()):
        if digest in referenced:
            continue
        freed += store.cas.size_of(digest)
        if store.cas.delete(digest):
            removed += 1
    return removed, freed


def retain_recent_runs(store: ArtifactStore, keep: int) -> Tuple[int, int, int]:
    """Ledger-aware retention: keep the last ``keep`` runs' artifacts.

    The ledger orders runs by first appearance; every (stage, key) the
    kept runs touched — hit or miss — stays indexed, everything older is
    unindexed, then a normal :func:`gc` sweeps the newly unreferenced
    objects.  Returns ``(index_removed, objects_removed, bytes_freed)``.

    A long-running service ledgers each epoch as one run
    (``epoch-NNNNNN``), so ``keep`` is effectively "keep the last N
    epochs"; crash restarts and warm replays share the epoch's run id and
    never widen the root set.
    """
    if keep < 1:
        raise StoreError(f"--keep-epochs must be >= 1, got {keep}")
    summaries = store.ledger.run_summaries()
    kept_runs = {summary["run"] for summary in summaries[-keep:]}
    keep_keys = set()
    for record in store.ledger.entries():
        if record["run"] in kept_runs and record["event"] in ("hit", "miss"):
            keep_keys.add((record["stage"], record["key"]))
    index_removed = 0
    for entry in list(iter_index(store)):
        if (entry.stage, entry.key_digest) in keep_keys:
            continue
        entry.path.unlink()
        index_removed += 1
    objects_removed, bytes_freed = gc(store)
    return index_removed, objects_removed, bytes_freed


def verify(store: ArtifactStore) -> List[str]:
    """Problems found re-hashing every referenced and stored object.

    Empty means healthy: every index entry resolves to an object whose
    bytes hash back to its address, and no orphan object is bit-rotted.
    """
    problems: List[str] = []
    try:
        entries = list(iter_index(store))
    except StoreError as exc:
        return [str(exc)]
    referenced = set()
    for entry in entries:
        referenced.add(entry.object_digest)
        if not store.cas.has(entry.object_digest):
            problems.append(
                f"{entry.stage} key={entry.key_digest[:12]}: "
                f"missing object {entry.object_digest}"
            )
        elif not store.cas.verify(entry.object_digest):
            problems.append(
                f"{entry.stage} key={entry.key_digest[:12]}: "
                f"corrupt object {entry.object_digest}"
            )
    for digest in store.cas.iter_digests():
        if digest not in referenced and not store.cas.verify(digest):
            problems.append(f"orphan object {digest} is corrupt")
    return problems
