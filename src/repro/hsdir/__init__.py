"""Hidden-service directories.

Relays with the HSDir flag store hidden-service descriptors for 24 hours and
answer client fetches.  The attacker-controlled instances of
:class:`~repro.hsdir.directory.HSDirServer` are the harvest vantage: every
stored descriptor leaks an onion address and every fetch is logged, which is
precisely the data Sections III–V are built on.
"""

from repro.hsdir.directory import HSDirServer, RequestRecord, StoredDescriptor
from repro.hsdir.ring_view import responsible_hsdirs, responsible_for_replica

__all__ = [
    "HSDirServer",
    "RequestRecord",
    "StoredDescriptor",
    "responsible_hsdirs",
    "responsible_for_replica",
]
