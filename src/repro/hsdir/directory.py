"""Descriptor storage and request logging at one HSDir.

An :class:`HSDirServer` is the directory-side state of one relay: a cache of
descriptors keyed by descriptor ID with 24-hour retention ("HS directories
responsible for the previous time period erase its descriptor from the
memory"), plus an append-only log of client fetches.  The paper's harvest
reads both: stored descriptors yield onion addresses, and the fetch log
yields popularity counts — including the ~80% of fetches that ask for
descriptors that were never published.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

from repro.crypto.descriptor_id import DescriptorId
from repro.errors import DescriptorError
from repro.sim.clock import DAY, HOUR, Timestamp


@dataclass(frozen=True)
class StoredDescriptor:
    """A descriptor as held by a directory.

    ``public_der`` is the service's public key material — the harvest
    derives onion addresses from it ("collecting hidden services' public
    keys (from which onion addresses are easily derived)").
    """

    descriptor_id: DescriptorId
    public_der: bytes
    replica: int
    published_at: Timestamp
    introduction_points: tuple = ()


class RequestRecord(NamedTuple):
    """One client descriptor fetch observed at this directory."""

    time: Timestamp
    descriptor_id: DescriptorId
    found: bool


class HSDirServer:
    """Directory-side state of a single relay.

    Request accounting has two granularities: per-descriptor-ID aggregate
    counters (always on — cheap, and all Section V needs) and a detailed
    per-request log (``keep_log``) for analyses that need timestamps, such as
    windowed rate plots.  At the paper's volume (~10⁶ requests) the detailed
    log is the memory hog, so harvest-scale experiments disable it.
    """

    RETENTION = DAY

    # How often the expiry sweep actually walks the store.  Retention is
    # 24 h; sub-hour precision buys nothing, and sweeping on every store
    # and fetch is O(stored descriptors) — at harvest scale (millions of
    # operations against thousands of cached descriptors) that sweep, not
    # the protocol work, dominates runtime.  The granularity is also part
    # of the pinned behaviour: sweep timing decides whether a re-stored
    # descriptor re-enters the dict at the end or stays in place, and that
    # insertion order is visible through ``stored_descriptors``.
    EXPIRY_GRANULARITY = HOUR

    def __init__(self, relay_id: int, keep_log: bool = True) -> None:
        self.relay_id = relay_id
        self.keep_log = keep_log
        self._store: Dict[DescriptorId, StoredDescriptor] = {}
        self.request_log: List[RequestRecord] = []
        # descriptor_id -> [found_count, not_found_count]
        self.request_counts: Dict[DescriptorId, List[int]] = {}
        self.publishes_received = 0
        self._last_expiry_sweep: Timestamp = -(1 << 62)

    def store(
        self, descriptor: StoredDescriptor, now: Timestamp, validate: bool = False
    ) -> None:
        """Accept an uploaded descriptor, replacing any previous version.

        With ``validate=True`` the directory re-derives the expected
        descriptor ID from the embedded public key and the upload time and
        rejects forgeries — what a real HSDir's signature/ID check buys.
        """
        if len(descriptor.descriptor_id) != 20:
            raise DescriptorError(
                f"descriptor id must be 20 bytes, got {len(descriptor.descriptor_id)}"
            )
        if validate and not self._upload_is_consistent(descriptor, now):
            raise DescriptorError(
                "descriptor id does not derive from the embedded key at this time"
            )
        self._expire(now)
        self._store[descriptor.descriptor_id] = descriptor
        self.publishes_received += 1

    @staticmethod
    def _upload_is_consistent(descriptor: StoredDescriptor, now: Timestamp) -> bool:
        from repro.crypto.descriptor_id import descriptor_id
        from repro.crypto.onion import onion_address_from_key

        onion = onion_address_from_key(descriptor.public_der)
        # Accept the current period and (grace) the one just ended: uploads
        # race the rotation boundary in flight.
        for when in (now, now - DAY):
            if descriptor_id(onion, when, descriptor.replica) == descriptor.descriptor_id:
                return True
        return False

    def fetch(
        self, descriptor_id: DescriptorId, now: Timestamp, log: bool = True
    ) -> Optional[StoredDescriptor]:
        """Answer a client fetch, recording it in the request accounting."""
        self._expire(now)
        descriptor = self._store.get(descriptor_id)
        if descriptor is not None and descriptor.published_at <= int(now) - self.RETENTION:
            # Exact retention semantics even between lazy sweeps.
            del self._store[descriptor_id]
            descriptor = None
        if log:
            counts = self.request_counts.get(descriptor_id)
            if counts is None:
                counts = [0, 0]
                self.request_counts[descriptor_id] = counts
            counts[0 if descriptor is not None else 1] += 1
            if self.keep_log:
                self.request_log.append(
                    RequestRecord(
                        time=int(now),
                        descriptor_id=descriptor_id,
                        found=descriptor is not None,
                    )
                )
        return descriptor

    @property
    def total_requests(self) -> int:
        """Total logged fetches (found + not found)."""
        return sum(found + missing for found, missing in self.request_counts.values())

    def stored_descriptors(self, now: Timestamp) -> List[StoredDescriptor]:
        """All unexpired descriptors currently held (harvest read-out)."""
        self._expire(now)
        cutoff = int(now) - self.RETENTION
        return [d for d in self._store.values() if d.published_at > cutoff]

    def requests_between(
        self, start: Timestamp, end: Timestamp
    ) -> List[RequestRecord]:
        """Fetches logged in ``[start, end)``."""
        return [r for r in self.request_log if start <= r.time < end]

    def clear_log(self) -> None:
        """Drop request accounting (attacker rotates its harvest windows)."""
        self.request_log = []
        self.request_counts = {}

    def _expire(self, now: Timestamp) -> None:
        if int(now) - self._last_expiry_sweep < self.EXPIRY_GRANULARITY:
            return
        self._last_expiry_sweep = int(now)
        cutoff = int(now) - self.RETENTION
        expired = [
            desc_id
            for desc_id, stored in self._store.items()
            if stored.published_at <= cutoff
        ]
        for desc_id in expired:
            del self._store[desc_id]
