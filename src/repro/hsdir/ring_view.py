"""Responsible-HSDir computation over a consensus.

For each of the two replica descriptor IDs, the three HSDir-flagged relays
whose fingerprints follow the ID on the ring are responsible — six
directories per service per 24-hour period.  "The expression to compute next
responsible HS directories is deterministic and an attacker can easily
inject relays" (Section II, footnote 2): both the honest publish path and
every attack in the paper call exactly this function.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.descriptor_id import (
    REPLICAS,
    descriptor_id,
    descriptor_ids_for_day_batch,
)
from repro.crypto.keys import Fingerprint
from repro.crypto.onion import OnionAddress
from repro.crypto.ring import HSDIRS_PER_REPLICA
from repro.dirauth.consensus import Consensus
from repro.sim.clock import Timestamp


def responsible_for_replica(
    consensus: Consensus,
    onion: OnionAddress,
    now: Timestamp,
    replica: int,
    count: int = HSDIRS_PER_REPLICA,
) -> List[Fingerprint]:
    """Fingerprints responsible for one replica of ``onion`` at ``now``."""
    desc_id = descriptor_id(onion, now, replica)
    return consensus.hsdir_ring.responsible_for(desc_id, count)


def responsible_hsdirs(
    consensus: Consensus,
    onion: OnionAddress,
    now: Timestamp,
    count: int = HSDIRS_PER_REPLICA,
) -> List[Fingerprint]:
    """All responsible fingerprints for ``onion`` at ``now``, both replicas.

    The result preserves replica order and may contain duplicates only when
    the ring is tiny (fewer members than ``REPLICAS * count``); real-world
    rings never collide, and callers that need a set can deduplicate.
    """
    result: List[Fingerprint] = []
    for replica in range(REPLICAS):
        result.extend(responsible_for_replica(consensus, onion, now, replica, count))
    return result


def responsible_replica_lists_batch(
    consensus: Consensus,
    onions: Sequence[OnionAddress],
    now: Timestamp,
    count: int = HSDIRS_PER_REPLICA,
) -> List[List[List[Fingerprint]]]:
    """Per-replica responsible fingerprints for many onions in one pass.

    Element ``[i][replica]`` is byte-identical to
    ``responsible_for_replica(consensus, onions[i], now, replica, count)``;
    the batch derives every descriptor ID through the shared secret-part
    table and places all of them with one vectorised ring bisect.
    """
    id_lists = descriptor_ids_for_day_batch(onions, now)
    flat = [desc_id for ids in id_lists for desc_id in ids]
    placed = consensus.hsdir_ring.responsible_for_many(flat, count)
    return [
        placed[i * REPLICAS : (i + 1) * REPLICAS] for i in range(len(id_lists))
    ]


def responsible_hsdirs_batch(
    consensus: Consensus,
    onions: Sequence[OnionAddress],
    now: Timestamp,
    count: int = HSDIRS_PER_REPLICA,
) -> List[List[Fingerprint]]:
    """Batched :func:`responsible_hsdirs`: one replica-ordered list per onion.

    Element *i* equals ``responsible_hsdirs(consensus, onions[i], now,
    count)`` byte for byte, duplicates-on-tiny-rings behaviour included.
    """
    return [
        [fp for replica_fps in per_replica for fp in replica_fps]
        for per_replica in responsible_replica_lists_batch(
            consensus, onions, now, count
        )
    ]
