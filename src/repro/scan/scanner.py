"""The multi-day port scanner.

Walks the harvested onion list according to a :class:`ScanSchedule`: on each
scan day it probes that day's port chunk on every onion whose descriptor is
still available.  Abnormal errors (Skynet's port 55080) count as open, per
the paper's methodology.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.crypto.onion import OnionAddress
from repro.faults.retry import (
    RetryPolicy,
    connect_with_retry,
    fetch_descriptor_with_retry,
)
from repro.faults.taxonomy import FailureCategory
from repro.net.endpoint import ConnectOutcome
from repro.net.transport import TorTransport
from repro.obs.scope import Observer, ensure_observer
from repro.parallel import pmap
from repro.scan.results import ScanResults
from repro.scan.schedule import ScanSchedule
from repro.sim.clock import DAY


class PortScanner:
    """Scans a harvested onion list through the simulated Tor transport.

    With a :class:`RetryPolicy`, timed-out port probes are retried (a SYN
    scan needs only proof the port is open, so truncated conversations are
    accepted as-is) and a missing descriptor earns a bounded re-fetch; each
    retried probe lands in :attr:`ScanResults.failures`.  Without a policy
    the scanner behaves exactly as before: every failure is final.

    An :class:`~repro.obs.scope.Observer` records the campaign as nested
    spans (one per scan day, a simulated day each), counts every port
    requested (``scan_ports_requested_total`` — the counter that proves
    priority ports are deduplicated against the day's chunk), and gauges
    the end-of-campaign totals.
    """

    def __init__(
        self,
        transport: TorTransport,
        retry_policy: Optional[RetryPolicy] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self._transport = transport
        self._retry_policy = retry_policy
        self._observer = ensure_observer(observer)

    def run(
        self,
        onions: Iterable[OnionAddress],
        schedule: ScanSchedule,
        extra_priority_ports: Iterable[int] = (),
        workers: Optional[int] = None,
    ) -> ScanResults:
        """Execute the full schedule.

        ``extra_priority_ports`` are probed *every* day on every onion (the
        paper's scanner revisited interesting ports such as 55080 after the
        anomaly was noticed); a port found open on any day stays found.

        Each scan day fans its onion probes out through
        :func:`repro.parallel.pmap`.  The probe closure captures the live
        transport (whose circuit-noise stream is shared across probes), so
        it is deliberately unpicklable: the executor keeps it in-process
        and in onion order, which is what makes the results byte-identical
        at every ``workers`` value.
        """
        onion_list: List[OnionAddress] = list(onions)
        priority = sorted(set(extra_priority_ports))
        policy = self._retry_policy
        obs = self._observer
        results = ScanResults()
        results.scanned_onions = len(onion_list)
        with obs.span(
            "scan.campaign", days=schedule.days, onions=len(onion_list)
        ):
            for day_index, when, chunk, extra in schedule.expanded_campaign(
                priority
            ):
                with obs.span("scan.day", day=day_index):
                    obs.add_time(DAY)

                    def probe_onion(onion, _when=when, _chunk=chunk, _extra=extra):
                        if policy is None:
                            has_descriptor = self._transport.has_descriptor(
                                onion, _when
                            )
                            fetch_attempts = 1
                        else:
                            has_descriptor, fetch_attempts = (
                                fetch_descriptor_with_retry(
                                    self._transport,
                                    onion,
                                    _when,
                                    policy,
                                    observer=obs,
                                )
                            )
                        obs.count(
                            "scan_ports_requested_total",
                            amount=len(_chunk) + len(_extra),
                        )
                        probes = self._transport.scan_ports(onion, _chunk, _when)
                        if _extra:
                            probes.update(
                                self._transport.scan_ports(onion, _extra, _when)
                            )
                        retried = []
                        if policy is not None:
                            # A SYN scan retries only timeouts: REFUSED never
                            # makes it into the batch, truncation is
                            # conversation-layer.
                            for port in sorted(probes):
                                if probes[port].outcome is not ConnectOutcome.TIMEOUT:
                                    continue
                                outcome = connect_with_retry(
                                    self._transport,
                                    onion,
                                    port,
                                    _when,
                                    policy,
                                    initial=probes[port],
                                    require_conversation=False,
                                    observer=obs,
                                )
                                probes[port] = outcome.result
                                retried.append((outcome.category, outcome.attempts))
                        return has_descriptor, fetch_attempts, probes, retried

                    day_probes = pmap(probe_onion, onion_list, workers=workers)
                    for onion, (
                        has_descriptor,
                        fetch_attempts,
                        probes,
                        retried,
                    ) in zip(onion_list, day_probes):
                        if has_descriptor:
                            results.descriptor_onions.add(onion)
                            if fetch_attempts > 1:
                                results.failures.record(
                                    FailureCategory.TRANSIENT_RECOVERED,
                                    fetch_attempts,
                                )
                        results.descriptor_refetches += fetch_attempts - 1
                        for category, attempts in retried:
                            results.failures.record(category, attempts)
                        for port, result in probes.items():
                            results.record(onion, port, result.outcome)
        obs.gauge("scan_descriptor_onions", len(results.descriptor_onions))
        obs.gauge("scan_reachable_onions", len(results.reachable_onions))
        obs.gauge("scan_open_ports", results.total_open_ports)
        obs.gauge("scan_probes_answered", results.probes_answered)
        obs.gauge("scan_timeouts", results.timeouts)
        return results

    def scan_single(
        self, onion: OnionAddress, ports: Iterable[int], when: int
    ) -> dict:
        """Probe specific ports on one onion right now (ad-hoc follow-ups)."""
        return {
            port: result.outcome
            for port, result in self._transport.scan_ports(
                onion, list(ports), when
            ).items()
            if result.outcome is not ConnectOutcome.REFUSED
        }
