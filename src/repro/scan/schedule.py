"""Scan scheduling.

The paper scanned "different port ranges on different days" between 14 and
21 February 2013.  :class:`ScanSchedule` splits the port space into per-day
chunks; a hidden service that happens to be offline on the day its chunk
containing port *p* is scanned loses that port from the results — the source
of the 87% coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.errors import AttackError
from repro.sim.clock import DAY, Timestamp


@dataclass(frozen=True)
class ScanSchedule:
    """Port ranges assigned to consecutive scan days."""

    start: Timestamp
    days: int
    first_port: int = 1
    last_port: int = 65535

    def __post_init__(self) -> None:
        if self.days < 1:
            raise AttackError(f"need at least one scan day: {self.days}")
        if not 0 < self.first_port <= self.last_port <= 65535:
            raise AttackError(
                f"bad port range: {self.first_port}..{self.last_port}"
            )

    @property
    def end(self) -> Timestamp:
        """First instant after the scan window."""
        return self.start + self.days * DAY

    def chunk_for_day(self, day_index: int) -> range:
        """The port range scanned on day ``day_index`` (0-based)."""
        if not 0 <= day_index < self.days:
            raise AttackError(f"day index out of range: {day_index}")
        total = self.last_port - self.first_port + 1
        per_day = total // self.days
        extra = total % self.days
        lo = self.first_port + day_index * per_day + min(day_index, extra)
        size = per_day + (1 if day_index < extra else 0)
        return range(lo, lo + size)

    def day_of_port(self, port: int) -> int:
        """Which day a port is scanned on.

        Closed-form inverse of :meth:`chunk_for_day`: the first ``extra``
        days carry ``per_day + 1`` ports and the rest ``per_day``, so the
        owning day falls out of one division per side of that boundary.
        """
        if not self.first_port <= port <= self.last_port:
            raise AttackError(f"port outside schedule: {port}")
        total = self.last_port - self.first_port + 1
        per_day = total // self.days
        extra = total % self.days
        index = port - self.first_port
        boundary = extra * (per_day + 1)
        if index < boundary:
            return index // (per_day + 1)
        return extra + (index - boundary) // per_day

    def __iter__(self) -> Iterator[Tuple[int, Timestamp, range]]:
        """Yields (day_index, scan_time, port_range) triples."""
        yield from self.campaign()

    def campaign(self) -> List[Tuple[int, Timestamp, range]]:
        """The whole campaign as stable (day_index, scan_time, ports) triples.

        A pure function of the schedule — the fan-out plan the scanner
        hands to :func:`repro.parallel.pmap` is the same list on every
        run, which is half of the serial≡parallel guarantee (the other
        half is the executor's index-stable merge).
        """
        plan: List[Tuple[int, Timestamp, range]] = []
        for day_index in range(self.days):
            # Scans run mid-day; the exact hour is immaterial.
            when = self.start + day_index * DAY + 12 * 3600
            plan.append((day_index, when, self.chunk_for_day(day_index)))
        return plan

    def all_ports(self) -> List[range]:
        """Every per-day chunk (they partition the full range)."""
        return [self.chunk_for_day(d) for d in range(self.days)]

    def expanded_campaign(
        self, priority_ports: Iterable[int] = ()
    ) -> List[Tuple[int, Timestamp, range, List[int]]]:
        """The campaign with each day's extra priority probes expanded.

        ``priority_ports`` are re-probed every day *except* the day whose
        chunk already contains them (a duplicate probe would burn extra
        draws from the fault/noise streams and silently overwrite the
        chunk probe's result).  The batch assigns each priority port its
        owning day once through the :meth:`day_of_port` inverse instead of
        testing every port against every day's chunk; each day's extras
        come out sorted, exactly as the scanner's per-day filter built
        them.  Ports outside the schedule's range have no owning day and
        are extra on every day.
        """
        priority = sorted(set(priority_ports))
        owners = [
            self.day_of_port(port)
            if self.first_port <= port <= self.last_port
            else None
            for port in priority
        ]
        return [
            (
                day_index,
                when,
                chunk,
                [
                    port
                    for port, owner in zip(priority, owners)
                    if owner != day_index
                ],
            )
            for day_index, when, chunk in self.campaign()
        ]
