"""Port scanning of harvested onion addresses (Section III)."""

from repro.scan.schedule import ScanSchedule
from repro.scan.scanner import PortScanner
from repro.scan.results import ScanResults, PortDistribution, FIG1_BINS
from repro.scan.tls import CertificateAnalysis, analyze_certificates, collect_certificates

__all__ = [
    "ScanSchedule",
    "PortScanner",
    "ScanResults",
    "PortDistribution",
    "FIG1_BINS",
    "CertificateAnalysis",
    "analyze_certificates",
    "collect_certificates",
]
