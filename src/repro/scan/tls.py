"""HTTPS certificate analysis (Section III).

For every port-443 service found open, fetch the certificate and classify:

* self-signed with a common name that does not match the requested onion —
  the paper saw 1,225 of these, 1,168 of them bearing the TorHost hosting
  service's onion as CN;
* certificates whose common names are public DNS names — 34 services whose
  operators can be deanonymised by simply reading the certificate.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.crypto.onion import OnionAddress
from repro.net.transport import TorTransport
from repro.population.webserver import TlsCertificate
from repro.sim.clock import Timestamp


def collect_certificates(
    transport: TorTransport,
    https_onions: List[OnionAddress],
    when: Timestamp,
    port: int = 443,
) -> Dict[OnionAddress, TlsCertificate]:
    """TLS handshake with every HTTPS service; returns the certs obtained."""
    certificates: Dict[OnionAddress, TlsCertificate] = {}
    for onion in https_onions:
        result = transport.connect(onion, port, when)
        if not result.ok or result.endpoint is None:
            continue
        application = result.endpoint.application
        certificate = getattr(application, "certificate", None)
        if certificate is not None:
            certificates[onion] = certificate
    return certificates


@dataclass
class CertificateAnalysis:
    """Aggregated certificate findings."""

    total_certificates: int = 0
    self_signed_mismatch: int = 0
    dominant_cn: str = ""
    dominant_cn_count: int = 0
    public_dns_onions: List[OnionAddress] = field(default_factory=list)
    cn_histogram: Counter = field(default_factory=Counter)

    @property
    def deanonymizable_count(self) -> int:
        """Services whose cert CN names a clearnet DNS host."""
        return len(self.public_dns_onions)


def analyze_certificates(
    certificates: Dict[OnionAddress, TlsCertificate],
) -> CertificateAnalysis:
    """Run the Section III classification over collected certificates."""
    analysis = CertificateAnalysis(total_certificates=len(certificates))
    mismatch_cns: Counter = Counter()
    for onion, certificate in certificates.items():
        analysis.cn_histogram[certificate.common_name] += 1
        if certificate.self_signed and not certificate.matches_host(onion):
            analysis.self_signed_mismatch += 1
            mismatch_cns[certificate.common_name] += 1
        if certificate.names_public_dns:
            analysis.public_dns_onions.append(onion)
    if mismatch_cns:
        cn, count = mismatch_cns.most_common(1)[0]
        analysis.dominant_cn = cn
        analysis.dominant_cn_count = count
    analysis.public_dns_onions.sort()
    return analysis
