"""Scan results and the Fig 1 aggregation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.crypto.onion import OnionAddress
from repro.faults.taxonomy import FailureTaxonomy
from repro.net.endpoint import ConnectOutcome

# The named bins of Fig 1, in the paper's order (top of the chart first).
FIG1_BINS: Tuple[Tuple[int, str], ...] = (
    (55080, "55080-Skynet"),
    (80, "80-http"),
    (443, "443-https"),
    (22, "22-ssh"),
    (11009, "11009-TorChat"),
    (4050, "4050"),
    (6667, "6667-irc"),
)


@dataclass
class PortDistribution:
    """Fig 1: open-port counts per named bin plus 'other'."""

    counts: Dict[str, int]
    unique_ports: int
    total_open: int

    def as_rows(self) -> List[Tuple[str, int]]:
        """Rows in descending count order, 'other' last — as Fig 1 prints."""
        named = [(label, self.counts.get(label, 0)) for _, label in FIG1_BINS]
        named.sort(key=lambda row: -row[1])
        return named + [("other", self.counts.get("other", 0))]


@dataclass
class ScanResults:
    """Everything the multi-day scan observed."""

    scanned_onions: int = 0
    # Onions whose descriptor was fetchable on at least one scan day (the
    # paper: descriptors were available for 24,511 of the 39,824 addresses).
    descriptor_onions: Set[OnionAddress] = field(default_factory=set)
    reachable_onions: Set[OnionAddress] = field(default_factory=set)
    # (onion, port) -> outcome for every counts-as-open observation.
    open_ports: Dict[Tuple[OnionAddress, int], ConnectOutcome] = field(
        default_factory=dict
    )
    timeouts: int = 0
    probes_answered: int = 0
    # Retry accounting: how probe failures were ultimately classified, and
    # how many extra descriptor fetches the retry layer spent.  Both stay
    # zero when the scanner runs without a retry policy.
    failures: FailureTaxonomy = field(default_factory=FailureTaxonomy)
    descriptor_refetches: int = 0

    def record(self, onion: OnionAddress, port: int, outcome: ConnectOutcome) -> None:
        """Account one non-refused probe result."""
        self.probes_answered += 1
        if outcome is ConnectOutcome.TIMEOUT:
            self.timeouts += 1
            return
        if outcome.counts_as_open:
            self.open_ports[(onion, port)] = outcome
            self.reachable_onions.add(onion)

    @property
    def total_open_ports(self) -> int:
        """All (onion, port) pairs found open (abnormal errors included)."""
        return len(self.open_ports)

    def ports_of(self, onion: OnionAddress) -> List[int]:
        """Open ports found on one onion."""
        return sorted(
            port for (addr, port) in self.open_ports if addr == onion
        )

    def onions_with_port(self, port: int) -> List[OnionAddress]:
        """Onions where ``port`` was found open."""
        return sorted(
            addr for (addr, p) in self.open_ports if p == port
        )

    def port_distribution(self) -> PortDistribution:
        """Aggregate into the Fig 1 bins."""
        named_ports = {port for port, _ in FIG1_BINS}
        labels = dict(FIG1_BINS)
        counter: Counter = Counter()
        unique: Set[int] = set()
        for (_, port), _outcome in self.open_ports.items():
            unique.add(port)
            if port in named_ports:
                counter[labels[port]] += 1
            else:
                counter["other"] += 1
        return PortDistribution(
            counts=dict(counter),
            unique_ports=len(unique),
            total_open=self.total_open_ports,
        )

    def destinations_excluding(self, *ports: int) -> List[Tuple[OnionAddress, int]]:
        """(onion, port) pairs excluding the given ports — the crawl input.

        Section IV excludes 55080 and connects to "the remaining 8,153
        destinations (onion address:port pairs)".
        """
        excluded = set(ports)
        return sorted(
            (addr, port)
            for (addr, port) in self.open_ports
            if port not in excluded
        )
