"""The Silk Road case study (Section VII).

Builds ~33 months of consensus history — 1 February 2011 to 31 October
2013, the market's public lifetime — with the HSDir ring growing from 757
to 1,862 relays as it did, plus honest churn and occasional honest key
rotations.  Into this history it injects the three tracking behaviours the
paper reports finding:

* **our-trackers** (from November 2012): the authors' own measurement
  relays, which "performed fingerprint changes on multiple occasions, each
  time with a close distance" (ratio ≳ 100);
* **may-episode** (21 May – 3 June 2013): a set of same-named servers
  taking over one of the six responsible slots nearly every period
  (skipping only four), the only servers crossing a positioning ratio of
  10,000;
* **aug-episode** (31 August 2013): six relays from three IP addresses
  seizing *all six* responsible HSDirs for one full period — a month
  before the FBI takedown.

Plus the year-one oddity: a server that mostly lacks the HSDir flag but
obtains it, three times, exactly when Silk Road would choose it.

Detection code never sees the injection ground truth; tests compare the
analyzer's findings against it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.descriptor_id import descriptor_id
from repro.crypto.keys import KeyPair
from repro.crypto.onion import OnionAddress, onion_address_from_key
from repro.crypto.ring import RING_SIZE
from repro.detection.analyzer import ServerKey
from repro.dirauth.archive import ConsensusArchive
from repro.errors import AttackError
from repro.net.address import AddressPool
from repro.relay.relay import Relay
from repro.sim.clock import DAY, HOUR, SimClock, Timestamp, parse_date
from repro.sim.rng import derive_rng
from repro.tornet import TorNetwork

SILKROAD_LAUNCH = parse_date("2011-02-01")
SILKROAD_TAKEDOWN = parse_date("2013-10-02")
STUDY_END = parse_date("2013-10-31")

OUR_TRACKING_START = parse_date("2012-11-15")
OUR_TRACKING_END = parse_date("2012-12-31")
MAY_EPISODE_START = parse_date("2013-05-21")
MAY_EPISODE_END = parse_date("2013-06-03")
AUG_EPISODE_DAY = parse_date("2013-08-31")


@dataclass(frozen=True)
class SilkroadStudyConfig:
    """Study parameters (defaults reproduce the paper's setting)."""

    start: Timestamp = SILKROAD_LAUNCH
    end: Timestamp = STUDY_END
    hsdir_start_count: int = 757
    hsdir_end_count: int = 1862
    seed: int = 0
    scale: float = 1.0  # scales the honest relay population
    period_death_probability: float = 0.0006
    period_rotation_probability: float = 0.00005
    inject_year1_oddity: bool = True
    inject_our_trackers: bool = True
    inject_may_episode: bool = True
    inject_aug_episode: bool = True

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise AttackError(f"scale must be positive: {self.scale}")
        if self.hsdir_start_count * self.scale < 20:
            raise AttackError("ring too small for a meaningful study")


@dataclass
class SilkroadWorld:
    """The built history plus injection ground truth."""

    config: SilkroadStudyConfig
    archive: ConsensusArchive
    silkroad_onion: OnionAddress
    # entity name -> set of (ip, or_port) server keys it operated
    ground_truth: Dict[str, Set[ServerKey]] = field(default_factory=dict)
    # entity name -> (first, last) timestamps of its campaign
    campaigns: Dict[str, Tuple[Timestamp, Timestamp]] = field(default_factory=dict)


class SilkroadStudy:
    """Builds the case-study world."""

    def __init__(self, config: Optional[SilkroadStudyConfig] = None) -> None:
        self.config = config if config is not None else SilkroadStudyConfig()

    # ---------------------------------------------------------------- #

    def build(self) -> SilkroadWorld:
        """Run the 33-month simulation and return the archive."""
        cfg = self.config
        seed = cfg.seed
        honest_rng = derive_rng(seed, "silkroad", "honest")
        pool = AddressPool(derive_rng(seed, "silkroad", "ips"))

        # Silk Road's identity (a generated onion stands in for
        # silkroadvb5piz3r.onion; v2 addresses cannot be forged offline).
        silkroad_key = KeyPair.generate(derive_rng(seed, "silkroad", "identity"))
        onion = onion_address_from_key(silkroad_key.public_der)
        permanent_id_offset = (silkroad_key.fingerprint[0] * DAY) // 256
        # permanent id byte 0 equals fingerprint byte 0 by construction of
        # the onion address (both are the first byte of SHA1(public key)).

        network = TorNetwork(clock=SimClock(cfg.start - 2 * DAY), keep_archive=True)

        start_count = max(10, round(cfg.hsdir_start_count * cfg.scale))
        end_count = max(start_count, round(cfg.hsdir_end_count * cfg.scale))

        relays: List[Relay] = []
        for index in range(start_count):
            relay = Relay(
                nickname=f"relay{index:05d}",
                ip=pool.allocate(),
                or_port=9001,
                keypair=KeyPair.generate(honest_rng),
                bandwidth=honest_rng.randint(100, 5000),
                started_at=cfg.start - honest_rng.randint(5, 600) * DAY,
            )
            relays.append(relay)
            network.add_relay(relay)
        next_relay_index = start_count

        world = SilkroadWorld(
            config=cfg,
            archive=network.archive,  # type: ignore[arg-type]
            silkroad_onion=onion,
        )

        injectors = self._build_injectors(network, pool, onion, world)

        # Prime the consensus so injectors can read the ring size.
        network.rebuild_consensus(cfg.start - DAY)

        # One consensus per descriptor period, aligned to Silk Road's
        # rotation offset (detection operates at period granularity).
        first_period = (cfg.start + permanent_id_offset) // DAY + 1
        last_period = (cfg.end + permanent_id_offset) // DAY
        total_periods = last_period - first_period
        for period in range(first_period, last_period + 1):
            period_start = period * DAY - permanent_id_offset
            progress = (period - first_period) / max(1, total_periods)
            target = start_count + (end_count - start_count) * progress

            # Honest churn: deaths, rare key rotations, growth to target.
            alive = [relay for relay in relays if relay.reachable]
            for relay in alive:
                roll = honest_rng.random()
                if roll < cfg.period_death_probability:
                    relay.set_reachable(False, period_start - 2 * HOUR)
                    # The operator is gone for good; stop monitoring so the
                    # 33-month run does not drag a graveyard through every
                    # consensus build.
                    network.authority.deregister(relay)
                elif roll < cfg.period_death_probability + cfg.period_rotation_probability:
                    relay.rotate_key(honest_rng, period_start - 26 * HOUR)
            alive_count = sum(1 for relay in relays if relay.reachable)
            while alive_count < target:
                relay = Relay(
                    nickname=f"relay{next_relay_index:05d}",
                    ip=pool.allocate(),
                    or_port=9001,
                    keypair=KeyPair.generate(honest_rng),
                    bandwidth=honest_rng.randint(100, 5000),
                    started_at=period_start - 26 * HOUR,
                )
                next_relay_index += 1
                relays.append(relay)
                network.add_relay(relay)
                alive_count += 1

            for injector in injectors:
                injector.before_period(period_start)

            network.rebuild_consensus(period_start)

        return world

    # ---------------------------------------------------------------- #

    def _build_injectors(
        self,
        network: TorNetwork,
        pool: AddressPool,
        onion: OnionAddress,
        world: SilkroadWorld,
    ) -> List["_Injector"]:
        cfg = self.config
        injectors: List[_Injector] = []
        if cfg.inject_year1_oddity:
            injectors.append(
                _Year1Oddity(network, pool, onion, world, derive_rng(cfg.seed, "inj", "y1"))
            )
        if cfg.inject_our_trackers:
            injectors.append(
                _OurTrackers(network, pool, onion, world, derive_rng(cfg.seed, "inj", "ours"))
            )
        if cfg.inject_may_episode:
            injectors.append(
                _MayEpisode(network, pool, onion, world, derive_rng(cfg.seed, "inj", "may"))
            )
        if cfg.inject_aug_episode:
            injectors.append(
                _AugEpisode(network, pool, onion, world, derive_rng(cfg.seed, "inj", "aug"))
            )
        return injectors


class _Injector:
    """Base class: a tracking entity that acts before each period."""

    name = "injector"

    def __init__(
        self,
        network: TorNetwork,
        pool: AddressPool,
        onion: OnionAddress,
        world: SilkroadWorld,
        rng: random.Random,
    ) -> None:
        self.network = network
        self.pool = pool
        self.onion = onion
        self.world = world
        self.rng = rng
        self.relays: List[Relay] = []

    def _spawn(self, nickname: str, ip: Optional[int] = None, or_port: int = 9001) -> Relay:
        relay = Relay(
            nickname=nickname,
            ip=ip if ip is not None else self.pool.allocate(),
            or_port=or_port,
            keypair=KeyPair.generate(self.rng),
            bandwidth=self.rng.randint(200, 1500),
            started_at=self.network.clock.now,
        )
        self.network.add_relay(relay)
        self.relays.append(relay)
        self.world.ground_truth.setdefault(self.name, set()).add(relay.address)
        return relay

    def _position_for_period(
        self, relay: Relay, target_period_start: Timestamp, ratio: float, replica: int,
        slot: int = 0,
    ) -> None:
        """Grind (forge) a key so ``relay`` lands just after the target
        descriptor ID of the period starting at ``target_period_start``.

        The rotation happens *now*; the caller must leave ≥ 25 hours before
        the target period so the HSDir flag is back.  ``slot`` staggers
        multiple relays onto consecutive responsible positions.
        """
        desc = descriptor_id(self.onion, target_period_start, replica)
        target_point = int.from_bytes(desc, "big")
        ring_size = max(1, self.network.consensus.hsdir_count)
        max_distance = max(1, int(RING_SIZE / ring_size / ratio))
        key = KeyPair.forge_near(
            self.rng, (target_point + slot * max_distance * 2) % RING_SIZE, max_distance
        )
        relay.adopt_key(key, self.network.clock.now)

    def _mark_campaign(self, when: Timestamp) -> None:
        first, last = self.world.campaigns.get(self.name, (when, when))
        self.world.campaigns[self.name] = (min(first, when), max(last, when))

    def before_period(self, period_start: Timestamp) -> None:
        """Called just before the consensus for ``period_start`` is built."""
        raise NotImplementedError


class _Year1Oddity(_Injector):
    """A server that has HSDir only on the three occasions Silk Road
    'chooses' it (it positions itself, moderately, and hides otherwise)."""

    name = "year1-oddity"

    OCCASIONS = (
        parse_date("2011-04-10"),
        parse_date("2011-07-22"),
        parse_date("2011-11-05"),
    )

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.relay = self._spawn("oddball")
        self.relay.set_reachable(False, self.network.clock.now)
        self._armed_for: Optional[Timestamp] = None

    def before_period(self, period_start: Timestamp) -> None:
        # Arm ~2 periods ahead of each occasion so uptime is ready.
        for occasion in self.OCCASIONS:
            lead = occasion - period_start
            if 0 < lead <= 2 * DAY and self._armed_for != occasion:
                self.relay.set_reachable(True, self.network.clock.now - 30 * HOUR)
                # slot=1 keeps the forged distance *bounded away from zero*
                # (within (2d, 3d] of the descriptor ID for d = avg/40): the
                # oddity positions itself, but below the ratio-100 threshold
                # — year one must show "no clear indication of tracking".
                self._position_for_period(
                    self.relay, occasion, ratio=40.0, replica=0, slot=1
                )
                # adopt_key restarted the uptime clock at "now"; give it the
                # 25 hours by backdating the rotation (the operator actually
                # rotated a day earlier).
                self.relay._up_since = self.network.clock.now - 30 * HOUR
                self._armed_for = occasion
                self._mark_campaign(occasion)
                return
        # Disappear again one period after each occasion.
        if self._armed_for is not None and period_start > self._armed_for:
            self.relay.set_reachable(False, self.network.clock.now)
            self._armed_for = None


class _OurTrackers(_Injector):
    """The authors' own measurement relays (Nov–Dec 2012): repeated
    fingerprint changes, each landing close (ratio ≳ 150)."""

    name = "our-trackers"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.pair = [self._spawn(f"uniluxmbr{i}") for i in range(2)]
        self._next_strike: Optional[Timestamp] = None

    def before_period(self, period_start: Timestamp) -> None:
        if not OUR_TRACKING_START <= period_start <= OUR_TRACKING_END:
            return
        # Strike every ~4th period: reposition both relays for the period
        # after next (leaving > 25 h of uptime after the key change).
        period_index = int(period_start // DAY)
        if period_index % 4 != 0:
            return
        target = period_start + 2 * DAY
        for replica, relay in enumerate(self.pair):
            self._position_for_period(relay, target, ratio=150.0, replica=replica)
        self._mark_campaign(target)


class _MayEpisode(_Injector):
    """21 May – 3 Jun 2013: same-named servers hold one of the six slots
    almost every period, at ratios beyond 10,000."""

    name = "may-episode"
    SKIPPED_PERIODS = 4

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.team = [self._spawn(f"DocSearchRelay{i}") for i in range(4)]
        episode_days = (MAY_EPISODE_END - MAY_EPISODE_START) // DAY + 1
        skips = self.rng.sample(range(episode_days), self.SKIPPED_PERIODS)
        self._skip_offsets = set(skips)
        self._turn = 0

    def before_period(self, period_start: Timestamp) -> None:
        # Position two periods ahead so the 25-hour clock is satisfied.
        target = period_start + 2 * DAY
        if not MAY_EPISODE_START <= target <= MAY_EPISODE_END:
            return
        offset = (target - MAY_EPISODE_START) // DAY
        if offset in self._skip_offsets:
            return
        relay = self.team[self._turn % len(self.team)]
        self._turn += 1
        self._position_for_period(
            relay, target, ratio=15_000.0, replica=self._turn % 2
        )
        self._mark_campaign(target)


class _AugEpisode(_Injector):
    """31 Aug 2013: six relays from three IPs seize all six slots."""

    name = "aug-episode"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.team: List[Relay] = []
        for ip_index in range(3):
            ip = self.pool.allocate()
            for port_index in range(2):
                self.team.append(
                    self._spawn(
                        f"globalsnoop{ip_index}{port_index}",
                        ip=ip,
                        or_port=9001 + port_index,
                    )
                )
        self._done = False

    def before_period(self, period_start: Timestamp) -> None:
        if self._done:
            return
        target = period_start + 2 * DAY
        if not AUG_EPISODE_DAY <= target < AUG_EPISODE_DAY + DAY:
            return
        # Six relays, two replicas × three slots each: stagger positions so
        # they occupy all six responsible positions.
        for index, relay in enumerate(self.team):
            replica = index // 3
            slot = index % 3
            self._position_for_period(
                relay, target, ratio=8_000.0, replica=replica, slot=slot
            )
        self._mark_campaign(target)
        self._done = True
