"""Tracking detection via consensus-history analysis (Section VII)."""

from repro.detection.rules import DetectionThresholds, binomial_threshold
from repro.detection.analyzer import (
    TrackingAnalyzer,
    TrackingReport,
    ServerRecord,
    ResponsibilityEvent,
)
from repro.detection.silkroad import SilkroadStudy, SilkroadStudyConfig

__all__ = [
    "DetectionThresholds",
    "binomial_threshold",
    "TrackingAnalyzer",
    "TrackingReport",
    "ServerRecord",
    "ResponsibilityEvent",
    "SilkroadStudy",
    "SilkroadStudyConfig",
]
