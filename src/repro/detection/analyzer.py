"""The consensus-history analyzer.

Walks a :class:`~repro.dirauth.archive.ConsensusArchive` period by period
for one target onion address, reconstructs each period's responsible HSDir
set, and applies the five Section VII rules per *server* — a server being
an (IP, ORPort) pair, because that is what stays fixed when a tracker
rotates identity keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.descriptor_id import REPLICAS, descriptor_index_entries
from repro.crypto.keys import Fingerprint
from repro.crypto.onion import OnionAddress, permanent_id_from_onion
from repro.detection.rules import DetectionThresholds, binomial_threshold
from repro.dirauth.archive import ConsensusArchive
from repro.errors import ConsensusError
from repro.parallel import pmap
from repro.sim.clock import DAY, Timestamp

ServerKey = Tuple[int, int]  # (ip, or_port)


@dataclass
class ResponsibilityEvent:
    """One (server, period) responsibility observation."""

    period_index: int
    period_start: Timestamp
    fingerprint: Fingerprint
    nickname: str
    replica: int
    ratio: float  # avg_dist / distance positioning statistic
    fresh_fingerprint: bool  # fingerprint appeared only just before


@dataclass
class ServerRecord:
    """Everything observed about one (IP, ORPort) server."""

    server: ServerKey
    nicknames: Set[str] = field(default_factory=set)
    fingerprints_used: Set[Fingerprint] = field(default_factory=set)
    events: List[ResponsibilityEvent] = field(default_factory=list)

    @property
    def periods_responsible(self) -> int:
        """Distinct periods in which this server was responsible."""
        return len({event.period_index for event in self.events})

    @property
    def max_ratio(self) -> float:
        """Largest positioning ratio observed."""
        return max((event.ratio for event in self.events), default=0.0)

    @property
    def fresh_fingerprint_events(self) -> int:
        """Times the server was responsible on a just-appeared fingerprint."""
        return sum(1 for event in self.events if event.fresh_fingerprint)

    @property
    def max_consecutive_periods(self) -> int:
        """Longest run of consecutive responsible periods."""
        periods = sorted({event.period_index for event in self.events})
        best = run = 0
        previous: Optional[int] = None
        for period in periods:
            run = run + 1 if previous is not None and period == previous + 1 else 1
            best = max(best, run)
            previous = period
        return best


@dataclass
class TrackingReport:
    """Analyzer output for one onion over one window."""

    onion: OnionAddress
    window: Tuple[Timestamp, Timestamp]
    periods_analyzed: int
    mean_hsdir_count: float
    thresholds: DetectionThresholds
    servers: Dict[ServerKey, ServerRecord] = field(default_factory=dict)

    @property
    def frequency_threshold(self) -> float:
        """μ + kσ for the responsible-count rule over this window."""
        probability = (
            REPLICAS * 3 / self.mean_hsdir_count if self.mean_hsdir_count else 0.0
        )
        return binomial_threshold(
            self.periods_analyzed, min(1.0, probability), self.thresholds.frequency_sigmas
        )

    def flags_for(self, record: ServerRecord) -> List[str]:
        """Which rules a server trips."""
        t = self.thresholds
        flags: List[str] = []
        if record.periods_responsible > self.frequency_threshold:
            flags.append("frequency")
        if record.fresh_fingerprint_events >= t.fresh_fingerprint_min_events:
            flags.append("fresh-fingerprint")
        if record.max_ratio >= t.ratio_suspicious:
            flags.append("ratio")
        if record.max_ratio >= t.ratio_extreme:
            flags.append("ratio-extreme")
        if len(record.fingerprints_used) > t.churn_max_fingerprints:
            flags.append("fingerprint-churn")
        if record.max_consecutive_periods >= t.consecutive_min_periods:
            flags.append("consecutive")
        return flags

    def suspicious_servers(self, min_flags: int = 2) -> Dict[ServerKey, List[str]]:
        """Servers tripping at least ``min_flags`` rules.

        A single rule can fire by chance ("statistically it is impossible to
        distinguish attempts to track ... for one time period only from the
        case when a relay becomes a responsible HSDir by chance"); requiring
        a conjunction is the paper's conclusion — fingerprint changes plus
        positioning distance is the most reliable detector.
        """
        result: Dict[ServerKey, List[str]] = {}
        for server, record in self.servers.items():
            flags = self.flags_for(record)
            if len(flags) >= min_flags:
                result[server] = flags
        return result

    def servers_with_flag(self, flag: str) -> List[ServerKey]:
        """Servers tripping one specific rule."""
        return [
            server
            for server, record in self.servers.items()
            if flag in self.flags_for(record)
        ]

    def likely_trackers(self) -> Dict[ServerKey, List[str]]:
        """Servers the paper's *most reliable* criterion convicts.

        Section VII's conclusion: "looking for changes in fingerprints, in
        combination with the distance between the descriptor ID and the
        fingerprint seems to be the most reliable way to detect tracking."
        A server is a likely tracker when it repeatedly became responsible
        on just-appeared fingerprints *and* its positioning ratio is
        suspicious — or when its positioning is so extreme (≥ the 10k tier)
        that chance is implausible outright.
        """
        result: Dict[ServerKey, List[str]] = {}
        for server, record in self.servers.items():
            flags = self.flags_for(record)
            fingerprint_signal = (
                "fresh-fingerprint" in flags or "fingerprint-churn" in flags
            )
            if ("ratio" in flags and fingerprint_signal) or "ratio-extreme" in flags:
                result[server] = flags
        return result

    def full_takeovers(
        self, max_entities: int = 3, min_slots: int = REPLICAS * 3
    ) -> List[Tuple[Timestamp, List[ServerKey]]]:
        """Periods where a handful of IPs held (almost) every responsible slot.

        The 31 August 2013 signature: "6 other Tor relays ... from 3
        different IP addresses become the responsible HSDir's" — all six
        slots, one period, tiny distances.  Returns (period_start, servers)
        for each period where at most ``max_entities`` distinct IPs supplied
        at least ``min_slots`` suspiciously-positioned slots.
        """
        by_period: Dict[Timestamp, List[Tuple[ServerKey, float]]] = {}
        for server, record in self.servers.items():
            for event in record.events:
                by_period.setdefault(event.period_start, []).append(
                    (server, event.ratio)
                )
        takeovers: List[Tuple[Timestamp, List[ServerKey]]] = []
        for period_start, slots in sorted(by_period.items()):
            hot = [
                (server, ratio)
                for server, ratio in slots
                if ratio >= self.thresholds.ratio_suspicious
            ]
            if len(hot) < min_slots:
                continue
            ips = {server[0] for server, _ in hot}
            if len(ips) <= max_entities:
                takeovers.append(
                    (period_start, sorted({server for server, _ in hot}))
                )
        return takeovers


class TrackingAnalyzer:
    """Applies the rules to an archive for one target onion."""

    def __init__(
        self,
        archive: ConsensusArchive,
        thresholds: Optional[DetectionThresholds] = None,
    ) -> None:
        if len(archive) == 0:
            raise ConsensusError("cannot analyze an empty archive")
        self.archive = archive
        self.thresholds = thresholds if thresholds is not None else DetectionThresholds()

    def analyze(
        self,
        onion: OnionAddress,
        start: Timestamp,
        end: Timestamp,
        workers: Optional[int] = None,
    ) -> TrackingReport:
        """Analyze the window ``[start, end]`` (the paper split 3 years
        into yearly windows because the ring more than doubled).

        Per-period ring reconstruction is a pure read of the archive, so
        the sweep fans out over periods through
        :func:`repro.parallel.pmap`; the report merge walks periods in
        chronological order, so server records and their event lists are
        identical at every ``workers`` value.  (The closure keeps the
        multi-gigabyte-at-scale archive in-process.)
        """
        permanent_id = permanent_id_from_onion(onion)
        offset = (permanent_id[0] * DAY) // 256
        first_period = (int(start) + offset) // DAY
        last_period = (int(end) + offset) // DAY
        # Every (period, replica) descriptor ID the window needs, derived in
        # one indexed pass (entry ``(period - first_period) * REPLICAS +
        # replica`` — the same order the scalar loop derived them in) instead
        # of one SHA-1 pair per period inside the sweep.
        id_entries = descriptor_index_entries(onion, start, end)

        report = TrackingReport(
            onion=onion,
            window=(int(start), int(end)),
            periods_analyzed=0,
            mean_hsdir_count=0.0,
            thresholds=self.thresholds,
        )
        hsdir_counts: List[int] = []

        def scan_period(period):
            period_start = period * DAY - offset
            consensus = self.archive.at(period_start)
            if consensus is None:
                return None
            ring = consensus.hsdir_ring
            if len(ring) == 0:
                return None
            events: List[Tuple] = []
            base = (period - first_period) * REPLICAS
            for replica in range(REPLICAS):
                desc_id = id_entries[base + replica][0]
                for fingerprint in ring.responsible_for(desc_id):
                    entry = consensus.entry_for(fingerprint)
                    if entry is None:
                        continue
                    first_seen = self.archive.first_seen(fingerprint)
                    fresh = (
                        first_seen is not None
                        and period_start - first_seen
                        <= self.thresholds.fresh_fingerprint_periods * DAY
                    )
                    events.append(
                        (
                            entry.address,
                            entry.nickname,
                            fingerprint,
                            replica,
                            ring.positioning_ratio(desc_id, fingerprint),
                            fresh,
                        )
                    )
            return len(ring), events

        periods = list(range(first_period, last_period + 1))
        for period, observed in zip(
            periods, pmap(scan_period, periods, workers=workers)
        ):
            if observed is None:
                continue
            ring_size, events = observed
            report.periods_analyzed += 1
            hsdir_counts.append(ring_size)
            period_index = period - first_period
            period_start = period * DAY - offset
            for address, nickname, fingerprint, replica, ratio, fresh in events:
                record = report.servers.setdefault(
                    address, ServerRecord(server=address)
                )
                record.nicknames.add(nickname)
                record.fingerprints_used.add(fingerprint)
                record.events.append(
                    ResponsibilityEvent(
                        period_index=period_index,
                        period_start=period_start,
                        fingerprint=fingerprint,
                        nickname=nickname,
                        replica=replica,
                        ratio=ratio,
                        fresh_fingerprint=fresh,
                    )
                )
        if hsdir_counts:
            report.mean_hsdir_count = sum(hsdir_counts) / len(hsdir_counts)
        return report
