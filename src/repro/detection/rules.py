"""The five suspicion rules of Section VII.

1. **Frequency** — a relay chosen as responsible HSDir more often than
   chance allows.  With ``p = 6 / N_hsdir`` per period, counts are binomial;
   anything above ``μ + 3σ`` is suspicious.
2. **Fresh fingerprint** — the relay's fingerprint appeared in the
   consensus only just before it became responsible (it either changed its
   key or joined 25 hours earlier, the minimum to earn HSDir).  Suspicious
   when observed several times for the same server.
3. **Positioning ratio** — ``avg_dist / distance`` between the descriptor
   ID and the responsible fingerprint; honest relays sit near 1, trackers
   above 100, the boldest 2013 episode above 10,000.
4. **Fingerprint churn** — how many distinct identity keys one server
   (IP:port) used; honest operators rotate keys rarely.
5. **Consecutive periods** — staying responsible for the same service
   across consecutive 24-hour periods, which requires re-positioning after
   every descriptor rotation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AttackError


def binomial_threshold(periods: int, probability: float, sigmas: float = 3.0) -> float:
    """``μ + kσ`` of a Binomial(periods, probability).

    >>> round(binomial_threshold(365, 6 / 1200), 2)
    5.86
    """
    if periods < 0:
        raise AttackError(f"negative period count: {periods}")
    if not 0 <= probability <= 1:
        raise AttackError(f"probability out of range: {probability}")
    mean = periods * probability
    std = math.sqrt(periods * probability * (1 - probability))
    return mean + sigmas * std


@dataclass(frozen=True)
class DetectionThresholds:
    """Knobs for the five rules (paper defaults)."""

    frequency_sigmas: float = 3.0
    # "shortly before": a tracker must rotate ≥ 25 h ahead of its target
    # period (the HSDir uptime requirement), so at daily consensus cadence
    # the new fingerprint first appears one to two periods before it becomes
    # responsible.
    fresh_fingerprint_periods: int = 2
    fresh_fingerprint_min_events: int = 2  # "several times"
    ratio_suspicious: float = 100.0
    ratio_extreme: float = 10_000.0
    churn_max_fingerprints: int = 3  # more switches than this is unusual
    consecutive_min_periods: int = 2

    def __post_init__(self) -> None:
        if self.frequency_sigmas <= 0:
            raise AttackError("frequency_sigmas must be positive")
        if self.ratio_suspicious <= 1 or self.ratio_extreme < self.ratio_suspicious:
            raise AttackError("ratio thresholds must satisfy 1 < suspicious <= extreme")
        if self.fresh_fingerprint_min_events < 1:
            raise AttackError("fresh_fingerprint_min_events must be >= 1")
        if self.churn_max_fingerprints < 1:
            raise AttackError("churn_max_fingerprints must be >= 1")
        if self.consecutive_min_periods < 2:
            raise AttackError("consecutive_min_periods must be >= 2")
