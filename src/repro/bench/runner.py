"""The shared warmup/repeat measurement loop.

One policy for every benchmark: untimed setup, ``warmup`` discarded runs
(JIT-free Python still benefits — allocator warmth, branch caches, the
timeseries packed-log cache), then ``repeats`` timed runs whose wall times
all land in the record.  The checksum every run returns must be identical
across repeats — a drifting checksum means the workload is not
deterministic, which is a configuration bug, not a perf result.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.bench.schema import BenchRecord, WallStats
from repro.bench.workloads import Workload, get_workload
from repro.errors import BenchError
from repro.obs.scope import Observer, ensure_observer


def run_workload(
    workload: Union[str, Workload],
    tier: str,
    kernel: str,
    repeats: int = 3,
    warmup: int = 1,
    label: str = "",
    workers: int = 1,
    observer: Optional[Observer] = None,
) -> BenchRecord:
    """Measure one ``(workload, tier, kernel)`` cell and return its record.

    ``label`` annotates the point in the trajectory (e.g. which commit or
    experiment produced it); ``workers`` is recorded for context only — the
    workloads themselves run in-process so their checksums never depend on
    the environment.  ``observer`` receives wall-time histograms and run
    counters on the ordinary obs plane.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    if tier not in workload.tiers:
        raise BenchError(
            f"workload {workload.name!r} has no tier {tier!r} "
            f"(available: {', '.join(workload.tiers)})"
        )
    if repeats < 1:
        raise BenchError(f"repeats must be positive: {repeats}")
    if warmup < 0:
        raise BenchError(f"warmup must be non-negative: {warmup}")
    obs = ensure_observer(observer)

    state = workload.setup(tier)
    for _ in range(warmup):
        workload.run(state, kernel)

    per_repeat = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        current = workload.run(state, kernel)
        per_repeat.append(time.perf_counter() - started)
        if result is not None and current.checksum != result.checksum:
            raise BenchError(
                f"workload {workload.name!r} is not deterministic: checksum "
                f"changed between repeats ({result.checksum[:12]}… vs "
                f"{current.checksum[:12]}…)"
            )
        result = current
        obs.count("bench_runs_total", workload=workload.name, kernel=kernel)
        obs.observe(
            "bench_wall_seconds",
            per_repeat[-1],
            workload=workload.name,
            kernel=kernel,
        )
    obs.gauge("bench_items", result.items, workload=workload.name, tier=tier)

    return BenchRecord(
        name=workload.name,
        hot_path=workload.hot_path,
        tier=tier,
        kernel=kernel,
        label=label,
        workers=workers,
        warmup=warmup,
        repeats=repeats,
        items=result.items,
        checksum=result.checksum,
        sim_seconds=result.sim_seconds,
        wall=WallStats(
            mean_seconds=sum(per_repeat) / len(per_repeat),
            min_seconds=min(per_repeat),
            max_seconds=max(per_repeat),
            per_repeat_seconds=tuple(per_repeat),
        ),
    )
