"""Diffing trajectories: the perf-regression gate.

Two failure classes, deliberately distinct:

* **Regression** (exit 1) — the current run's best wall time for some
  ``(tier, kernel)`` cell is more than the threshold slower than the
  baseline's, *or* its checksum drifted at equal item count, which means a
  kernel stopped being byte-equivalent to its reference.  Both are verdicts
  about the code.
* **Not comparable** (exit 2) — the documents cannot be meaningfully
  diffed: different workloads, no overlapping cells, a current cell with no
  baseline (e.g. a ``paper``-tier point diffed against a ``small``-tier
  baseline), a shared cell whose item count changed, or (at the CLI) a
  missing baseline or a schema-version mismatch.  These are verdicts about
  the harness, and CI must not paint them green *or* blame the code.
  Baseline-only cells are fine — committed trajectories legitimately carry
  history (``paper`` points) that a quick run does not revisit.

Comparison uses ``min_seconds``: the minimum over repeats is the least
noise-contaminated estimate of a deterministic workload's cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bench.schema import BenchRecord, Trajectory

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_NOT_COMPARABLE = 2

#: Wall-time slowdown tolerated before a cell counts as regressed, percent.
DEFAULT_THRESHOLD_PCT = 20.0


@dataclass(frozen=True)
class ComparedPoint:
    """The verdict for one ``(tier, kernel)`` cell present in both runs."""

    tier: str
    kernel: str
    baseline_seconds: float
    current_seconds: float
    delta_pct: float
    checksum_drift: bool
    regressed: bool

    def describe(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        note = " [checksum drift]" if self.checksum_drift else ""
        return (
            f"{self.tier}/{self.kernel}: {self.baseline_seconds:.4f}s -> "
            f"{self.current_seconds:.4f}s ({self.delta_pct:+.1f}%) "
            f"{verdict}{note}"
        )


@dataclass
class CompareResult:
    """Outcome of one trajectory diff."""

    exit_code: int
    points: List[ComparedPoint] = field(default_factory=list)
    messages: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.exit_code == EXIT_OK

    def describe(self) -> str:
        lines = [point.describe() for point in self.points]
        lines.extend(self.messages)
        lines.append(f"exit {self.exit_code}")
        return "\n".join(lines)


def _last_per_cell(points: List[BenchRecord]) -> Dict[Tuple[str, str], BenchRecord]:
    cells: Dict[Tuple[str, str], BenchRecord] = {}
    for point in points:  # later points overwrite: the latest run speaks
        cells[(point.tier, point.kernel)] = point
    return cells


def _compare_cell(
    baseline: BenchRecord, current: BenchRecord, threshold_pct: float
) -> ComparedPoint:
    # A checksum drift at equal item count means a kernel's output changed —
    # the byte-equivalence contract broke, which no speedup can excuse.
    # At different item counts the workload spec itself changed, and the
    # wall times are not comparable either; that case never reaches here.
    drift = baseline.checksum != current.checksum
    base_seconds = baseline.wall.min_seconds
    cur_seconds = current.wall.min_seconds
    if base_seconds > 0:
        delta_pct = (cur_seconds - base_seconds) / base_seconds * 100.0
    else:
        delta_pct = 0.0
    return ComparedPoint(
        tier=baseline.tier,
        kernel=baseline.kernel,
        baseline_seconds=base_seconds,
        current_seconds=cur_seconds,
        delta_pct=delta_pct,
        checksum_drift=drift,
        regressed=drift or delta_pct > threshold_pct,
    )


def compare_trajectories(
    baseline: Trajectory,
    current: Trajectory,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> CompareResult:
    """Diff the latest run of every cell present in both trajectories."""
    if baseline.name != current.name:
        return CompareResult(
            exit_code=EXIT_NOT_COMPARABLE,
            messages=[
                f"cannot compare workload {current.name!r} "
                f"against baseline {baseline.name!r}"
            ],
        )
    base_cells = _last_per_cell(baseline.points)
    cur_cells = _last_per_cell(current.points)
    shared = sorted(set(base_cells) & set(cur_cells))
    messages = [
        f"no baseline for cell {tier}/{kernel}"
        for tier, kernel in sorted(set(cur_cells) - set(base_cells))
    ]
    if not shared:
        messages.append(f"no comparable cells for workload {current.name!r}")
        return CompareResult(exit_code=EXIT_NOT_COMPARABLE, messages=messages)
    # A measured current cell the baseline cannot vouch for is a harness
    # verdict, not a pass: exit 2 so mixed-tier runs (a paper point against
    # a small-only baseline) are never painted green by their small cells.
    uncovered = bool(messages)
    points = []
    for cell in shared:
        base, cur = base_cells[cell], cur_cells[cell]
        if base.items != cur.items:
            # The workload spec changed size between runs: wall times (and
            # checksums) are about different work, so the cell cannot be
            # judged — which must surface as exit 2, not as a silent skip
            # that leaves the gate green with the cell unexamined.
            messages.append(
                f"cell {cell[0]}/{cell[1]} changed size "
                f"({base.items} -> {cur.items} items); not compared"
            )
            uncovered = True
            continue
        points.append(_compare_cell(base, cur, threshold_pct))
    if not points:
        return CompareResult(exit_code=EXIT_NOT_COMPARABLE, messages=messages)
    if any(point.regressed for point in points):
        exit_code = EXIT_REGRESSION  # broken code outranks a broken harness
    elif uncovered:
        exit_code = EXIT_NOT_COMPARABLE
    else:
        exit_code = EXIT_OK
    return CompareResult(exit_code=exit_code, points=points, messages=messages)


def compare_within(
    trajectory: Trajectory, threshold_pct: float = DEFAULT_THRESHOLD_PCT
) -> CompareResult:
    """Diff a trajectory's last point against its own previous run.

    The single-file variant of :func:`compare_trajectories`: the point
    before the last one *in the same cell* is the baseline.  With fewer
    than two runs of that cell there is nothing to say (exit 2).
    """
    if not trajectory.points:
        return CompareResult(
            exit_code=EXIT_NOT_COMPARABLE,
            messages=[f"trajectory {trajectory.name!r} has no points"],
        )
    last = trajectory.points[-1]
    previous = None
    for point in trajectory.points[:-1]:
        if (point.tier, point.kernel) == (last.tier, last.kernel):
            previous = point
    if previous is None:
        return CompareResult(
            exit_code=EXIT_NOT_COMPARABLE,
            messages=[
                f"no earlier {last.tier}/{last.kernel} point to compare "
                f"against in {trajectory.name!r}"
            ],
        )
    if previous.items != last.items:
        return CompareResult(
            exit_code=EXIT_NOT_COMPARABLE,
            messages=[
                f"cell {last.tier}/{last.kernel} changed size "
                f"({previous.items} -> {last.items} items); not compared"
            ],
        )
    point = _compare_cell(previous, last, threshold_pct)
    return CompareResult(
        exit_code=EXIT_REGRESSION if point.regressed else EXIT_OK,
        points=[point],
    )
