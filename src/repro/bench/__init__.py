"""Machine-checkable performance trajectories (``repro bench``).

The bench plane turns the repo's human-readable ``benchmarks/reports/*.txt``
story into a regression system: deterministic workload specs exercise the
hot-path kernels (descriptor-window derivation, SHA-1 ring placement,
consensus generation, request-time-series aggregation) plus the end-to-end
``pipeline`` chain that strings them together, a shared runner
applies one warmup/repeat policy and captures wall time plus workload
checksums, every run appends a schema-versioned point to a ``BENCH_<name>.json``
trajectory, and ``repro bench compare`` diffs two trajectories and fails on
a regression past the threshold — or on a checksum drift, which would mean a
kernel stopped being byte-equivalent to its scalar reference.

Layering: like :mod:`repro.experiments`, this package sits *above* the
measurement layers it drives; nothing below may import it.
"""

from repro.bench.compare import (
    EXIT_NOT_COMPARABLE,
    EXIT_OK,
    EXIT_REGRESSION,
    CompareResult,
    ComparedPoint,
    compare_trajectories,
    compare_within,
)
from repro.bench.runner import run_workload
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchRecord,
    Trajectory,
    WallStats,
    canonical_json,
    record_from_dict,
    record_to_dict,
    strip_timing,
    trajectory_from_dict,
    trajectory_to_dict,
)
from repro.bench.trajectory import (
    append_point,
    load_trajectory,
    render_trajectory_text,
    trajectory_path,
    write_trajectory,
)
from repro.bench.workloads import (
    HOT_PATH_WORKLOADS,
    WORKLOADS,
    Workload,
    WorkloadResult,
    get_workload,
)

__all__ = [
    "EXIT_NOT_COMPARABLE",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "CompareResult",
    "ComparedPoint",
    "compare_trajectories",
    "compare_within",
    "run_workload",
    "SCHEMA_VERSION",
    "BenchRecord",
    "Trajectory",
    "WallStats",
    "canonical_json",
    "record_from_dict",
    "record_to_dict",
    "strip_timing",
    "trajectory_from_dict",
    "trajectory_to_dict",
    "append_point",
    "load_trajectory",
    "render_trajectory_text",
    "trajectory_path",
    "write_trajectory",
    "HOT_PATH_WORKLOADS",
    "WORKLOADS",
    "Workload",
    "WorkloadResult",
    "get_workload",
]
