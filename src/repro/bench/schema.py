"""The ``BENCH_*.json`` trajectory schema.

A *trajectory* is the perf history of one named workload: an ordered list of
*points*, each one run of the workload on some machine.  Everything in a
point except the ``wall`` timing block is deterministic — workload identity,
parameters, item count, and the result checksum that anchors the kernels'
byte-equivalence — so two trajectories are diffable with ``strip_timing``
and a golden can pin the format byte-for-byte.

Loaders are strict: a missing field or an unknown schema version raises
:class:`~repro.errors.BenchSchemaError` instead of guessing, exactly like
the :mod:`repro.io` loaders (schema drift must fail loudly, not skew a
comparison silently).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import BenchSchemaError

#: Version stamped into every record and trajectory; bump on layout change.
SCHEMA_VERSION = 1

#: Top-level record keys that hold run-to-run-varying timings.  Everything
#: else must be byte-stable for a fixed workload spec.
TIMING_FIELDS = ("wall",)


@dataclass(frozen=True)
class WallStats:
    """Wall-clock statistics over a run's timed repeats (seconds)."""

    mean_seconds: float
    min_seconds: float
    max_seconds: float
    per_repeat_seconds: Tuple[float, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
            "per_repeat_seconds": list(self.per_repeat_seconds),
        }


@dataclass(frozen=True)
class BenchRecord:
    """One trajectory point: one measured run of one workload spec."""

    name: str
    hot_path: str
    tier: str
    kernel: str
    label: str
    workers: int
    warmup: int
    repeats: int
    items: int
    checksum: str
    sim_seconds: int
    wall: WallStats


@dataclass
class Trajectory:
    """The ordered perf history stored in one ``BENCH_<name>.json``."""

    name: str
    points: List[BenchRecord] = field(default_factory=list)

    @property
    def last(self) -> BenchRecord:
        if not self.points:
            raise BenchSchemaError(f"trajectory {self.name!r} has no points")
        return self.points[-1]


def _field(data: Mapping[str, Any], key: str, kinds, where: str):
    if key not in data:
        raise BenchSchemaError(f"{where}: missing field {key!r}")
    value = data[key]
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise BenchSchemaError(
            f"{where}: field {key!r} has type {type(value).__name__}"
        )
    return value


def _check_schema(data: Mapping[str, Any], where: str) -> None:
    version = _field(data, "schema", int, where)
    if version != SCHEMA_VERSION:
        raise BenchSchemaError(
            f"{where}: schema version {version} does not match "
            f"supported version {SCHEMA_VERSION}"
        )


def record_to_dict(record: BenchRecord) -> Dict[str, Any]:
    """The JSON shape of one trajectory point (schema-stamped)."""
    return {
        "schema": SCHEMA_VERSION,
        "name": record.name,
        "hot_path": record.hot_path,
        "tier": record.tier,
        "kernel": record.kernel,
        "label": record.label,
        "workers": record.workers,
        "warmup": record.warmup,
        "repeats": record.repeats,
        "items": record.items,
        "checksum": record.checksum,
        "sim_seconds": record.sim_seconds,
        "wall": record.wall.to_dict(),
    }


def record_from_dict(data: Mapping[str, Any]) -> BenchRecord:
    """Strict decode of one trajectory point."""
    where = "bench record"
    _check_schema(data, where)
    wall = _field(data, "wall", dict, where)
    per_repeat = _field(wall, "per_repeat_seconds", list, "bench record wall")
    return BenchRecord(
        name=_field(data, "name", str, where),
        hot_path=_field(data, "hot_path", str, where),
        tier=_field(data, "tier", str, where),
        kernel=_field(data, "kernel", str, where),
        label=_field(data, "label", str, where),
        workers=_field(data, "workers", int, where),
        warmup=_field(data, "warmup", int, where),
        repeats=_field(data, "repeats", int, where),
        items=_field(data, "items", int, where),
        checksum=_field(data, "checksum", str, where),
        sim_seconds=_field(data, "sim_seconds", int, where),
        wall=WallStats(
            mean_seconds=_field(wall, "mean_seconds", (int, float), where),
            min_seconds=_field(wall, "min_seconds", (int, float), where),
            max_seconds=_field(wall, "max_seconds", (int, float), where),
            per_repeat_seconds=tuple(float(v) for v in per_repeat),
        ),
    )


def trajectory_to_dict(trajectory: Trajectory) -> Dict[str, Any]:
    """The JSON shape of a whole ``BENCH_<name>.json`` document."""
    return {
        "schema": SCHEMA_VERSION,
        "name": trajectory.name,
        "points": [record_to_dict(point) for point in trajectory.points],
    }


def trajectory_from_dict(data: Mapping[str, Any]) -> Trajectory:
    """Strict decode of a whole trajectory document."""
    where = "bench trajectory"
    if not isinstance(data, Mapping):
        raise BenchSchemaError(f"{where}: document is not an object")
    _check_schema(data, where)
    points = _field(data, "points", list, where)
    return Trajectory(
        name=_field(data, "name", str, where),
        points=[record_from_dict(point) for point in points],
    )


def canonical_json(data: Mapping[str, Any]) -> str:
    """The one rendering every BENCH artifact uses: sorted, indented, LF-final.

    Key order, indentation, and the trailing newline are all pinned so that
    identical content is identical bytes — which is what makes trajectories
    diffable and the schema golden meaningful.
    """
    return json.dumps(data, indent=2, sort_keys=True, ensure_ascii=False) + "\n"


def strip_timing(data: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of a record/trajectory dict with the timing blocks removed.

    Applied to every point of a trajectory dict (or to a single record),
    what remains must be byte-identical run-to-run for a fixed workload —
    the contract the golden regression test pins.
    """
    cleaned = {k: v for k, v in data.items() if k not in TIMING_FIELDS}
    if "points" in cleaned and isinstance(cleaned["points"], list):
        cleaned["points"] = [
            strip_timing(point) if isinstance(point, Mapping) else point
            for point in cleaned["points"]
        ]
    return cleaned
