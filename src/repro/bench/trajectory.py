"""Reading, writing, and rendering ``BENCH_<name>.json`` trajectories.

The JSON file at the repo root is the artifact of record; the text table is
a *view* over it (never the other way round), so tooling that diffs or
gates on perf always works from the structured document.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Union

from repro.bench.schema import (
    BenchRecord,
    Trajectory,
    canonical_json,
    trajectory_from_dict,
    trajectory_to_dict,
)
from repro.errors import BenchError, BenchSchemaError

_NAME_RE = re.compile(r"^[A-Za-z0-9_]+$")


def trajectory_path(name: str, root: Union[str, Path] = ".") -> Path:
    """Where workload ``name``'s trajectory lives under ``root``."""
    if not _NAME_RE.match(name):
        raise BenchError(f"workload name not filesystem-safe: {name!r}")
    return Path(root) / f"BENCH_{name}.json"


def load_trajectory(path: Union[str, Path]) -> Trajectory:
    """Strictly decode the trajectory document at ``path``."""
    path = Path(path)
    if not path.exists():
        raise BenchSchemaError(f"no trajectory at {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BenchSchemaError(f"{path} is not valid JSON: {error}") from error
    return trajectory_from_dict(data)


def write_trajectory(path: Union[str, Path], trajectory: Trajectory) -> None:
    """Write ``trajectory`` canonically (stable bytes for stable content)."""
    Path(path).write_text(
        canonical_json(trajectory_to_dict(trajectory)), encoding="utf-8"
    )


def append_point(path: Union[str, Path], record: BenchRecord) -> Trajectory:
    """Append one run to the trajectory at ``path``, creating it if absent."""
    path = Path(path)
    if path.exists():
        trajectory = load_trajectory(path)
        if trajectory.name != record.name:
            raise BenchSchemaError(
                f"{path} tracks workload {trajectory.name!r}, "
                f"not {record.name!r}"
            )
    else:
        trajectory = Trajectory(name=record.name)
    trajectory.points.append(record)
    write_trajectory(path, trajectory)
    return trajectory


def render_trajectory_text(trajectory: Trajectory) -> str:
    """The human-readable table view of a trajectory."""
    lines = [f"== bench trajectory: {trajectory.name} =="]
    header = (
        f"{'#':>3}  {'tier':<6} {'kernel':<7} {'workers':>7} {'items':>9} "
        f"{'min(s)':>10} {'mean(s)':>10} {'checksum':<14} label"
    )
    lines.append(header)
    for index, point in enumerate(trajectory.points):
        lines.append(
            f"{index:>3}  {point.tier:<6} {point.kernel:<7} "
            f"{point.workers:>7} {point.items:>9} "
            f"{point.wall.min_seconds:>10.4f} {point.wall.mean_seconds:>10.4f} "
            f"{point.checksum[:12] + '…':<14} {point.label}"
        )
    if not trajectory.points:
        lines.append("(no points)")
    return "\n".join(lines)
