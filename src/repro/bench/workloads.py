"""Deterministic workload specs for the hot-path kernels.

Every workload is a pure function of ``(tier, kernel)``: the input world is
drawn from :func:`repro.sim.rng.derive_rng` with a fixed lineage, and the
result is reduced to a SHA-256 checksum.  Because the batch kernels are
byte-equivalent to their scalar references, a workload's checksum is
*kernel-independent* — which is what lets ``repro bench compare`` treat a
checksum drift between trajectory points as a broken kernel rather than a
perf story.

Tiers scale the same world shape: ``smoke`` (CI-fast sanity), ``small``
(the committed-trajectory default), ``paper`` (the study's full Section V
scale, 39,824 onions over the 28 Jan – 8 Feb 2013 window).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, NamedTuple, Tuple

from repro.crypto.descriptor_id import (
    REPLICAS,
    descriptor_index_entries,
    descriptor_index_entries_batch,
)
from repro.crypto.onion import onion_address_from_key
from repro.crypto.ring import responsible_positions, responsible_positions_batch
from repro.dirauth.consensus import (
    ConsensusEntry,
    apply_per_ip_limit,
    apply_per_ip_limit_scalar,
)
from repro.errors import BenchError
from repro.hsdir.directory import HSDirServer, RequestRecord
from repro.popularity.timeseries import (
    classify_services_by_shape,
    classify_services_by_shape_scalar,
    merge_series,
    merge_series_scalar,
    series_from_log,
    series_from_log_scalar,
)
from repro.relay.flags import RelayFlags
from repro.sim.clock import DAY, HOUR, parse_date
from repro.sim.rng import derive_rng
from repro.trawl.harvest import RingHistory

#: The Section V resolution window: "for each day between 28 January 2013
#: and 8 February".
WINDOW_START = parse_date("2013-01-28")
WINDOW_END = parse_date("2013-02-08")

KERNELS = ("scalar", "batch")


class WorkloadResult(NamedTuple):
    """What one timed run of a workload produces."""

    checksum: str
    items: int
    sim_seconds: int = 0


@dataclass(frozen=True)
class Workload:
    """One named, deterministic benchmark workload.

    ``setup(tier)`` builds the input world (untimed); ``run(state, kernel)``
    executes one of :data:`KERNELS` over it and reduces the output to a
    :class:`WorkloadResult` whose checksum must not depend on the kernel.
    """

    name: str
    hot_path: str
    tiers: Tuple[str, ...]
    setup: Callable[[str], Any]
    run: Callable[[Any, str], WorkloadResult]


def _tier_param(name: str, table: Dict[str, Any], tier: str) -> Any:
    try:
        return table[tier]
    except KeyError:
        raise BenchError(
            f"workload {name!r} has no tier {tier!r} "
            f"(available: {', '.join(sorted(table))})"
        ) from None


def _check_kernel(kernel: str) -> None:
    if kernel not in KERNELS:
        raise BenchError(
            f"unknown kernel {kernel!r} (available: {', '.join(KERNELS)})"
        )


# --------------------------------------------------------------------------
# descriptor_window — Section V index derivation over the date window.

_DESCRIPTOR_ONIONS = {"smoke": 48, "small": 1_500, "paper": 39_824}


def _descriptor_setup(tier: str):
    count = _tier_param("descriptor_window", _DESCRIPTOR_ONIONS, tier)
    rng = derive_rng(0, "bench", "descriptor_window", tier)
    return [onion_address_from_key(rng.randbytes(140)) for _ in range(count)]


def _descriptor_run(onions, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    if kernel == "batch":
        per_onion = descriptor_index_entries_batch(onions, WINDOW_START, WINDOW_END)
    else:
        per_onion = [
            descriptor_index_entries(onion, WINDOW_START, WINDOW_END)
            for onion in onions
        ]
    digest = hashlib.sha256()
    for entries in per_onion:
        for desc, period_start in entries:
            digest.update(desc)
            digest.update(struct.pack(">q", period_start))
    return WorkloadResult(
        checksum=digest.hexdigest(),
        items=len(onions),
        sim_seconds=int(WINDOW_END - WINDOW_START),
    )


# --------------------------------------------------------------------------
# ring_placement — responsible-HSDir lookup for many descriptor IDs.

_RING_SHAPE = {  # (ring members, descriptor-ID queries)
    "smoke": (32, 128),
    "small": (1_200, 30_000),
    "paper": (1_400, 80_000),
}


def _ring_setup(tier: str):
    members, queries = _tier_param("ring_placement", _RING_SHAPE, tier)
    rng = derive_rng(0, "bench", "ring_placement", tier)
    points = sorted(
        {int.from_bytes(rng.randbytes(20), "big") for _ in range(members)}
    )
    descriptor_points = [
        int.from_bytes(rng.randbytes(20), "big") for _ in range(queries)
    ]
    return points, descriptor_points


def _ring_run(state, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    points, descriptor_points = state
    if kernel == "batch":
        placements = responsible_positions_batch(descriptor_points, points)
    else:
        placements = [
            responsible_positions(point, points) for point in descriptor_points
        ]
    digest = hashlib.sha256()
    for positions in placements:
        for position in positions:
            digest.update(position.to_bytes(20, "big"))
    return WorkloadResult(
        checksum=digest.hexdigest(), items=len(descriptor_points)
    )


# --------------------------------------------------------------------------
# consensus — hourly per-IP admission sweeps.

_CONSENSUS_SHAPE = {  # (hourly snapshots, candidates per snapshot)
    "smoke": (3, 80),
    "small": (48, 800),
    "paper": (264, 1_500),
}


def _consensus_setup(tier: str):
    hours, per_hour = _tier_param("consensus", _CONSENSUS_SHAPE, tier)
    rng = derive_rng(0, "bench", "consensus", tier)
    # A quarter as many IPs as relays forces real per-IP contention — the
    # regime the two-relays-per-IP rule exists for.
    ip_pool = [rng.getrandbits(32) for _ in range(max(1, per_hour // 4))]
    snapshots = []
    for hour in range(hours):
        snapshots.append(
            [
                ConsensusEntry(
                    fingerprint=rng.randbytes(20),
                    nickname=f"relay{hour}x{index}",
                    ip=rng.choice(ip_pool),
                    or_port=9001,
                    bandwidth=rng.randrange(1, 100_000),
                    flags=RelayFlags.RUNNING | RelayFlags.VALID
                    | (RelayFlags.HSDIR if rng.random() < 0.5 else RelayFlags.NONE),
                )
                for index in range(per_hour)
            ]
        )
    return snapshots


def _consensus_run(snapshots, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    limit_fn = apply_per_ip_limit if kernel == "batch" else apply_per_ip_limit_scalar
    digest = hashlib.sha256()
    items = 0
    for candidates in snapshots:
        items += len(candidates)
        for entry in limit_fn(candidates):
            digest.update(entry.fingerprint)
    return WorkloadResult(
        checksum=digest.hexdigest(),
        items=items,
        sim_seconds=len(snapshots) * HOUR,
    )


# --------------------------------------------------------------------------
# timeseries — per-service bucketing, cross-directory merge, shape labels.

_TIMESERIES_SHAPE = {  # (directories, services, requests per service, days)
    "smoke": (2, 6, 40, 2),
    "small": (3, 64, 150, 12),
    "paper": (6, 400, 400, 12),
}


def _timeseries_setup(tier: str):
    directories, services, per_service, days = _tier_param(
        "timeseries", _TIMESERIES_SHAPE, tier
    )
    rng = derive_rng(0, "bench", "timeseries", tier)
    start = WINDOW_START
    end = start + days * DAY
    servers = [HSDirServer(relay_id=i, keep_log=True) for i in range(directories)]
    ids_per_service: Dict[str, bytes] = {
        f"service{index}": rng.randbytes(20) for index in range(services)
    }
    for desc in ids_per_service.values():
        for _ in range(per_service):
            server = rng.choice(servers)
            server.request_log.append(
                RequestRecord(
                    time=rng.randrange(int(start), int(end)),
                    descriptor_id=desc,
                    found=True,
                )
            )
    return servers, ids_per_service, start, end


def _timeseries_run(state, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    servers, ids_per_service, start, end = state
    if kernel == "batch":
        from_log, merge, classify = (
            series_from_log,
            merge_series,
            classify_services_by_shape,
        )
    else:
        from_log, merge, classify = (
            series_from_log_scalar,
            merge_series_scalar,
            classify_services_by_shape_scalar,
        )
    merged: Dict[str, Any] = {}
    for service, desc in ids_per_service.items():
        merged[service] = merge(
            [
                from_log(server, start, end, descriptor_ids=[desc])
                for server in servers
            ]
        )
    labels = classify(merged)
    digest = hashlib.sha256()
    items = 0
    for service, series in merged.items():
        items += series.total
        digest.update(service.encode())
        digest.update(labels[service].encode())
        for count in series.counts:
            digest.update(struct.pack(">q", count))
    return WorkloadResult(
        checksum=digest.hexdigest(),
        items=items,
        sim_seconds=int(end - start),
    )


# --------------------------------------------------------------------------
# pipeline — the end-to-end Section V chain, the way the experiments now run
# it: window index derivation → request resolution → attacker-coverage rate
# normalisation → shape classification of the busiest services.  Unlike the
# single-kernel workloads above, one run exercises every batch API in the
# order the harvest/table2 wiring calls them, so a regression anywhere in
# the chain shows up here even when each kernel's own workload stays flat.

_PIPELINE_SHAPE = {
    # (onions, ring members, hourly snapshots, phantom IDs, classified)
    "smoke": (24, 32, 4, 60, 8),
    "small": (600, 1_200, 12, 2_400, 64),
    # Study-shaped rather than study-sized: ring members (1,400) and the
    # ~80%-unresolvable phantom share match Section V, but the onion corpus
    # is subsampled so the chained *scalar* oracle stays runnable — the
    # full 39,824-onion derivation cost is already priced by the
    # descriptor_window paper tier.
    "paper": (12_000, 1_400, 24, 23_010, 256),
}


def _pipeline_setup(tier: str):
    onion_count, members, hours, phantoms, classified = _tier_param(
        "pipeline", _PIPELINE_SHAPE, tier
    )
    rng = derive_rng(0, "bench", "pipeline", tier)
    onions = [onion_address_from_key(rng.randbytes(140)) for _ in range(onion_count)]
    points = sorted(
        {int.from_bytes(rng.randbytes(20), "big") for _ in range(members)}
    )
    history = RingHistory()
    sweep_start = WINDOW_START
    sweep_end = WINDOW_START + hours * HOUR
    for hour in range(hours):
        attacker = set(rng.sample(points, max(1, len(points) // 10)))
        history.record(sweep_start + (hour + 1) * HOUR, points, attacker)
    # Request counters: each onion's first-day descriptor IDs carry real
    # traffic; the phantoms (never derivable from any onion) reproduce the
    # paper's ~80% unresolvable share.  The batch derivation here is setup
    # plumbing — the timed run re-derives with the kernel under test.
    index = descriptor_index_entries_batch(onions, WINDOW_START, WINDOW_END)
    request_counts: Dict[bytes, Tuple[int, int]] = {}
    for entries in index:
        for desc, _ in entries[:REPLICAS]:
            request_counts[desc] = (rng.randrange(0, 40), rng.randrange(0, 8))
    for _ in range(phantoms):
        request_counts[rng.randbytes(20)] = (0, rng.randrange(1, 6))
    # A merged attacker request log feeding the shape stage; only the first
    # few onions' IDs get records so the scalar per-service log rescan stays
    # proportional to the classified set, not the corpus.
    server = HSDirServer(relay_id=-1, keep_log=True)
    for entries in index[: classified * 2]:
        for desc, _ in entries[:REPLICAS]:
            for _ in range(rng.randrange(2, 6)):
                server.request_log.append(
                    RequestRecord(
                        time=rng.randrange(int(sweep_start), int(sweep_end)),
                        descriptor_id=desc,
                        found=True,
                    )
                )
    return onions, history, request_counts, server, sweep_start, sweep_end, classified


def _pipeline_run(state, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    onions, history, request_counts, server, sweep_start, sweep_end, classified = state
    # Stage 1 — the resolver's window index (descriptor-ID → onion/validity).
    if kernel == "batch":
        per_onion = descriptor_index_entries_batch(onions, WINDOW_START, WINDOW_END)
    else:
        per_onion = [
            descriptor_index_entries(onion, WINDOW_START, WINDOW_END)
            for onion in onions
        ]
    owner: Dict[bytes, Any] = {}
    validity: Dict[bytes, Tuple[int, int]] = {}
    for onion, entries in zip(onions, per_onion):
        for desc, period_start in entries:
            if desc not in owner:
                owner[desc] = onion
                validity[desc] = (period_start, period_start + DAY)
    # Stage 2 — normalise every counter by attacker ring coverage: the
    # resolved IDs against their own validity windows (table2's unthinned
    # rates), every counter against full-sweep coverage (normalized_total).
    resolvable = [
        (desc, found, missing, validity[desc])
        for desc, (found, missing) in request_counts.items()
        if desc in owner
    ]
    everything = [
        (desc, found, missing, None)
        for desc, (found, missing) in request_counts.items()
    ]
    if kernel == "batch":
        rates = history.normalized_rates_batch(resolvable)
        total_rates = history.normalized_rates_batch(everything)
    else:
        rates = [
            history.normalized_rate(desc, found, missing, validity=window)
            for desc, found, missing, window in resolvable
        ]
        total_rates = [
            history.normalized_rate(desc, found, missing)
            for desc, found, missing, _ in everything
        ]
    per_onion_rate: Dict[Any, float] = {}
    ids_per_onion: Dict[Any, list] = {}
    for (desc, _, _, _), rate in zip(resolvable, rates):
        onion = owner[desc]
        per_onion_rate[onion] = per_onion_rate.get(onion, 0.0) + rate
        ids_per_onion.setdefault(onion, []).append(desc)
    # Stage 3 — shape-classify the busiest services (rates are bit-identical
    # across kernels, so this ranking cannot diverge between them).
    ranked = sorted(
        per_onion_rate, key=lambda onion: (-per_onion_rate[onion], onion)
    )[:classified]
    if kernel == "batch":
        from_log, classify = series_from_log, classify_services_by_shape
    else:
        from_log, classify = series_from_log_scalar, classify_services_by_shape_scalar
    series = {
        onion: from_log(
            server, sweep_start, sweep_end, descriptor_ids=ids_per_onion[onion]
        )
        for onion in ranked
    }
    labels = classify(series)
    digest = hashlib.sha256()
    for (desc, _, _, _), rate in zip(resolvable, rates):
        digest.update(desc)
        digest.update(struct.pack(">d", rate))
    digest.update(struct.pack(">d", sum(total_rates)))
    for onion in ranked:
        digest.update(onion.encode())
        digest.update(labels[onion].encode())
        for count in series[onion].counts:
            digest.update(struct.pack(">q", count))
    return WorkloadResult(
        checksum=digest.hexdigest(),
        items=len(request_counts),
        sim_seconds=int(WINDOW_END - WINDOW_START),
    )


# --------------------------------------------------------------------------
# toy — a milliseconds-fast workload for the bench plane's own tests.

_TOY_COUNT = {"smoke": 64, "small": 1_024}


def _toy_setup(tier: str):
    count = _tier_param("toy", _TOY_COUNT, tier)
    rng = derive_rng(0, "bench", "toy", tier)
    return [rng.randrange(1 << 30) for _ in range(count)]


def _toy_run(values, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    if kernel == "batch":
        total = sum(values)
    else:
        total = 0
        for value in values:
            total += value
    digest = hashlib.sha256(struct.pack(">q", total))
    for value in values:
        digest.update(struct.pack(">q", value))
    return WorkloadResult(checksum=digest.hexdigest(), items=len(values))


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in (
        Workload(
            name="descriptor_window",
            hot_path="repro.crypto.descriptor_id.descriptor_index_entries_batch",
            tiers=("smoke", "small", "paper"),
            setup=_descriptor_setup,
            run=_descriptor_run,
        ),
        Workload(
            name="ring_placement",
            hot_path="repro.crypto.ring.responsible_positions_batch",
            tiers=("smoke", "small", "paper"),
            setup=_ring_setup,
            run=_ring_run,
        ),
        Workload(
            name="consensus",
            hot_path="repro.dirauth.consensus.apply_per_ip_limit",
            tiers=("smoke", "small", "paper"),
            setup=_consensus_setup,
            run=_consensus_run,
        ),
        Workload(
            name="timeseries",
            hot_path="repro.popularity.timeseries.classify_services_by_shape",
            tiers=("smoke", "small", "paper"),
            setup=_timeseries_setup,
            run=_timeseries_run,
        ),
        Workload(
            name="pipeline",
            hot_path="repro.trawl.harvest.RingHistory.normalized_rates_batch",
            tiers=("smoke", "small", "paper"),
            setup=_pipeline_setup,
            run=_pipeline_run,
        ),
        Workload(
            name="toy",
            hot_path="repro.bench.workloads._toy_run",
            tiers=("smoke", "small"),
            setup=_toy_setup,
            run=_toy_run,
        ),
    )
}

#: The workloads the trajectory gate watches (``toy`` is test plumbing):
#: the four hot-path kernels plus the end-to-end ``pipeline`` chain.
HOT_PATH_WORKLOADS = (
    "descriptor_window",
    "ring_placement",
    "consensus",
    "timeseries",
    "pipeline",
)


def get_workload(name: str) -> Workload:
    """The registered workload called ``name``."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise BenchError(
            f"unknown workload {name!r} "
            f"(available: {', '.join(sorted(WORKLOADS))})"
        ) from None
