"""Deterministic workload specs for the four hot-path kernels.

Every workload is a pure function of ``(tier, kernel)``: the input world is
drawn from :func:`repro.sim.rng.derive_rng` with a fixed lineage, and the
result is reduced to a SHA-256 checksum.  Because the batch kernels are
byte-equivalent to their scalar references, a workload's checksum is
*kernel-independent* — which is what lets ``repro bench compare`` treat a
checksum drift between trajectory points as a broken kernel rather than a
perf story.

Tiers scale the same world shape: ``smoke`` (CI-fast sanity), ``small``
(the committed-trajectory default), ``paper`` (the study's full Section V
scale, 39,824 onions over the 28 Jan – 8 Feb 2013 window).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, NamedTuple, Tuple

from repro.crypto.descriptor_id import (
    descriptor_index_entries,
    descriptor_index_entries_batch,
)
from repro.crypto.onion import onion_address_from_key
from repro.crypto.ring import responsible_positions, responsible_positions_batch
from repro.dirauth.consensus import (
    ConsensusEntry,
    apply_per_ip_limit,
    apply_per_ip_limit_scalar,
)
from repro.errors import BenchError
from repro.hsdir.directory import HSDirServer, RequestRecord
from repro.popularity.timeseries import (
    classify_services_by_shape,
    classify_services_by_shape_scalar,
    merge_series,
    merge_series_scalar,
    series_from_log,
    series_from_log_scalar,
)
from repro.relay.flags import RelayFlags
from repro.sim.clock import DAY, HOUR, parse_date
from repro.sim.rng import derive_rng

#: The Section V resolution window: "for each day between 28 January 2013
#: and 8 February".
WINDOW_START = parse_date("2013-01-28")
WINDOW_END = parse_date("2013-02-08")

KERNELS = ("scalar", "batch")


class WorkloadResult(NamedTuple):
    """What one timed run of a workload produces."""

    checksum: str
    items: int
    sim_seconds: int = 0


@dataclass(frozen=True)
class Workload:
    """One named, deterministic benchmark workload.

    ``setup(tier)`` builds the input world (untimed); ``run(state, kernel)``
    executes one of :data:`KERNELS` over it and reduces the output to a
    :class:`WorkloadResult` whose checksum must not depend on the kernel.
    """

    name: str
    hot_path: str
    tiers: Tuple[str, ...]
    setup: Callable[[str], Any]
    run: Callable[[Any, str], WorkloadResult]


def _tier_param(name: str, table: Dict[str, Any], tier: str) -> Any:
    try:
        return table[tier]
    except KeyError:
        raise BenchError(
            f"workload {name!r} has no tier {tier!r} "
            f"(available: {', '.join(sorted(table))})"
        ) from None


def _check_kernel(kernel: str) -> None:
    if kernel not in KERNELS:
        raise BenchError(
            f"unknown kernel {kernel!r} (available: {', '.join(KERNELS)})"
        )


# --------------------------------------------------------------------------
# descriptor_window — Section V index derivation over the date window.

_DESCRIPTOR_ONIONS = {"smoke": 48, "small": 1_500, "paper": 39_824}


def _descriptor_setup(tier: str):
    count = _tier_param("descriptor_window", _DESCRIPTOR_ONIONS, tier)
    rng = derive_rng(0, "bench", "descriptor_window", tier)
    return [onion_address_from_key(rng.randbytes(140)) for _ in range(count)]


def _descriptor_run(onions, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    if kernel == "batch":
        per_onion = descriptor_index_entries_batch(onions, WINDOW_START, WINDOW_END)
    else:
        per_onion = [
            descriptor_index_entries(onion, WINDOW_START, WINDOW_END)
            for onion in onions
        ]
    digest = hashlib.sha256()
    for entries in per_onion:
        for desc, period_start in entries:
            digest.update(desc)
            digest.update(struct.pack(">q", period_start))
    return WorkloadResult(
        checksum=digest.hexdigest(),
        items=len(onions),
        sim_seconds=int(WINDOW_END - WINDOW_START),
    )


# --------------------------------------------------------------------------
# ring_placement — responsible-HSDir lookup for many descriptor IDs.

_RING_SHAPE = {  # (ring members, descriptor-ID queries)
    "smoke": (32, 128),
    "small": (1_200, 30_000),
    "paper": (1_400, 80_000),
}


def _ring_setup(tier: str):
    members, queries = _tier_param("ring_placement", _RING_SHAPE, tier)
    rng = derive_rng(0, "bench", "ring_placement", tier)
    points = sorted(
        {int.from_bytes(rng.randbytes(20), "big") for _ in range(members)}
    )
    descriptor_points = [
        int.from_bytes(rng.randbytes(20), "big") for _ in range(queries)
    ]
    return points, descriptor_points


def _ring_run(state, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    points, descriptor_points = state
    if kernel == "batch":
        placements = responsible_positions_batch(descriptor_points, points)
    else:
        placements = [
            responsible_positions(point, points) for point in descriptor_points
        ]
    digest = hashlib.sha256()
    for positions in placements:
        for position in positions:
            digest.update(position.to_bytes(20, "big"))
    return WorkloadResult(
        checksum=digest.hexdigest(), items=len(descriptor_points)
    )


# --------------------------------------------------------------------------
# consensus — hourly per-IP admission sweeps.

_CONSENSUS_SHAPE = {  # (hourly snapshots, candidates per snapshot)
    "smoke": (3, 80),
    "small": (48, 800),
    "paper": (264, 1_500),
}


def _consensus_setup(tier: str):
    hours, per_hour = _tier_param("consensus", _CONSENSUS_SHAPE, tier)
    rng = derive_rng(0, "bench", "consensus", tier)
    # A quarter as many IPs as relays forces real per-IP contention — the
    # regime the two-relays-per-IP rule exists for.
    ip_pool = [rng.getrandbits(32) for _ in range(max(1, per_hour // 4))]
    snapshots = []
    for hour in range(hours):
        snapshots.append(
            [
                ConsensusEntry(
                    fingerprint=rng.randbytes(20),
                    nickname=f"relay{hour}x{index}",
                    ip=rng.choice(ip_pool),
                    or_port=9001,
                    bandwidth=rng.randrange(1, 100_000),
                    flags=RelayFlags.RUNNING | RelayFlags.VALID
                    | (RelayFlags.HSDIR if rng.random() < 0.5 else RelayFlags.NONE),
                )
                for index in range(per_hour)
            ]
        )
    return snapshots


def _consensus_run(snapshots, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    limit_fn = apply_per_ip_limit if kernel == "batch" else apply_per_ip_limit_scalar
    digest = hashlib.sha256()
    items = 0
    for candidates in snapshots:
        items += len(candidates)
        for entry in limit_fn(candidates):
            digest.update(entry.fingerprint)
    return WorkloadResult(
        checksum=digest.hexdigest(),
        items=items,
        sim_seconds=len(snapshots) * HOUR,
    )


# --------------------------------------------------------------------------
# timeseries — per-service bucketing, cross-directory merge, shape labels.

_TIMESERIES_SHAPE = {  # (directories, services, requests per service, days)
    "smoke": (2, 6, 40, 2),
    "small": (3, 64, 150, 12),
    "paper": (6, 400, 400, 12),
}


def _timeseries_setup(tier: str):
    directories, services, per_service, days = _tier_param(
        "timeseries", _TIMESERIES_SHAPE, tier
    )
    rng = derive_rng(0, "bench", "timeseries", tier)
    start = WINDOW_START
    end = start + days * DAY
    servers = [HSDirServer(relay_id=i, keep_log=True) for i in range(directories)]
    ids_per_service: Dict[str, bytes] = {
        f"service{index}": rng.randbytes(20) for index in range(services)
    }
    for desc in ids_per_service.values():
        for _ in range(per_service):
            server = rng.choice(servers)
            server.request_log.append(
                RequestRecord(
                    time=rng.randrange(int(start), int(end)),
                    descriptor_id=desc,
                    found=True,
                )
            )
    return servers, ids_per_service, start, end


def _timeseries_run(state, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    servers, ids_per_service, start, end = state
    if kernel == "batch":
        from_log, merge, classify = (
            series_from_log,
            merge_series,
            classify_services_by_shape,
        )
    else:
        from_log, merge, classify = (
            series_from_log_scalar,
            merge_series_scalar,
            classify_services_by_shape_scalar,
        )
    merged: Dict[str, Any] = {}
    for service, desc in ids_per_service.items():
        merged[service] = merge(
            [
                from_log(server, start, end, descriptor_ids=[desc])
                for server in servers
            ]
        )
    labels = classify(merged)
    digest = hashlib.sha256()
    items = 0
    for service, series in merged.items():
        items += series.total
        digest.update(service.encode())
        digest.update(labels[service].encode())
        for count in series.counts:
            digest.update(struct.pack(">q", count))
    return WorkloadResult(
        checksum=digest.hexdigest(),
        items=items,
        sim_seconds=int(end - start),
    )


# --------------------------------------------------------------------------
# toy — a milliseconds-fast workload for the bench plane's own tests.

_TOY_COUNT = {"smoke": 64, "small": 1_024}


def _toy_setup(tier: str):
    count = _tier_param("toy", _TOY_COUNT, tier)
    rng = derive_rng(0, "bench", "toy", tier)
    return [rng.randrange(1 << 30) for _ in range(count)]


def _toy_run(values, kernel: str) -> WorkloadResult:
    _check_kernel(kernel)
    if kernel == "batch":
        total = sum(values)
    else:
        total = 0
        for value in values:
            total += value
    digest = hashlib.sha256(struct.pack(">q", total))
    for value in values:
        digest.update(struct.pack(">q", value))
    return WorkloadResult(checksum=digest.hexdigest(), items=len(values))


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in (
        Workload(
            name="descriptor_window",
            hot_path="repro.crypto.descriptor_id.descriptor_index_entries_batch",
            tiers=("smoke", "small", "paper"),
            setup=_descriptor_setup,
            run=_descriptor_run,
        ),
        Workload(
            name="ring_placement",
            hot_path="repro.crypto.ring.responsible_positions_batch",
            tiers=("smoke", "small", "paper"),
            setup=_ring_setup,
            run=_ring_run,
        ),
        Workload(
            name="consensus",
            hot_path="repro.dirauth.consensus.apply_per_ip_limit",
            tiers=("smoke", "small", "paper"),
            setup=_consensus_setup,
            run=_consensus_run,
        ),
        Workload(
            name="timeseries",
            hot_path="repro.popularity.timeseries.classify_services_by_shape",
            tiers=("smoke", "small", "paper"),
            setup=_timeseries_setup,
            run=_timeseries_run,
        ),
        Workload(
            name="toy",
            hot_path="repro.bench.workloads._toy_run",
            tiers=("smoke", "small"),
            setup=_toy_setup,
            run=_toy_run,
        ),
    )
}

#: The four kernels the trajectory gate watches (``toy`` is test plumbing).
HOT_PATH_WORKLOADS = (
    "descriptor_window",
    "ring_placement",
    "consensus",
    "timeseries",
)


def get_workload(name: str) -> Workload:
    """The registered workload called ``name``."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise BenchError(
            f"unknown workload {name!r} "
            f"(available: {', '.join(sorted(WORKLOADS))})"
        ) from None
