"""Report-artifact plumbing shared by every ``benchmarks/bench_*.py``.

Until the bench plane existed, each benchmark carried its own copy of the
"write ``reports/<name>.txt`` and echo it" helper via ``conftest.py``; the
one implementation now lives here so the report policy (encoding, trailing
newline, echo for ``-s`` runs) cannot drift between benches.  Text reports
remain *views*: anything machine-gated goes through the JSON trajectories
in :mod:`repro.bench.trajectory`, never through these files.
"""

from __future__ import annotations

import pathlib


def save_report(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a report artifact and echo it for ``-s`` runs."""
    report_dir.mkdir(exist_ok=True)
    (report_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


def save_span_report(report_dir: pathlib.Path, name: str, observer) -> None:
    """Persist a run's per-phase span-timing tree (simulated time).

    The tree shows where the campaign's simulated seconds went (the scan's
    eight days, the crawl's connect latencies) — the deterministic
    complement to the benchmark's wall-clock numbers.
    """
    from repro.obs import render_spans

    text = render_spans(observer)
    report_dir.mkdir(exist_ok=True)
    (report_dir / f"{name}_spans.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


def record_phase_timings(benchmark, observer) -> None:
    """Attach each top-level span's simulated duration as extra_info."""
    for span in observer.spans:
        benchmark.extra_info[f"sim_seconds[{span.name}]"] = span.duration
