"""Tor relay model: identity, flags, uptime and reachability accounting."""

from repro.relay.flags import RelayFlags
from repro.relay.relay import Relay, KeyChange

__all__ = ["RelayFlags", "Relay", "KeyChange"]
