"""Router status flags.

Directory authorities assign flags to relays in every consensus.  Only the
flags that matter to the study are modelled; ``HSDIR`` (assigned after 25
hours of observed uptime) and ``GUARD`` drive the harvesting and client
deanonymisation attacks respectively.

Flags are a bitmask (:class:`enum.IntFlag`) because the tracking-detection
experiment stores roughly three years of consensus history — two descriptor
periods per day across thousands of relays — and one int per relay per
snapshot keeps that history cheap.
"""

from __future__ import annotations

import enum


class RelayFlags(enum.IntFlag):
    """Consensus flags, bitmask-encoded."""

    NONE = 0
    RUNNING = enum.auto()
    VALID = enum.auto()
    FAST = enum.auto()
    STABLE = enum.auto()
    GUARD = enum.auto()
    HSDIR = enum.auto()
    EXIT = enum.auto()
    AUTHORITY = enum.auto()

    def names(self) -> list[str]:
        """Human-readable flag names, consensus-style capitalisation."""
        labels = {
            RelayFlags.RUNNING: "Running",
            RelayFlags.VALID: "Valid",
            RelayFlags.FAST: "Fast",
            RelayFlags.STABLE: "Stable",
            RelayFlags.GUARD: "Guard",
            RelayFlags.HSDIR: "HSDir",
            RelayFlags.EXIT: "Exit",
            RelayFlags.AUTHORITY: "Authority",
        }
        return [label for flag, label in labels.items() if self & flag]
