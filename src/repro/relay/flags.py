"""Router status flags.

Directory authorities assign flags to relays in every consensus.  Only the
flags that matter to the study are modelled; ``HSDIR`` (assigned after 25
hours of observed uptime) and ``GUARD`` drive the harvesting and client
deanonymisation attacks respectively.

Flags are a bitmask (:class:`enum.IntFlag`) because the tracking-detection
experiment stores roughly three years of consensus history — two descriptor
periods per day across thousands of relays — and one int per relay per
snapshot keeps that history cheap.
"""

from __future__ import annotations

import enum


class RelayFlags(enum.IntFlag):
    """Consensus flags, bitmask-encoded."""

    NONE = 0
    RUNNING = enum.auto()
    VALID = enum.auto()
    FAST = enum.auto()
    STABLE = enum.auto()
    GUARD = enum.auto()
    HSDIR = enum.auto()
    EXIT = enum.auto()
    AUTHORITY = enum.auto()

    def names(self) -> list[str]:
        """Human-readable flag names, consensus-style capitalisation."""
        labels = {
            RelayFlags.RUNNING: "Running",
            RelayFlags.VALID: "Valid",
            RelayFlags.FAST: "Fast",
            RelayFlags.STABLE: "Stable",
            RelayFlags.GUARD: "Guard",
            RelayFlags.HSDIR: "HSDir",
            RelayFlags.EXIT: "Exit",
            RelayFlags.AUTHORITY: "Authority",
        }
        return [label for flag, label in labels.items() if self & flag]


def flags_overlap(flags: RelayFlags, mask: RelayFlags) -> bool:
    """``bool(flags & mask)`` without IntFlag's operator overhead.

    ``IntFlag.__and__`` constructs a new enum member on every call, which
    dominates the consensus-build hot path (one flag test per relay per
    snapshot across a multi-year archive).  ``int.__and__`` performs the
    same bit test at C speed and returns a plain int.
    """
    return bool(int.__and__(flags, mask))
