"""The relay itself.

A relay is an (IP, ORPort) pair with an identity key, a nickname, bandwidth,
and a reachability switch.  Directory authorities observe reachability over
time and derive uptime, which in turn drives flag assignment (HSDir needs 25
hours).  Two behaviours matter specially here:

* **Key rotation** (``rotate_key``): a relay may replace its identity key,
  moving to a new ring position.  Honest relays do this rarely; Section VII
  flags relays that rotate often or rotate *just before* becoming a
  responsible HSDir for a target service.  Every rotation is recorded.
* **Reachability control** (``set_reachable``): the trawling attacker makes
  its *active* relays unreachable so that *shadow* relays on the same IP
  slide into the consensus with their accumulated uptime (Section II).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.keys import Fingerprint, KeyPair
from repro.errors import SimulationError
from repro.net.address import IPv4
from repro.sim.clock import Timestamp

_relay_counter = itertools.count()


@dataclass(frozen=True)
class KeyChange:
    """One identity-key rotation event."""

    time: Timestamp
    old_fingerprint: Fingerprint
    new_fingerprint: Fingerprint


@dataclass
class Relay:
    """A Tor relay as seen by the directory authorities.

    Attributes:
        nickname: operator-chosen name (trackers often reuse a common stem —
            one of the Section VII tells).
        ip / or_port: the transport address; the consensus admits at most two
            relays per IP.
        keypair: current identity key.
        bandwidth: measured bandwidth in kB/s; breaks 2-per-IP ties.
        started_at: when the relay process first came up.
        reachable: whether authorities can currently reach it.
    """

    nickname: str
    ip: IPv4
    or_port: int
    keypair: KeyPair
    bandwidth: int
    started_at: Timestamp
    reachable: bool = True
    relay_id: int = field(default_factory=lambda: next(_relay_counter))
    _up_since: Optional[Timestamp] = field(default=None, repr=False)
    key_changes: List[KeyChange] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.bandwidth < 0:
            raise SimulationError(f"negative bandwidth: {self.bandwidth}")
        if self._up_since is None and self.reachable:
            self._up_since = self.started_at

    @property
    def fingerprint(self) -> Fingerprint:
        """Current identity fingerprint."""
        return self.keypair.fingerprint

    @property
    def address(self) -> tuple[IPv4, int]:
        """The (IP, ORPort) pair identifying the physical server."""
        return (self.ip, self.or_port)

    def uptime(self, now: Timestamp) -> int:
        """Continuous seconds of observed reachability ending at ``now``."""
        if not self.reachable or self._up_since is None:
            return 0
        return max(0, int(now) - self._up_since)

    def set_reachable(self, reachable: bool, now: Timestamp) -> None:
        """Flip reachability; going down resets the uptime clock."""
        if reachable == self.reachable:
            return
        self.reachable = reachable
        self._up_since = int(now) if reachable else None

    def rotate_key(self, rng: random.Random, now: Timestamp) -> KeyPair:
        """Replace the identity key with a fresh one, recording the change.

        A new identity key is a new relay as far as the authorities are
        concerned, so the uptime clock restarts: the relay must stay up
        another 25 hours before it can regain HSDir.  This is why Section
        VII's trackers rotate fingerprints well ahead of their target period.
        """
        return self.adopt_key(KeyPair.generate(rng), now)

    def adopt_key(self, keypair: KeyPair, now: Timestamp) -> KeyPair:
        """Install a specific key pair (used by trackers that ground a
        fingerprint next to a predicted descriptor ID), recording the change
        and restarting the uptime clock."""
        old = self.keypair
        self.keypair = keypair
        self.key_changes.append(
            KeyChange(
                time=int(now),
                old_fingerprint=old.fingerprint,
                new_fingerprint=keypair.fingerprint,
            )
        )
        if self.reachable:
            self._up_since = int(now)
        return keypair

    def __repr__(self) -> str:
        return (
            f"Relay({self.nickname!r}, {self.keypair.hex_fingerprint[:8]}…, "
            f"bw={self.bandwidth})"
        )
