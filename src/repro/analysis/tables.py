"""Text rendering of tables and bar charts (terminal figures)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_rows(
    rows: Sequence[Tuple], headers: Sequence[str], pad: int = 2
) -> str:
    """Align tuples into a text table.

    >>> print(format_rows([("a", 1)], headers=("k", "v")))
    k  v
    a  1
    """
    table = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(header) for header in headers]
    for row in table:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    sep = " " * pad
    lines = [sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()]
    for row in table:
        lines.append(
            sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_bar_chart(
    rows: Sequence[Tuple[str, float]], width: int = 40, unit: str = ""
) -> str:
    """Horizontal text bars (the offline stand-in for Fig 1 / Fig 2).

    >>> print(format_bar_chart([("x", 2.0), ("y", 1.0)], width=4))
    x  2 ████
    y  1 ██
    """
    if not rows:
        return "(empty)"
    peak = max(value for _, value in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    value_width = max(len(f"{value:g}") for _, value in rows)
    lines: List[str] = []
    for label, value in rows:
        bar = "█" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(
            f"{label:<{label_width}}  {value:>{value_width}g}{unit} {bar}".rstrip()
        )
    return "\n".join(lines)
