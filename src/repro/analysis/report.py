"""Experiment reports: paper value vs measured value, side by side.

Every benchmark prints one of these so EXPERIMENTS.md can be regenerated
mechanically and the *shape* agreement (who wins, by what factor) is
auditable at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.analysis.stats import relative_error

Number = Union[int, float]


@dataclass(frozen=True)
class ComparisonRow:
    """One measured quantity against its published counterpart."""

    label: str
    paper: Optional[Number]
    measured: Number

    @property
    def error(self) -> Optional[float]:
        """Relative error, when the paper gives a number."""
        if self.paper is None:
            return None
        return relative_error(float(self.measured), float(self.paper))


@dataclass
class ExperimentReport:
    """A named collection of comparison rows plus free-form notes."""

    experiment: str
    rows: List[ComparisonRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, label: str, paper: Optional[Number], measured: Number) -> None:
        """Record one comparison."""
        self.rows.append(ComparisonRow(label=label, paper=paper, measured=measured))

    def note(self, text: str) -> None:
        """Attach a free-form observation."""
        self.notes.append(text)

    def add_failure_taxonomy(self, taxonomy, prefix: str = "") -> None:
        """Add one row per failure category (no paper counterparts).

        ``taxonomy`` is any object with ``rows() -> (label, count)`` pairs —
        in practice :class:`repro.faults.taxonomy.FailureTaxonomy`.
        """
        for label, count in taxonomy.rows():
            self.add(f"{prefix}{label}", None, count)

    def add_completeness(self, manifest) -> None:
        """Render a supervision completeness manifest into this report.

        ``manifest`` is any object with ``summary_lines() -> [str]`` and a
        ``complete`` flag — in practice
        :class:`repro.supervise.manifest.CompletenessManifest`.  A complete
        run adds a single confirming note; a degraded or partial one spells
        out exactly what is missing so the numbers above it are read with
        the right amount of trust.
        """
        if manifest.complete:
            self.note("supervision: run complete (no degradation)")
            return
        self.note("supervision: PARTIAL RESULT")
        for line in manifest.summary_lines():
            self.note(f"supervision: {line}")

    def max_error(self) -> float:
        """Worst relative error across rows that have a paper value."""
        errors = [row.error for row in self.rows if row.error is not None]
        return max(errors) if errors else 0.0

    def format(self) -> str:
        """Printable paper-vs-measured table."""
        width = max((len(row.label) for row in self.rows), default=10)
        lines = [f"== {self.experiment} =="]
        lines.append(f"{'quantity':<{width}}  {'paper':>12}  {'measured':>12}  {'err':>7}")
        for row in self.rows:
            paper = f"{row.paper:g}" if row.paper is not None else "-"
            error = f"{row.error * 100:.1f}%" if row.error is not None else "-"
            measured = (
                f"{row.measured:g}"
                if isinstance(row.measured, (int, float))
                else str(row.measured)
            )
            lines.append(
                f"{row.label:<{width}}  {paper:>12}  {measured:>12}  {error:>7}"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
