"""Small statistics helpers for comparing measured vs published values."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ReproError


def relative_error(measured: float, expected: float) -> float:
    """|measured - expected| / |expected| (0 when both are zero).

    >>> relative_error(110, 100)
    0.1
    """
    if expected == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - expected) / abs(expected)


def l1_distance(
    left: Dict[str, float], right: Dict[str, float]
) -> float:
    """Total variation-style distance between two share tables.

    Keys missing from either side count as zero on that side.

    >>> l1_distance({"a": 0.6, "b": 0.4}, {"a": 0.5, "b": 0.5})
    0.2
    """
    keys = set(left) | set(right)
    return sum(abs(left.get(k, 0.0) - right.get(k, 0.0)) for k in keys)


def share_table(counts: Dict[str, int]) -> Dict[str, float]:
    """Normalise a count table into shares summing to 1."""
    total = sum(counts.values())
    if total < 0:
        raise ReproError("negative total in share table")
    if total == 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}


def pearson_rank_correlation(
    expected_order: Sequence[str], measured_order: Sequence[str]
) -> float:
    """Spearman's rho between two orderings of (a superset of) one item set.

    Items missing from either ordering are ignored; with fewer than two
    common items the correlation is defined as 1.0 (nothing to disagree
    about).
    """
    common = [item for item in expected_order if item in set(measured_order)]
    if len(common) < 2:
        return 1.0
    expected_rank = {item: i for i, item in enumerate(common)}
    measured_rank = {
        item: i
        for i, item in enumerate(
            [item for item in measured_order if item in expected_rank]
        )
    }
    n = len(common)
    d_squared = sum(
        (expected_rank[item] - measured_rank[item]) ** 2 for item in common
    )
    return 1.0 - 6.0 * d_squared / (n * (n * n - 1))


def head_counts(
    pairs: Iterable[Tuple[str, int]], head: int
) -> List[Tuple[str, int]]:
    """The ``head`` largest (label, count) pairs, descending."""
    return sorted(pairs, key=lambda p: (-p[1], p[0]))[:head]
