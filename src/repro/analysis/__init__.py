"""Reporting and statistics helpers shared by the experiments."""

from repro.analysis.stats import (
    relative_error,
    l1_distance,
    share_table,
    pearson_rank_correlation,
)
from repro.analysis.report import ExperimentReport, ComparisonRow
from repro.analysis.tables import format_rows, format_bar_chart

__all__ = [
    "relative_error",
    "l1_distance",
    "share_table",
    "pearson_rank_correlation",
    "ExperimentReport",
    "ComparisonRow",
    "format_rows",
    "format_bar_chart",
]
