"""The HSDir fingerprint ring.

Relays carrying the ``HSDir`` flag form a ring ordered by their 160-bit
fingerprints.  A descriptor with ID *d* is stored on the first
``HSDIRS_PER_REPLICA`` (3) relays whose fingerprints *follow* *d* on the
ring, wrapping around at 2**160.  With two replicas a service therefore has
six responsible directories per time period.

The ring-distance between a responsible relay's fingerprint and the
descriptor ID is the paper's Section VII positioning statistic: an honest
relay's distance is on the order of ``2**160 / N`` while a tracker that
ground a key to land just past the descriptor ID shows a distance thousands
of times smaller.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence

from repro.crypto.keys import Fingerprint, fingerprint_int
from repro.errors import CryptoError

RING_SIZE = 1 << 160  # SHA-1 output space

HSDIRS_PER_REPLICA = 3


def ring_distance(from_point: int, to_point: int) -> int:
    """Clockwise distance from ``from_point`` to ``to_point`` on the ring."""
    return (to_point - from_point) % RING_SIZE


def responsible_positions(
    descriptor_point: int, sorted_points: Sequence[int], count: int = HSDIRS_PER_REPLICA
) -> List[int]:
    """The ``count`` ring positions that follow ``descriptor_point``.

    ``sorted_points`` must be sorted ascending and duplicate-free.  Fewer than
    ``count`` positions are returned only when the ring itself is smaller.
    """
    if not sorted_points:
        return []
    take = min(count, len(sorted_points))
    start = bisect.bisect_right(sorted_points, descriptor_point)
    return [sorted_points[(start + i) % len(sorted_points)] for i in range(take)]


class FingerprintRing:
    """An immutable snapshot of the HSDir ring for one consensus.

    Maps ring positions back to fingerprints and answers the two queries the
    study needs: *which relays are responsible for this descriptor ID* and
    *how tightly is this relay positioned against this descriptor ID*.
    """

    def __init__(self, fingerprints: Sequence[Fingerprint]) -> None:
        by_position: Dict[int, Fingerprint] = {}
        for fp in fingerprints:
            position = fingerprint_int(fp)
            if position in by_position and by_position[position] != fp:
                raise CryptoError("distinct fingerprints with equal ring position")
            by_position[position] = fp
        self._positions: List[int] = sorted(by_position)
        self._by_position = by_position

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, fp: Fingerprint) -> bool:
        return fingerprint_int(fp) in self._by_position

    @property
    def fingerprints(self) -> List[Fingerprint]:
        """All fingerprints in ring order."""
        return [self._by_position[p] for p in self._positions]

    def responsible_for(
        self, descriptor_id: bytes, count: int = HSDIRS_PER_REPLICA
    ) -> List[Fingerprint]:
        """The ``count`` relays responsible for ``descriptor_id`` (one replica)."""
        point = int.from_bytes(descriptor_id, "big")
        positions = responsible_positions(point, self._positions, count)
        return [self._by_position[p] for p in positions]

    def distance_to(self, descriptor_id: bytes, fp: Fingerprint) -> int:
        """Clockwise ring distance from ``descriptor_id`` to ``fp``."""
        return ring_distance(
            int.from_bytes(descriptor_id, "big"), fingerprint_int(fp)
        )

    def average_gap(self) -> int:
        """Mean clockwise gap between consecutive ring members.

        For *n* members the gaps around the ring sum to exactly ``RING_SIZE``
        (each arc is counted once), so the average gap is ``RING_SIZE // n``.
        This is the ``avg_dist`` numerator of the paper's positioning ratio.
        """
        if not self._positions:
            raise CryptoError("empty ring has no average gap")
        return RING_SIZE // len(self._positions)

    def positioning_ratio(self, descriptor_id: bytes, fp: Fingerprint) -> float:
        """``avg_dist / distance`` — the Section VII suspicion statistic.

        Honest relays score around 1; the paper flags trackers whose ratio
        exceeds ~100 and observed one episode crossing 10,000.
        """
        distance = self.distance_to(descriptor_id, fp)
        if distance == 0:
            return float("inf")
        return self.average_gap() / distance
