"""The HSDir fingerprint ring.

Relays carrying the ``HSDir`` flag form a ring ordered by their 160-bit
fingerprints.  A descriptor with ID *d* is stored on the first
``HSDIRS_PER_REPLICA`` (3) relays whose fingerprints *follow* *d* on the
ring, wrapping around at 2**160.  With two replicas a service therefore has
six responsible directories per time period.

The ring-distance between a responsible relay's fingerprint and the
descriptor ID is the paper's Section VII positioning statistic: an honest
relay's distance is on the order of ``2**160 / N`` while a tracker that
ground a key to land just past the descriptor ID shows a distance thousands
of times smaller.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

from repro.crypto.keys import Fingerprint, fingerprint_int
from repro.errors import CryptoError

try:  # numpy powers the batched placement kernel; the scalar path is complete
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

RING_SIZE = 1 << 160  # SHA-1 output space

HSDIRS_PER_REPLICA = 3

#: Ring positions are 160-bit; the vectorised kernel bisects on their top 64
#: bits (exactly representable as uint64) and refines the rare prefix ties
#: with exact integer bisect, so the batch result equals the scalar one.
_PREFIX_SHIFT = 160 - 64


def ring_distance(from_point: int, to_point: int) -> int:
    """Clockwise distance from ``from_point`` to ``to_point`` on the ring."""
    return (to_point - from_point) % RING_SIZE


def responsible_positions(
    descriptor_point: int, sorted_points: Sequence[int], count: int = HSDIRS_PER_REPLICA
) -> List[int]:
    """The ``count`` ring positions that follow ``descriptor_point``.

    ``sorted_points`` must be sorted ascending and duplicate-free.  Fewer than
    ``count`` positions are returned only when the ring itself is smaller.
    """
    if not sorted_points:
        return []
    take = min(count, len(sorted_points))
    start = bisect.bisect_right(sorted_points, descriptor_point)
    return [sorted_points[(start + i) % len(sorted_points)] for i in range(take)]


def responsible_positions_batch(
    descriptor_points: Sequence[int],
    sorted_points: Sequence[int],
    count: int = HSDIRS_PER_REPLICA,
) -> List[List[int]]:
    """Batched :func:`responsible_positions` over many descriptor points.

    The SHA-1 ring-placement hot-path kernel: one vectorised ``searchsorted``
    over the queries' 64-bit prefixes replaces a Python ``bisect`` per query,
    and exact integer bisect refines only queries whose prefix collides with
    a ring member's (vanishingly rare for SHA-1-distributed points, but
    handled so the kernel is exact, not probabilistic).  Falls back to the
    scalar loop when numpy is unavailable; either way every element equals
    ``responsible_positions(point, sorted_points, count)``.
    """
    points = list(sorted_points)
    if not points or not descriptor_points:
        return [[] for _ in descriptor_points]
    if _np is None or len(descriptor_points) < 8:
        return [
            responsible_positions(point, points, count)
            for point in descriptor_points
        ]
    size = len(points)
    take = min(count, size)
    member_prefix = _np.fromiter(
        (p >> _PREFIX_SHIFT for p in points), dtype=_np.uint64, count=size
    )
    query_prefix = _np.fromiter(
        (q >> _PREFIX_SHIFT for q in descriptor_points),
        dtype=_np.uint64,
        count=len(descriptor_points),
    )
    low = _np.searchsorted(member_prefix, query_prefix, side="left")
    high = _np.searchsorted(member_prefix, query_prefix, side="right")
    results: List[List[int]] = []
    for query, lo, hi in zip(descriptor_points, low.tolist(), high.tolist()):
        # Equal-prefix members (the [lo, hi) run) need the exact comparison;
        # everything below lo is < query and everything at hi and beyond is
        # greater, so this bisect equals bisect_right over the whole list.
        start = hi if lo == hi else bisect.bisect_right(points, query, lo, hi)
        end = start + take
        if end <= size:
            # The successor run does not wrap; a C-level slice beats the
            # per-index modulo loop on the overwhelmingly common case.
            results.append(points[start:end])
        else:
            results.append([points[(start + i) % size] for i in range(take)])
    return results


def ring_start_indices(
    descriptor_points: Sequence[int], sorted_points: Sequence[int]
) -> List[int]:
    """``bisect_right(sorted_points, q)`` for every query, vectorised.

    The shared first half of every placement query: the index where each
    descriptor point's successor run starts (``len(sorted_points)`` means
    "wraps to index 0").  Same 64-bit-prefix ``searchsorted`` + exact-tie
    refinement as :func:`responsible_positions_batch`, same scalar fallback,
    and element *i* always equals ``bisect.bisect_right(sorted_points,
    descriptor_points[i])``.
    """
    points = list(sorted_points)
    if not descriptor_points:
        return []
    if not points:
        return [0 for _ in descriptor_points]
    if _np is None or len(descriptor_points) < 8:
        return [bisect.bisect_right(points, q) for q in descriptor_points]
    member_prefix = _np.fromiter(
        (p >> _PREFIX_SHIFT for p in points), dtype=_np.uint64, count=len(points)
    )
    query_prefix = _np.fromiter(
        (q >> _PREFIX_SHIFT for q in descriptor_points),
        dtype=_np.uint64,
        count=len(descriptor_points),
    )
    low = _np.searchsorted(member_prefix, query_prefix, side="left")
    high = _np.searchsorted(member_prefix, query_prefix, side="right")
    return [
        hi if lo == hi else bisect.bisect_right(points, query, lo, hi)
        for query, lo, hi in zip(descriptor_points, low.tolist(), high.tolist())
    ]


class FingerprintRing:
    """An immutable snapshot of the HSDir ring for one consensus.

    Maps ring positions back to fingerprints and answers the two queries the
    study needs: *which relays are responsible for this descriptor ID* and
    *how tightly is this relay positioned against this descriptor ID*.
    """

    def __init__(self, fingerprints: Sequence[Fingerprint]) -> None:
        # 20-byte big-endian fingerprints sort identically as bytes and as
        # 160-bit integers, so deduplicate and order on the raw bytes (one
        # C-level sort) before paying the int conversion per unique member.
        unique = sorted(set(fingerprints))
        by_position: Dict[int, Fingerprint] = {}
        positions: List[int] = []
        for fp in unique:
            position = fingerprint_int(fp)
            if positions and positions[-1] == position:
                raise CryptoError("distinct fingerprints with equal ring position")
            positions.append(position)
            by_position[position] = fp
        self._positions = positions
        self._by_position = by_position

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, fp: Fingerprint) -> bool:
        return fingerprint_int(fp) in self._by_position

    @property
    def fingerprints(self) -> List[Fingerprint]:
        """All fingerprints in ring order."""
        return [self._by_position[p] for p in self._positions]

    def responsible_for(
        self, descriptor_id: bytes, count: int = HSDIRS_PER_REPLICA
    ) -> List[Fingerprint]:
        """The ``count`` relays responsible for ``descriptor_id`` (one replica)."""
        point = int.from_bytes(descriptor_id, "big")
        positions = responsible_positions(point, self._positions, count)
        return [self._by_position[p] for p in positions]

    def responsible_for_many(
        self,
        descriptor_ids: Sequence[bytes],
        count: int = HSDIRS_PER_REPLICA,
    ) -> List[List[Fingerprint]]:
        """Batched :meth:`responsible_for`: one fingerprint list per ID.

        Element *i* is byte-identical to ``responsible_for(descriptor_ids[i],
        count)``; the batch only changes throughput (one vectorised bisect
        over all IDs instead of a Python bisect per ID).
        """
        points = [int.from_bytes(desc, "big") for desc in descriptor_ids]
        resolve = self._by_position.__getitem__
        return [
            list(map(resolve, positions))
            for positions in responsible_positions_batch(
                points, self._positions, count
            )
        ]

    def distance_to(self, descriptor_id: bytes, fp: Fingerprint) -> int:
        """Clockwise ring distance from ``descriptor_id`` to ``fp``."""
        return ring_distance(
            int.from_bytes(descriptor_id, "big"), fingerprint_int(fp)
        )

    def average_gap(self) -> int:
        """Mean clockwise gap between consecutive ring members.

        For *n* members the gaps around the ring sum to exactly ``RING_SIZE``
        (each arc is counted once), so the average gap is ``RING_SIZE // n``.
        This is the ``avg_dist`` numerator of the paper's positioning ratio.
        """
        if not self._positions:
            raise CryptoError("empty ring has no average gap")
        return RING_SIZE // len(self._positions)

    def positioning_ratio(self, descriptor_id: bytes, fp: Fingerprint) -> float:
        """``avg_dist / distance`` — the Section VII suspicion statistic.

        Honest relays score around 1; the paper flags trackers whose ratio
        exceeds ~100 and observed one episode crossing 10,000.
        """
        distance = self.distance_to(descriptor_id, fp)
        if distance == 0:
            return float("inf")
        return self.average_gap() / distance
