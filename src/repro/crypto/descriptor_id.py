"""rend-spec v2 descriptor identifiers.

A hidden service's descriptor is stored under a *descriptor ID* that rotates
every 24 hours and exists in two replicas::

    time-period   = (now + first-id-byte * 86400 / 256) / 86400
    secret-id     = SHA1( time-period | descriptor-cookie | replica )
    descriptor-id = SHA1( permanent-id | secret-id )

The rotation offset (``first-id-byte * 86400 / 256``) staggers rotation
moments across services so the whole network does not republish at midnight.
Because the formula is deterministic and public, anyone holding an onion
address can compute where its descriptors live — which is both how clients
fetch descriptors, how the popularity resolver (Section V) maps harvested
request logs back to onion addresses, and how the Section VII trackers chose
fingerprints to position themselves as responsible HSDirs.
"""

from __future__ import annotations

import functools
import hashlib
import struct
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.crypto.onion import OnionAddress, permanent_id_from_onion
from repro.errors import CryptoError
from repro.sim.clock import DAY, Timestamp

DescriptorId = bytes  # 20-byte SHA-1 digest

REPLICAS = 2  # rend-spec v2 publishes two replicas per time period


def time_period_for(now: Timestamp, permanent_id: bytes) -> int:
    """The service-specific time-period number containing ``now``."""
    if not permanent_id:
        raise CryptoError("permanent id must be non-empty")
    offset = (permanent_id[0] * DAY) // 256
    return (int(now) + offset) // DAY


def time_period_boundaries(
    now: Timestamp, permanent_id: bytes
) -> Tuple[Timestamp, Timestamp]:
    """Start (inclusive) and end (exclusive) timestamps of the current period."""
    offset = (permanent_id[0] * DAY) // 256
    period = time_period_for(now, permanent_id)
    start = period * DAY - offset
    return start, start + DAY


# Every service in the same period shares its (period, replica, cookie)
# secret part; publish loops derive it hundreds of thousands of times, so
# one SHA-1 per distinct key serves the whole population.
@functools.lru_cache(maxsize=4096)
def _secret_id_part(period: int, replica: int, cookie: bytes = b"") -> bytes:
    if not 0 <= replica < 256:
        raise CryptoError(f"replica must fit one byte, got {replica}")
    return hashlib.sha1(
        struct.pack(">I", period & 0xFFFFFFFF) + cookie + bytes([replica])
    ).digest()


def descriptor_id(
    onion: OnionAddress,
    now: Timestamp,
    replica: int,
    cookie: bytes = b"",
) -> DescriptorId:
    """Descriptor ID of ``onion`` for the period containing ``now``."""
    permanent_id = permanent_id_from_onion(onion)
    period = time_period_for(now, permanent_id)
    return hashlib.sha1(permanent_id + _secret_id_part(period, replica, cookie)).digest()


def descriptor_ids_for_day(
    onion: OnionAddress, now: Timestamp, cookie: bytes = b""
) -> List[DescriptorId]:
    """Both replica descriptor IDs for the period containing ``now``."""
    return [descriptor_id(onion, now, replica, cookie) for replica in range(REPLICAS)]


def descriptor_ids_for_day_batch(
    onions: Sequence[OnionAddress],
    now: Timestamp,
    cookie: bytes = b"",
) -> List[List[DescriptorId]]:
    """Batched :func:`descriptor_ids_for_day`: both replica IDs per onion.

    The publish/placement hot loop derives the same ``(period, replica)``
    secret parts for every service whose rotation offset lands it in the
    same period, so one shared table serves the whole population.  Output
    is element-for-element byte-identical to the scalar reference.
    """
    sha1 = hashlib.sha1
    replicas = range(REPLICAS)
    when = int(now)
    out: List[List[DescriptorId]] = []
    for onion in onions:
        permanent_id = permanent_id_from_onion(onion)
        period = (when + (permanent_id[0] * DAY) // 256) // DAY
        out.append(
            [
                sha1(permanent_id + _secret_id_part(period, replica, cookie)).digest()
                for replica in replicas
            ]
        )
    return out


def descriptor_ids_for_window(
    onion: OnionAddress,
    start: Timestamp,
    end: Timestamp,
    cookie: bytes = b"",
) -> List[DescriptorId]:
    """All distinct descriptor IDs ``onion`` uses anywhere in ``[start, end]``.

    This is the resolution primitive from Section V: the authors recomputed
    descriptor IDs "for each day between 28 January 2013 and 8 February in
    order to deal with possible wrong time settings of Tor clients", then
    matched harvested request logs against the derived set.
    """
    return [entry[0] for entry in descriptor_index_entries(onion, start, end, cookie)]


def descriptor_index_entries(
    onion: OnionAddress,
    start: Timestamp,
    end: Timestamp,
    cookie: bytes = b"",
) -> List[Tuple[DescriptorId, Timestamp]]:
    """``(descriptor id, period start)`` for every (period, replica) in the window.

    The batch primitive behind the Section V resolver index: one call per
    onion yields that onion's complete ID set together with each ID's
    validity-period start.  Pure and picklable, so the resolver can fan
    the per-onion derivations out through :func:`repro.parallel.pmap`.
    """
    if end < start:
        raise CryptoError(f"window end {end} before start {start}")
    permanent_id = permanent_id_from_onion(onion)
    offset = (permanent_id[0] * DAY) // 256
    first = time_period_for(start, permanent_id)
    last = time_period_for(end, permanent_id)
    entries: List[Tuple[DescriptorId, Timestamp]] = []
    for period in range(first, last + 1):
        period_start = period * DAY - offset
        for replica in range(REPLICAS):
            entries.append(
                (
                    hashlib.sha1(
                        permanent_id + _secret_id_part(period, replica, cookie)
                    ).digest(),
                    period_start,
                )
            )
    return entries


def descriptor_index_entries_batch(
    onions: Sequence[OnionAddress],
    start: Timestamp,
    end: Timestamp,
    cookie: bytes = b"",
) -> List[List[Tuple[DescriptorId, Timestamp]]]:
    """Batched :func:`descriptor_index_entries` over many onions in one pass.

    The columnar hot-path kernel behind the Section V resolver index.  The
    secret-id part ``SHA1(period | cookie | replica)`` does not depend on the
    onion, and a whole database's rotation offsets spread every onion's
    periods over a range only one day wider than the window itself — so one
    shared ``(period, replica) -> secret part`` table serves every onion and
    halves the SHA-1 count of the scalar per-onion loop.  Per-element output
    is byte-identical to the scalar reference (the equivalence oracle in
    ``tests/test_bench_kernels.py`` pins it), so results never depend on how
    callers batch or shard the database.
    """
    if end < start:
        raise CryptoError(f"window end {end} before start {start}")
    sha1 = hashlib.sha1
    pack = struct.pack
    secret_parts: Dict[Tuple[int, int], bytes] = {}
    replicas = range(REPLICAS)
    out: List[List[Tuple[DescriptorId, Timestamp]]] = []
    for onion in onions:
        permanent_id = permanent_id_from_onion(onion)
        offset = (permanent_id[0] * DAY) // 256
        first = (int(start) + offset) // DAY
        last = (int(end) + offset) // DAY
        entries: List[Tuple[DescriptorId, Timestamp]] = []
        for period in range(first, last + 1):
            period_start = period * DAY - offset
            for replica in replicas:
                key = (period, replica)
                part = secret_parts.get(key)
                if part is None:
                    part = sha1(
                        pack(">I", period & 0xFFFFFFFF) + cookie + bytes([replica])
                    ).digest()
                    secret_parts[key] = part
                entries.append((sha1(permanent_id + part).digest(), period_start))
        out.append(entries)
    return out


def descriptor_ids_for_window_batch(
    onions: Iterable[OnionAddress],
    start: Timestamp,
    end: Timestamp,
    cookie: bytes = b"",
) -> List[List[DescriptorId]]:
    """Batched :func:`descriptor_ids_for_window`: one ID list per onion."""
    return [
        [entry[0] for entry in entries]
        for entries in descriptor_index_entries_batch(list(onions), start, end, cookie)
    ]
