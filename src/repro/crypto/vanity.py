"""Vanity onion addresses (shallot/scallion-style grinding).

Section IV: "we noticed that 15 of them had prefix 'silkroa' ... At least
one of these addresses is a phishing site imitating the real Silk Road
login interface."  Such look-alike addresses are produced by brute-forcing
key pairs until the SHA-1-derived address starts with the wanted string —
each extra base32 character multiplies the expected work by 32.

The grinder here is the real loop (hash, check, retry); the population
generator uses short prefixes so the paper's phishing-clone phenomenon is
reproduced with honest computation at simulator-friendly cost.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.crypto.keys import KeyPair
from repro.crypto.onion import onion_address_from_key
from repro.errors import CryptoError

# The base32 alphabet onion labels are drawn from.
_BASE32_ALPHABET = "abcdefghijklmnopqrstuvwxyz234567"


def expected_attempts(prefix: str) -> int:
    """Mean number of candidate keys to grind for ``prefix``.

    >>> expected_attempts("sil")
    32768
    """
    _check_prefix(prefix)
    return 32 ** len(prefix)


def grind_vanity_onion(
    prefix: str,
    rng: random.Random,
    max_attempts: Optional[int] = None,
) -> KeyPair:
    """Brute-force a key pair whose onion address starts with ``prefix``.

    ``max_attempts`` defaults to 50× the expected work, which fails with
    probability e^-50; pass a smaller cap to bound worst-case time.
    """
    _check_prefix(prefix)
    if max_attempts is None:
        max_attempts = 50 * expected_attempts(prefix)
    if max_attempts < 1:
        raise CryptoError(f"max_attempts must be positive: {max_attempts}")
    for _ in range(max_attempts):
        candidate = KeyPair.generate(rng)
        if onion_address_from_key(candidate.public_der).startswith(prefix):
            return candidate
    raise CryptoError(
        f"no onion with prefix {prefix!r} after {max_attempts} attempts"
    )


def _check_prefix(prefix: str) -> None:
    if not prefix:
        raise CryptoError("vanity prefix must be non-empty")
    if len(prefix) > 6:
        raise CryptoError(
            f"prefix {prefix!r} needs ~32^{len(prefix)} hashes — beyond the "
            "simulator's budget (real attackers use GPU grinders)"
        )
    bad = [ch for ch in prefix if ch not in _BASE32_ALPHABET]
    if bad:
        raise CryptoError(f"characters not in the base32 alphabet: {bad}")
