"""Digest-faithful Tor v2 hidden-service cryptography.

Onion addresses, descriptor identifiers, and the HSDir fingerprint ring are
implemented exactly as in Tor's rend-spec v2 (SHA-1 digests, base32
addresses, two replicas, daily rotation offset by the first identity byte).
Key *signing* is out of scope — no analysed mechanism in the paper depends on
signature verification, only on digests of key material — so key pairs are
opaque random blobs with real SHA-1 fingerprints.
"""

from repro.crypto.keys import KeyPair, Fingerprint, fingerprint_hex, fingerprint_int
from repro.crypto.onion import (
    OnionAddress,
    onion_address_from_key,
    permanent_id_from_onion,
    is_valid_onion,
)
from repro.crypto.descriptor_id import (
    REPLICAS,
    DescriptorId,
    descriptor_id,
    descriptor_ids_for_day,
    time_period_for,
    time_period_boundaries,
)
from repro.crypto.ring import (
    RING_SIZE,
    ring_distance,
    responsible_positions,
    FingerprintRing,
)

__all__ = [
    "KeyPair",
    "Fingerprint",
    "fingerprint_hex",
    "fingerprint_int",
    "OnionAddress",
    "onion_address_from_key",
    "permanent_id_from_onion",
    "is_valid_onion",
    "REPLICAS",
    "DescriptorId",
    "descriptor_id",
    "descriptor_ids_for_day",
    "time_period_for",
    "time_period_boundaries",
    "RING_SIZE",
    "ring_distance",
    "responsible_positions",
    "FingerprintRing",
]
