"""Identity key pairs and SHA-1 fingerprints.

A Tor relay or hidden service is identified by the SHA-1 digest of its public
key.  Every mechanism the paper analyses — onion addresses, descriptor IDs,
HSDir ring positions, fingerprint-change detection — consumes only that
digest, so the "key" here is an opaque random byte string standing in for the
DER encoding of an RSA-1024 public key.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.errors import CryptoError

Fingerprint = bytes  # 20-byte SHA-1 digest of the public key

FINGERPRINT_LEN = 20
_KEY_BLOB_LEN = 140  # approximate DER length of an RSA-1024 public key


def fingerprint_hex(fp: Fingerprint) -> str:
    """Render a fingerprint as the 40-char uppercase hex Tor uses in logs."""
    _check_fingerprint(fp)
    return fp.hex().upper()


def fingerprint_int(fp: Fingerprint) -> int:
    """Interpret a fingerprint as a 160-bit big-endian integer (ring position)."""
    _check_fingerprint(fp)
    return int.from_bytes(fp, "big")


def _check_fingerprint(fp: bytes) -> None:
    if not isinstance(fp, (bytes, bytearray)) or len(fp) != FINGERPRINT_LEN:
        raise CryptoError(f"fingerprint must be {FINGERPRINT_LEN} bytes, got {fp!r}")


@dataclass(frozen=True)
class KeyPair:
    """An identity key pair reduced to the parts the study needs.

    Attributes:
        public_der: stand-in bytes for the DER-encoded public key.
        fingerprint: SHA-1 digest of ``public_der``.
    """

    public_der: bytes
    fingerprint: Fingerprint = field(init=False)

    def __post_init__(self) -> None:
        if not self.public_der:
            raise CryptoError("public key material must be non-empty")
        object.__setattr__(
            self, "fingerprint", hashlib.sha1(self.public_der).digest()
        )

    @classmethod
    def generate(cls, rng: random.Random) -> "KeyPair":
        """Generate a fresh key pair from a seeded RNG stream."""
        return cls(public_der=rng.randbytes(_KEY_BLOB_LEN))

    @classmethod
    def generate_with_fingerprint_near(
        cls,
        rng: random.Random,
        target: int,
        max_distance: int,
        attempts: int = 200_000,
    ) -> "KeyPair":
        """Brute-force a key whose fingerprint lands within ``max_distance``
        *after* ``target`` on the 160-bit ring.

        This is exactly the attacker operation from Section VII: trackers
        "changed fingerprints in order to become HSDir" by grinding keys until
        the fingerprint sits just past a predicted descriptor ID.  The search
        is a rejection loop because SHA-1 preimages cannot be steered.
        """
        from repro.crypto.ring import RING_SIZE, ring_distance

        if not 0 < max_distance < RING_SIZE:
            raise CryptoError(f"max_distance out of range: {max_distance}")
        for _ in range(attempts):
            candidate = cls.generate(rng)
            distance = ring_distance(target, fingerprint_int(candidate.fingerprint))
            if 0 < distance <= max_distance:
                return candidate
        raise CryptoError(
            f"no fingerprint within {max_distance} of target after {attempts} attempts"
        )

    @classmethod
    def with_forged_fingerprint(cls, fingerprint: Fingerprint) -> "KeyPair":
        """A key pair whose fingerprint is *chosen* rather than derived.

        Stands in for offline key grinding at strengths impractical to
        brute-force inside the simulator: the Section VII trackers
        positioned fingerprints within 1/10,000 of the average ring gap,
        which costs ~10⁷ SHA-1 candidates per key — trivial for the GPU
        rigs real attackers used (cf. shallot/scallion), but minutes of
        wall-clock here.  Use :meth:`generate_with_fingerprint_near` when
        the target distance is reachable with ≲10⁶ candidates.

        The forged key's ``public_der`` is a placeholder; only relays use
        forged keys, and no analysed mechanism reads a *relay's* key
        material — everything consumes the fingerprint.
        """
        _check_fingerprint(fingerprint)
        forged = cls(public_der=b"forged:" + fingerprint)
        object.__setattr__(forged, "fingerprint", bytes(fingerprint))
        return forged

    @classmethod
    def forge_near(
        cls, rng: random.Random, target: int, max_distance: int
    ) -> "KeyPair":
        """Forge a fingerprint uniformly within ``(target, target + max_distance]``.

        The simulated outcome of a grinding run with acceptance window
        ``max_distance`` (see :meth:`with_forged_fingerprint`).
        """
        from repro.crypto.ring import RING_SIZE

        if not 0 < max_distance < RING_SIZE:
            raise CryptoError(f"max_distance out of range: {max_distance}")
        position = (target + 1 + rng.randrange(max_distance)) % RING_SIZE
        return cls.with_forged_fingerprint(position.to_bytes(20, "big"))

    @property
    def hex_fingerprint(self) -> str:
        """Uppercase hex fingerprint."""
        return fingerprint_hex(self.fingerprint)

    @property
    def ring_position(self) -> int:
        """Fingerprint as a 160-bit integer."""
        return fingerprint_int(self.fingerprint)

    def __repr__(self) -> str:
        return f"KeyPair({self.hex_fingerprint[:8]}…)"
