"""v2 onion addresses.

A v2 onion address is the base32 encoding of the first 10 bytes of the SHA-1
digest of the service's public identity key (rend-spec v2 §1.5), lowercased,
with ``.onion`` appended — 16 base32 characters such as
``silkroadvb5piz3r.onion``.
"""

from __future__ import annotations

import base64
import functools
import hashlib
import re

from repro.errors import CryptoError

OnionAddress = str  # e.g. "silkroadvb5piz3r.onion"

PERMANENT_ID_LEN = 10  # bytes of SHA-1 digest used for the address
ONION_LABEL_LEN = 16  # base32 chars encoding 10 bytes

_ONION_RE = re.compile(r"^[a-z2-7]{16}\.onion$")

#: Both address derivations are pure, and the measurement loops call them
#: once per service per simulated hour — a population's worth of distinct
#: inputs (tens of thousands at paper scale), each hit hundreds of times.
#: A bounded memo turns the repeat derivations into dict lookups without
#: changing a single output byte.
_CACHE_SIZE = 1 << 17


@functools.lru_cache(maxsize=_CACHE_SIZE)
def onion_address_from_key(public_der: bytes) -> OnionAddress:
    """Derive the ``<z>.onion`` address from public key material.

    >>> onion_address_from_key(b"example-key")
    '7i5x6zcca6exi4fu.onion'
    """
    if not public_der:
        raise CryptoError("public key material must be non-empty")
    digest = hashlib.sha1(public_der).digest()
    return onion_address_from_permanent_id(digest[:PERMANENT_ID_LEN])


def onion_address_from_permanent_id(permanent_id: bytes) -> OnionAddress:
    """Encode a 10-byte permanent identifier as an onion address."""
    if len(permanent_id) != PERMANENT_ID_LEN:
        raise CryptoError(
            f"permanent id must be {PERMANENT_ID_LEN} bytes, got {len(permanent_id)}"
        )
    label = base64.b32encode(permanent_id).decode("ascii").lower()
    return f"{label}.onion"


@functools.lru_cache(maxsize=_CACHE_SIZE)
def permanent_id_from_onion(onion: OnionAddress) -> bytes:
    """Decode an onion address back to its 10-byte permanent identifier.

    This is the inverse the harvesting attack relies on: descriptor IDs are
    derived from the permanent id, so holding an onion address suffices to
    predict where its descriptors will live on the HSDir ring.
    """
    if not is_valid_onion(onion):
        raise CryptoError(f"not a valid v2 onion address: {onion!r}")
    label = onion[: -len(".onion")]
    return base64.b32decode(label.upper().encode("ascii"))


def is_valid_onion(onion: str) -> bool:
    """True when ``onion`` is a syntactically valid v2 address."""
    return isinstance(onion, str) and bool(_ONION_RE.match(onion))
