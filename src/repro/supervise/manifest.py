"""The CompletenessManifest: what a supervised run actually delivered.

Graceful degradation is only honest if the degradation is *declared*: a
partial result that looks like a full one is a measurement bug waiting to
be cited.  Every supervised run therefore carries a manifest naming the
stages that completed, the stages that are missing or ran over their
deadline budget, every injected crash that fired, the restart/backoff
spend, and any work quarantined by the parallel executor — enough for a
reader (or ``analysis/report.py``) to judge exactly how complete the
numbers are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.errors import SupervisionError
from repro.supervise.crashplan import CrashEvent

_MANIFEST_SCHEMA = 1

#: Stage status values a manifest may carry.
STAGE_COMPLETE = "complete"
STAGE_MISSING = "missing"
STAGE_DEADLINE_EXCEEDED = "deadline-exceeded"

_STAGE_STATUSES = (STAGE_COMPLETE, STAGE_MISSING, STAGE_DEADLINE_EXCEEDED)

#: Degradation reasons.
REASON_NONE = ""
REASON_RESTARTS = "restarts-exhausted"
REASON_DEADLINE = "deadline-exceeded"


@dataclass
class StageStatus:
    """One stage's completeness verdict."""

    name: str
    status: str
    #: Simulated seconds the stage's last attempt spent computing (0 on a
    #: checkpoint replay — the compute already happened in a prior life).
    sim_seconds: int = 0

    def __post_init__(self) -> None:
        if self.status not in _STAGE_STATUSES:
            raise SupervisionError(
                f"unknown stage status {self.status!r} "
                f"(want one of {_STAGE_STATUSES})"
            )


@dataclass
class CompletenessManifest:
    """Everything a consumer needs to trust (or discount) a partial result."""

    stages: List[StageStatus] = field(default_factory=list)
    crashes: List[CrashEvent] = field(default_factory=list)
    restarts_used: int = 0
    #: Simulated seconds spent in restart backoff pauses.
    backoff_sim_seconds: int = 0
    #: Items the parallel executor quarantined instead of aborting on
    #: (``{"index": ..., "error": ...}`` dicts, global item order).
    quarantined_items: List[Dict[str, Any]] = field(default_factory=list)
    degraded: bool = False
    reason: str = REASON_NONE
    #: The crash plan that ran (``CrashPlan.describe()``), for audit.
    crash_plan: Dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Every stage complete, nothing quarantined, nothing degraded."""
        return (
            not self.degraded
            and not self.quarantined_items
            and all(stage.status == STAGE_COMPLETE for stage in self.stages)
        )

    def completed_stages(self) -> List[str]:
        """Names of the stages that completed, in pipeline order."""
        return [
            stage.name
            for stage in self.stages
            if stage.status == STAGE_COMPLETE
        ]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible encoding (the artifact CI uploads)."""
        return {
            "schema": _MANIFEST_SCHEMA,
            "kind": "completeness-manifest",
            "stages": [
                {
                    "name": stage.name,
                    "status": stage.status,
                    "sim_seconds": stage.sim_seconds,
                }
                for stage in self.stages
            ],
            "crashes": [
                {"point": event.point, "visit": event.visit}
                for event in self.crashes
            ],
            "restarts_used": self.restarts_used,
            "backoff_sim_seconds": self.backoff_sim_seconds,
            "quarantined_items": list(self.quarantined_items),
            "degraded": self.degraded,
            "reason": self.reason,
            "crash_plan": dict(self.crash_plan),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompletenessManifest":
        """Inverse of :meth:`to_dict`; strict about kind and schema."""
        if data.get("kind") != "completeness-manifest":
            raise SupervisionError(
                f"not a completeness manifest: kind={data.get('kind')!r}"
            )
        schema = data.get("schema")
        if not isinstance(schema, int) or schema > _MANIFEST_SCHEMA:
            raise SupervisionError(
                f"unsupported completeness-manifest schema: {schema!r}"
            )
        try:
            manifest = cls(
                stages=[
                    StageStatus(
                        name=entry["name"],
                        status=entry["status"],
                        sim_seconds=int(entry.get("sim_seconds", 0)),
                    )
                    for entry in data["stages"]
                ],
                crashes=[
                    CrashEvent(point=entry["point"], visit=int(entry["visit"]))
                    for entry in data["crashes"]
                ],
                restarts_used=int(data["restarts_used"]),
                backoff_sim_seconds=int(data.get("backoff_sim_seconds", 0)),
                quarantined_items=list(data.get("quarantined_items", [])),
                degraded=bool(data["degraded"]),
                reason=str(data.get("reason", REASON_NONE)),
                crash_plan=dict(data.get("crash_plan", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SupervisionError(
                f"completeness manifest is malformed: {exc}"
            ) from exc
        return manifest

    def summary_lines(self) -> List[str]:
        """Human-readable rendering (the CLI prints these)."""
        lines = []
        done = self.completed_stages()
        lines.append(
            f"stages complete: {len(done)}/{len(self.stages)}"
            + (f" ({', '.join(done)})" if done else "")
        )
        for stage in self.stages:
            if stage.status != STAGE_COMPLETE:
                lines.append(f"stage {stage.name}: {stage.status}")
        lines.append(
            f"crashes injected: {len(self.crashes)}"
            + (
                " ("
                + ", ".join(f"{e.point}@{e.visit}" for e in self.crashes)
                + ")"
                if self.crashes
                else ""
            )
        )
        lines.append(
            f"restarts used: {self.restarts_used} "
            f"(backoff {self.backoff_sim_seconds} sim-seconds)"
        )
        if self.quarantined_items:
            lines.append(f"items quarantined: {len(self.quarantined_items)}")
        if self.degraded:
            lines.append(f"DEGRADED: {self.reason}")
        return lines


def export_supervise_metrics(observer, manifest: CompletenessManifest) -> None:
    """Record the manifest as ``supervise_*`` counters/gauges on ``observer``.

    Additive facts become counters, point-in-time facts gauges, so the
    snapshot merges like every other metric in the plane.
    """
    for event in manifest.crashes:
        observer.count("supervise_crashes_total", point=event.point)
    if manifest.restarts_used:
        observer.count("supervise_restarts_total", amount=manifest.restarts_used)
    if manifest.backoff_sim_seconds:
        observer.count(
            "supervise_backoff_sim_seconds_total",
            amount=manifest.backoff_sim_seconds,
        )
    for stage in manifest.stages:
        observer.count(
            "supervise_stage_outcomes_total",
            stage=stage.name,
            status=stage.status,
        )
        if stage.status == STAGE_DEADLINE_EXCEEDED:
            observer.count("supervise_deadline_exceeded_total", stage=stage.name)
    if manifest.quarantined_items:
        observer.count(
            "supervise_quarantined_items_total",
            amount=len(manifest.quarantined_items),
        )
    observer.gauge("supervise_degraded", 1 if manifest.degraded else 0)
    observer.gauge(
        "supervise_stages_complete", len(manifest.completed_stages())
    )


def merge_quarantine(
    manifest: CompletenessManifest, reports: Sequence[Dict[str, Any]]
) -> None:
    """Fold quarantine item reports into the manifest (stable item order)."""
    manifest.quarantined_items.extend(reports)
