"""repro.supervise — crash-safe supervised execution.

The supervision plane sits above store/faults/parallel and makes the
pipeline survivable: a deterministic :class:`CrashPlan` injects process
deaths at named crash points (stage boundaries, pmap shard merges, store
commits), an :class:`EpochSupervisor` restarts the epoch under a bounded
:class:`RestartPolicy` with sim-clock deadline budgets — resuming through
``repro.store`` checkpoints — and whatever actually got delivered is
declared by a :class:`CompletenessManifest`.  The invariant the whole
plane defends, and ``repro crashtest`` asserts: a run that died N times
and was resumed produces final artifacts **byte-identical** to a run
that never died.

Layering: supervise imports only substrate (errors, obs, parallel, sim)
and is imported only by the CLI and tests.  Lower layers receive the
crash hook as a plain callable — they never import this package — and
rule REP014 keeps everyone else from catching the simulated deaths.
"""

from repro.supervise.crashplan import (
    CRASHES_ENV,
    LEDGER_APPEND,
    PIPELINE_STAGES,
    PMAP_SHARD,
    STORE_COMMIT,
    CrashEvent,
    CrashPlan,
    CrashPoints,
    CrashRule,
    build_crash_plan,
    crash_profile_names,
    parse_crash_schedule,
    resolve_crash_spec,
    stage_enter,
    stage_exit,
)
from repro.supervise.manifest import (
    REASON_DEADLINE,
    REASON_NONE,
    REASON_RESTARTS,
    STAGE_COMPLETE,
    STAGE_DEADLINE_EXCEEDED,
    STAGE_MISSING,
    CompletenessManifest,
    StageStatus,
    export_supervise_metrics,
    merge_quarantine,
)
from repro.supervise.supervisor import (
    EpochSupervisor,
    RestartPolicy,
    SupervisedOutcome,
    observer_sim_seconds,
    stage_methods,
    supervise_stages,
)

__all__ = [
    "CRASHES_ENV",
    "LEDGER_APPEND",
    "PIPELINE_STAGES",
    "PMAP_SHARD",
    "STORE_COMMIT",
    "CrashEvent",
    "CrashPlan",
    "CrashPoints",
    "CrashRule",
    "CompletenessManifest",
    "EpochSupervisor",
    "REASON_DEADLINE",
    "REASON_NONE",
    "REASON_RESTARTS",
    "RestartPolicy",
    "STAGE_COMPLETE",
    "STAGE_DEADLINE_EXCEEDED",
    "STAGE_MISSING",
    "StageStatus",
    "SupervisedOutcome",
    "build_crash_plan",
    "crash_profile_names",
    "export_supervise_metrics",
    "merge_quarantine",
    "observer_sim_seconds",
    "parse_crash_schedule",
    "resolve_crash_spec",
    "stage_enter",
    "stage_exit",
    "stage_methods",
    "supervise_stages",
]
