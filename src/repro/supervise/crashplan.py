"""Deterministic crash-point injection: the CrashPlan.

A *crash point* is a named location the pipeline threads through its
execution — stage boundaries (``stage:scan:enter``), pmap shard merges
(``pmap:shard``), store commits (``store:commit``) — each hit through a
:class:`CrashPoints` hook.  A :class:`CrashPlan` answers, for every hit,
"does the process die here?" exactly the way a :class:`~repro.faults.plan.
FaultPlan` answers "does a fault fire here?": as a pure function of the
plan and the hit's identity, never of wall-clock, scheduling, or worker
count.

A plan is a set of :class:`CrashRule` entries, each naming a point label
and the 1-based *visit* at which it fires.  Visit counts are owned by the
:class:`CrashPoints` instance and are **monotonic across restarts** — the
supervisor keeps one instance alive over every restart — so a scheduled
crash fires exactly once: the visit it names happens exactly once in a
supervised run's lifetime.  The injected death is a
:class:`~repro.errors.SimulatedCrashError`, a ``BaseException`` that no
ordinary handler may catch (rule REP014), so every layer between the
crash point and the supervisor behaves exactly as it would under SIGKILL.

Named profiles (``none`` / ``light`` / ``moderate`` / ``heavy``) bundle
schedules over the canonical pipeline labels; ``$REPRO_CRASHES`` (or
``--crash-profile``) also accepts an explicit ``label@visit,label@visit``
schedule for surgical tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulatedCrashError, SupervisionError

#: Environment variable consulted when no explicit crash spec is given.
CRASHES_ENV = "REPRO_CRASHES"

#: Canonical crash-point labels threaded by the lower layers.
PMAP_SHARD = "pmap:shard"
STORE_COMMIT = "store:commit"
LEDGER_APPEND = "store:ledger:append"


def stage_enter(stage: str) -> str:
    """The crash-point label hit just before stage ``stage`` runs."""
    return f"stage:{stage}:enter"


def stage_exit(stage: str) -> str:
    """The crash-point label hit just after stage ``stage`` commits."""
    return f"stage:{stage}:exit"


@dataclass(frozen=True)
class CrashRule:
    """Die at the ``visit``-th hit of crash point ``point``."""

    point: str
    visit: int = 1

    def __post_init__(self) -> None:
        if not self.point:
            raise SupervisionError("crash rule needs a non-empty point label")
        if self.visit < 1:
            raise SupervisionError(
                f"crash visit must be >= 1, got {self.visit} for {self.point!r}"
            )


@dataclass(frozen=True)
class CrashEvent:
    """One crash that actually fired."""

    point: str
    visit: int


@dataclass(frozen=True)
class CrashPlan:
    """A named, deterministic schedule of injected process deaths."""

    seed: int = 0
    rules: Tuple[CrashRule, ...] = ()
    name: str = "custom"

    def __post_init__(self) -> None:
        seen = set()
        for rule in self.rules:
            key = (rule.point, rule.visit)
            if key in seen:
                raise SupervisionError(
                    f"duplicate crash rule {rule.point}@{rule.visit}"
                )
            seen.add(key)

    @property
    def inert(self) -> bool:
        """Whether this plan can never fire."""
        return not self.rules

    def should_crash(self, point: str, visit: int) -> bool:
        """Whether the ``visit``-th hit of ``point`` dies."""
        return any(
            rule.point == point and rule.visit == visit for rule in self.rules
        )

    def describe(self) -> Dict[str, object]:
        """JSON-compatible description (manifests, logs)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [f"{rule.point}@{rule.visit}" for rule in self.rules],
        }


class CrashPoints:
    """The runtime hook a :class:`CrashPlan` fires through.

    Callable — lower layers receive it as a plain ``crash_point`` callable
    (no ``supervise`` import), call it with a label, and either return
    normally or die.  Visit counts and the fired-event log live here and
    survive pipeline restarts, which is what makes every scheduled crash a
    one-shot: its visit number is only ever reached once.
    """

    def __init__(self, plan: CrashPlan) -> None:
        self.plan = plan
        self.visits: Dict[str, int] = {}
        #: Every crash that fired, in firing order.
        self.fired: List[CrashEvent] = []

    def __call__(self, point: str) -> None:
        if self.plan.inert:
            return
        visit = self.visits.get(point, 0) + 1
        self.visits[point] = visit
        if self.plan.should_crash(point, visit):
            event = CrashEvent(point=point, visit=visit)
            self.fired.append(event)
            raise SimulatedCrashError(point=point, visit=visit)

    @property
    def crash_count(self) -> int:
        """How many injected deaths have fired so far."""
        return len(self.fired)

    def distinct_points(self) -> Tuple[str, ...]:
        """The sorted distinct labels that have crashed."""
        return tuple(sorted({event.point for event in self.fired}))


#: The four pipeline stages, in execution order — shared by the profiles
#: below and by :class:`~repro.supervise.supervisor.EpochSupervisor`
#: callers that supervise the standard campaign.
PIPELINE_STAGES = ("scan", "certificates", "crawl", "classify")

_PROFILES: Dict[str, Tuple[CrashRule, ...]] = {
    "none": (),
    # One death mid-campaign: the minimum restart/resume exercise.
    "light": (
        CrashRule(stage_exit("scan"), 1),
        CrashRule(STORE_COMMIT, 2),
    ),
    # The acceptance bar: >= 5 deaths across distinct stage-boundary,
    # shard-boundary, and commit-point labels in one supervised run.
    "moderate": (
        CrashRule(stage_enter("scan"), 1),
        CrashRule(stage_exit("scan"), 1),
        CrashRule(STORE_COMMIT, 2),
        CrashRule(stage_enter("crawl"), 1),
        CrashRule(PMAP_SHARD, 3),
        CrashRule(stage_exit("classify"), 1),
    ),
    # Everything above plus repeated commit deaths and a torn ledger
    # append: the store must heal uncommitted objects and half-written
    # audit lines alike.
    "heavy": (
        CrashRule(stage_enter("scan"), 1),
        CrashRule(stage_exit("scan"), 1),
        CrashRule(STORE_COMMIT, 2),
        CrashRule(STORE_COMMIT, 3),
        CrashRule(LEDGER_APPEND, 4),
        CrashRule(stage_enter("crawl"), 1),
        CrashRule(stage_exit("crawl"), 1),
        CrashRule(PMAP_SHARD, 2),
        CrashRule(PMAP_SHARD, 5),
        CrashRule(stage_exit("classify"), 1),
    ),
}


def crash_profile_names() -> Tuple[str, ...]:
    """The known profile names, mildest first."""
    return ("none", "light", "moderate", "heavy")


def parse_crash_schedule(spec: str) -> Tuple[CrashRule, ...]:
    """Parse an explicit ``label@visit,label@visit`` schedule."""
    rules: List[CrashRule] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        label, _, visit_text = token.partition("@")
        if not label:
            raise SupervisionError(f"crash schedule entry has no label: {token!r}")
        visit = 1
        if visit_text:
            try:
                visit = int(visit_text)
            except ValueError as exc:
                raise SupervisionError(
                    f"crash schedule visit must be an integer: {token!r}"
                ) from exc
        rules.append(CrashRule(point=label, visit=visit))
    return tuple(rules)


def resolve_crash_spec(spec: Optional[str] = None) -> str:
    """Effective spec: explicit argument, else ``$REPRO_CRASHES``, else none."""
    if spec is None:
        spec = os.environ.get(CRASHES_ENV, "").strip() or "none"
    return spec.strip()


def build_crash_plan(spec: Optional[str] = None, seed: int = 0) -> CrashPlan:
    """The :class:`CrashPlan` for ``spec`` at ``seed``.

    ``spec`` is a profile name or an explicit ``label@visit,...`` schedule
    (anything containing ``@`` or ``:`` is treated as a schedule).
    """
    resolved = resolve_crash_spec(spec)
    lowered = resolved.lower()
    if lowered in _PROFILES:
        return CrashPlan(seed=seed, rules=_PROFILES[lowered], name=lowered)
    if "@" in resolved or ":" in resolved:
        return CrashPlan(
            seed=seed, rules=parse_crash_schedule(resolved), name="custom"
        )
    raise SupervisionError(
        f"unknown crash profile {resolved!r}; expected one of "
        f"{', '.join(crash_profile_names())} or a label@visit schedule"
    )
