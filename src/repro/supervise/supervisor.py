"""The EpochSupervisor: bounded restarts, deadline budgets, degradation.

The supervisor is the only layer allowed to catch
:class:`~repro.errors.SimulatedCrashError` (rule REP014).  It runs a
pipeline *factory* — not a pipeline — because a crash kills the process:
every restart builds a fresh incarnation and relies on ``repro.store``
checkpoints to replay the stages the previous life already committed.
PR 5's warm==cold invariant is what makes this sound: a resumed run is
byte-identical to an uninterrupted one, so the supervisor never has to
reason about partially-applied state.

Restart scheduling mirrors :class:`~repro.faults.retry.RetryPolicy`:
bounded attempts, exponential backoff with deterministic jitter drawn
from ``derive_rng(seed, "supervise", "backoff", restart)``, all tallied
in simulated seconds (nothing sleeps).  Per-stage **deadline budgets**
are sim-clock bounds measured from the pipeline observer's span tree; a
stage that blows its budget degrades the run — remaining stages are
skipped and the :class:`~repro.supervise.manifest.CompletenessManifest`
says so — rather than burning restarts on work that will only get
slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulatedCrashError, SupervisionError
from repro.obs.scope import Observer, ensure_observer
from repro.parallel import ShardQuarantine
from repro.sim.clock import Timestamp
from repro.sim.rng import derive_rng
from repro.supervise.crashplan import PIPELINE_STAGES, CrashPlan, CrashPoints
from repro.supervise.manifest import (
    REASON_DEADLINE,
    REASON_NONE,
    REASON_RESTARTS,
    STAGE_COMPLETE,
    STAGE_DEADLINE_EXCEEDED,
    STAGE_MISSING,
    CompletenessManifest,
    StageStatus,
    export_supervise_metrics,
    merge_quarantine,
)

#: A pipeline factory: called once per process incarnation with the
#: supervisor's (shared, restart-surviving) crash hook and quarantine,
#: returns an object whose stage methods are named by the stage list.
PipelineFactory = Callable[[CrashPoints, ShardQuarantine], Any]


@dataclass(frozen=True)
class RestartPolicy:
    """How many times — and how eagerly — a dead epoch is restarted.

    Same shape and jitter discipline as
    :class:`~repro.faults.retry.RetryPolicy`: ``backoff_before(n)`` is the
    pause before restart ``n`` (n >= 1), ``base_delay * backoff_factor **
    (n - 1)`` capped at ``max_delay`` and jittered by up to ``±jitter``
    from a stream keyed on (seed, restart number) alone — a pure function
    of the schedule's identity, so supervised runs replay byte-identically.
    """

    max_restarts: int = 8
    base_delay: Timestamp = 2
    backoff_factor: float = 2.0
    max_delay: Timestamp = 600
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise SupervisionError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.base_delay <= 0:
            raise SupervisionError(f"base_delay must be > 0, got {self.base_delay}")
        if self.backoff_factor < 1.0:
            raise SupervisionError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_delay < self.base_delay:
            raise SupervisionError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise SupervisionError(f"jitter must be in [0, 1), got {self.jitter}")

    def base_backoff(self, restart: int) -> float:
        """Un-jittered pause before restart ``restart`` (>= 1)."""
        if restart < 1:
            raise SupervisionError(f"no backoff precedes restart {restart}")
        return min(
            float(self.base_delay) * self.backoff_factor ** (restart - 1),
            float(self.max_delay),
        )

    def backoff_before(self, restart: int) -> Timestamp:
        """Jittered, whole-second pause before restart ``restart``."""
        base = self.base_backoff(restart)
        if self.jitter:
            rng = derive_rng(self.seed, "supervise", "backoff", str(restart))
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(1, int(round(base)))


@dataclass
class SupervisedOutcome:
    """What a supervised epoch produced (possibly partially)."""

    #: The final pipeline incarnation — pull stage results from it.
    pipeline: Any
    manifest: CompletenessManifest
    crash_points: CrashPoints
    quarantine: ShardQuarantine

    @property
    def completed(self) -> bool:
        """True when nothing was degraded, missing, or quarantined."""
        return self.manifest.complete


def observer_sim_seconds(observer: Optional[Observer]) -> int:
    """Total sim-seconds across an observer's top-level span tree."""
    if observer is None or not getattr(observer, "enabled", False):
        return 0
    return sum(span.duration for span in observer.spans)


class EpochSupervisor:
    """Run one measurement epoch to completion under a crash plan."""

    def __init__(
        self,
        plan: CrashPlan,
        policy: Optional[RestartPolicy] = None,
        budgets: Optional[Mapping[str, Timestamp]] = None,
        observer: Optional[Observer] = None,
        quarantine_attempts: int = 2,
    ) -> None:
        self.plan = plan
        self.policy = policy if policy is not None else RestartPolicy(seed=plan.seed)
        self.budgets: Dict[str, Timestamp] = dict(budgets or {})
        for stage, budget in self.budgets.items():
            if budget < 1:
                raise SupervisionError(
                    f"deadline budget for stage {stage!r} must be >= 1 "
                    f"sim-second, got {budget}"
                )
        self.observer = ensure_observer(observer)
        self.quarantine_attempts = quarantine_attempts

    def run(
        self,
        factory: PipelineFactory,
        stages: Sequence[str] = PIPELINE_STAGES,
    ) -> SupervisedOutcome:
        """Drive ``factory``'s pipeline through ``stages``, restarting on death.

        The :class:`CrashPoints` hook and :class:`ShardQuarantine` are
        created here and live across every restart — visit counts stay
        monotonic (each scheduled crash fires exactly once) and quarantined
        items stay quarantined.
        """
        if not stages:
            raise SupervisionError("a supervised epoch needs at least one stage")
        crash_points = CrashPoints(self.plan)
        quarantine = ShardQuarantine(max_attempts=self.quarantine_attempts)
        statuses: Dict[str, StageStatus] = {
            name: StageStatus(name=name, status=STAGE_MISSING) for name in stages
        }
        restarts_used = 0
        backoff_sim: int = 0
        degraded = False
        reason = REASON_NONE
        pipeline: Any = None
        while True:
            pipeline = factory(crash_points, quarantine)
            try:
                for name in stages:
                    run_stage = getattr(pipeline, name, None)
                    if run_stage is None:
                        raise SupervisionError(
                            f"pipeline has no stage method {name!r}"
                        )
                    pipeline_observer = getattr(pipeline, "observer", None)
                    before = observer_sim_seconds(pipeline_observer)
                    run_stage()
                    spent = observer_sim_seconds(pipeline_observer) - before
                    status = statuses[name]
                    # A checkpoint replay costs ~0 sim-seconds; keep the
                    # max so the manifest reports the real compute cost of
                    # whichever life actually ran the stage.
                    status.sim_seconds = max(status.sim_seconds, spent)
                    status.status = STAGE_COMPLETE
                    budget = self.budgets.get(name)
                    if budget is not None and status.sim_seconds > budget:
                        status.status = STAGE_DEADLINE_EXCEEDED
                        degraded = True
                        reason = REASON_DEADLINE
                        break
                break
            except SimulatedCrashError:
                # The one legal catch of a simulated process death: this
                # IS the supervisor.  Anything else — a genuine bug —
                # propagates untouched.
                if restarts_used >= self.policy.max_restarts:
                    degraded = True
                    reason = REASON_RESTARTS
                    break
                restarts_used += 1
                backoff_sim += self.policy.backoff_before(restarts_used)
        manifest = CompletenessManifest(
            stages=[statuses[name] for name in stages],
            crashes=list(crash_points.fired),
            restarts_used=restarts_used,
            backoff_sim_seconds=backoff_sim,
            degraded=degraded,
            reason=reason,
            crash_plan=self.plan.describe(),
        )
        merge_quarantine(manifest, quarantine.reports())
        export_supervise_metrics(self.observer, manifest)
        return SupervisedOutcome(
            pipeline=pipeline,
            manifest=manifest,
            crash_points=crash_points,
            quarantine=quarantine,
        )


def supervise_stages(
    factory: PipelineFactory,
    plan: CrashPlan,
    stages: Sequence[str] = PIPELINE_STAGES,
    policy: Optional[RestartPolicy] = None,
    budgets: Optional[Mapping[str, Timestamp]] = None,
    observer: Optional[Observer] = None,
) -> SupervisedOutcome:
    """One-shot convenience over :class:`EpochSupervisor`."""
    supervisor = EpochSupervisor(
        plan, policy=policy, budgets=budgets, observer=observer
    )
    return supervisor.run(factory, stages=stages)


def stage_methods(stages: Sequence[str]) -> Tuple[str, ...]:
    """Validate and normalise a stage-name sequence."""
    seen = set()
    for name in stages:
        if not name:
            raise SupervisionError("stage names must be non-empty")
        if name in seen:
            raise SupervisionError(f"duplicate stage name {name!r}")
        seen.add(name)
    return tuple(stages)
