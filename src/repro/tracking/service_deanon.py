"""Deanonymisation of hidden-service *operators* (the predecessor attack).

Section II.B recaps the attack from [8] that this paper adapts to clients:
"the responsible hidden service directory controlled by the attacker sends
a specific traffic signature to the hidden service immediately after the
hidden service uploads its descriptor.  This signature is then detected at
the guard node."

Preconditions mirror the client variant: the attacker must (a) control a
responsible directory of the target — achievable on demand, since
descriptor IDs are predictable and fingerprints can be ground next to them
— and (b) own the service's entry guard, which is a waiting game: guards
rotate every 30–60 days, so each rotation is a fresh ``attacker guard
share`` chance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set

from repro.crypto.keys import Fingerprint
from repro.crypto.onion import OnionAddress
from repro.sim.clock import Timestamp
from repro.sim.rng import derive_rng
from repro.tornet import PublishTrace, TorNetwork
from repro.tracking.signature import (
    SignatureDetector,
    TrafficSignature,
    honest_response_cells,
)


@dataclass(frozen=True)
class CapturedService:
    """One deanonymised hidden-service observation."""

    time: Timestamp
    onion: OnionAddress
    operator_ip: int
    guard_fingerprint: Fingerprint


class ServiceDeanonAttack:
    """Watches the publish path for the target service(s).

    Attach with :meth:`attach`; every descriptor upload produces a
    :class:`~repro.tornet.PublishTrace`:

    * upload lands at our directory for a watched onion → signature sent
      back down the publish circuit;
    * …and the service's guard is ours → the guard recognises the burst
      pattern and reads the operator's IP.
    """

    def __init__(
        self,
        hsdir_relay_ids: Set[int],
        guard_fingerprints: FrozenSet[Fingerprint],
        target_onions: Optional[Set[OnionAddress]] = None,
        signature: Optional[TrafficSignature] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.hsdir_relay_ids = set(hsdir_relay_ids)
        self.guard_fingerprints = frozenset(guard_fingerprints)
        self.target_onions = target_onions
        self.signature = signature if signature is not None else TrafficSignature()
        self._detector = SignatureDetector(self.signature)
        self._rng = (
            rng if rng is not None else derive_rng(0, "tracking", "service_deanon")
        )
        self.captures: List[CapturedService] = []
        self.signatures_injected = 0
        self.target_publishes_seen = 0
        self.false_positives = 0

    def attach(self, network: TorNetwork) -> None:
        """Start observing the network's publish path."""
        network.add_publish_observer(self._observe)

    def _is_target(self, onion: OnionAddress) -> bool:
        if self.target_onions is None:
            return True
        return onion in self.target_onions

    def _observe(self, trace: PublishTrace) -> None:
        at_our_hsdir = trace.hsdir_relay_id in self.hsdir_relay_ids
        guard_is_ours = (
            trace.guard_fingerprint is not None
            and trace.guard_fingerprint in self.guard_fingerprints
        )
        if at_our_hsdir and self._is_target(trace.onion):
            self.target_publishes_seen += 1
            bursts = self.signature.encode(payload_cells=2)
            self.signatures_injected += 1
        else:
            bursts = honest_response_cells(self._rng, payload_cells=2)
        if not guard_is_ours:
            return
        if self._detector.matches(bursts):
            if at_our_hsdir and self._is_target(trace.onion):
                self.captures.append(
                    CapturedService(
                        time=trace.time,
                        onion=trace.onion,
                        operator_ip=trace.operator_ip,
                        guard_fingerprint=trace.guard_fingerprint,
                    )
                )
            else:
                self.false_positives += 1

    @property
    def deanonymized_services(self) -> Set[OnionAddress]:
        """Onions whose operator IP has been revealed."""
        return {capture.onion for capture in self.captures}

    def ip_of(self, onion: OnionAddress) -> Optional[int]:
        """The recovered operator address for ``onion``, if captured."""
        for capture in self.captures:
            if capture.onion == onion:
                return capture.operator_ip
        return None
