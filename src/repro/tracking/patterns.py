"""Visit-pattern analysis of deanonymised clients (Section VI).

The paper's sharpest application of client deanonymisation: "Suppose that
we can categorize users on Silk Road into buyers and sellers.  Buyers visit
Silk Road occasionally while sellers visit it periodically to update their
product pages and check on orders.  Thus, a seller tends to have a specific
pattern which allows his identification."

Given the attack's capture stream — (client IP, time) observations — this
module reconstructs per-IP visit patterns and separates periodic heavy
users (sellers) from occasional ones (buyers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import AttackError
from repro.sim.clock import DAY, Timestamp
from repro.tracking.deanon import CapturedClient


@dataclass
class VisitPattern:
    """Observed visiting behaviour of one client IP."""

    client_ip: int
    visit_times: List[Timestamp]

    @property
    def visits(self) -> int:
        """Total captured visits."""
        return len(self.visit_times)

    def active_days(self) -> int:
        """Distinct days with at least one captured visit."""
        return len({t // DAY for t in self.visit_times})

    def visits_per_active_day(self) -> float:
        """Mean captured visits per day the client was seen."""
        days = self.active_days()
        return self.visits / days if days else 0.0

    def regularity(self) -> float:
        """Inter-arrival regularity in [0, 1]; 1 = clockwork.

        1 − CV of the inter-visit gaps, clamped at 0.  Sellers checking
        orders on a routine produce regular gaps; buyers produce a couple
        of arbitrary timestamps.
        """
        if self.visits < 3:
            return 0.0
        times = sorted(self.visit_times)
        gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
        if not gaps:
            return 0.0
        mean = sum(gaps) / len(gaps)
        if mean == 0:
            return 0.0
        variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(variance) / mean
        return max(0.0, 1.0 - cv)


@dataclass(frozen=True)
class SellerCriteria:
    """Thresholds separating sellers from buyers.

    The defaults encode the paper's qualitative description: sellers show
    up across several distinct days with repeated visits.  The regularity
    gate defaults to off: the attacker sees a *thinned* sample of each
    client's visits (one per fetch that rode an attacker guard), and
    thinning a periodic process geometrically inflates gap variance, so
    regularity only separates classes when the capture rate is high.
    """

    min_active_days: int = 3
    min_visits: int = 4
    min_regularity: float = 0.0

    def __post_init__(self) -> None:
        if self.min_active_days < 1 or self.min_visits < 1:
            raise AttackError("criteria thresholds must be positive")
        if not 0 <= self.min_regularity <= 1:
            raise AttackError(
                f"regularity threshold out of range: {self.min_regularity}"
            )


def patterns_from_captures(
    captures: Iterable[CapturedClient],
) -> Dict[int, VisitPattern]:
    """Group a capture stream into per-IP visit patterns."""
    visits: Dict[int, List[Timestamp]] = {}
    for capture in captures:
        visits.setdefault(capture.client_ip, []).append(capture.time)
    return {
        ip: VisitPattern(client_ip=ip, visit_times=sorted(times))
        for ip, times in visits.items()
    }


def classify_visitors(
    patterns: Dict[int, VisitPattern],
    criteria: SellerCriteria = SellerCriteria(),
) -> Tuple[List[int], List[int]]:
    """Split captured IPs into (sellers, buyers) per the criteria."""
    sellers: List[int] = []
    buyers: List[int] = []
    for ip, pattern in patterns.items():
        if (
            pattern.active_days() >= criteria.min_active_days
            and pattern.visits >= criteria.min_visits
            and pattern.regularity() >= criteria.min_regularity
        ):
            sellers.append(ip)
        else:
            buyers.append(ip)
    return sorted(sellers), sorted(buyers)


@dataclass
class SellerIdentification:
    """Scored outcome against ground truth (experiment harness output)."""

    identified_sellers: List[int]
    identified_buyers: List[int]
    true_sellers: frozenset
    observation_days: int

    @property
    def true_positives(self) -> int:
        """Correctly identified sellers."""
        return sum(1 for ip in self.identified_sellers if ip in self.true_sellers)

    @property
    def precision(self) -> float:
        """Fraction of flagged IPs that really are sellers."""
        flagged = len(self.identified_sellers)
        return self.true_positives / flagged if flagged else 0.0

    @property
    def captured_seller_recall(self) -> float:
        """Fraction of *captured* sellers correctly flagged.

        (The attack can only classify clients it captured at all; missing
        the rest is the guard-share economics, not the classifier.)
        """
        captured_sellers = sum(
            1
            for ip in self.identified_sellers + self.identified_buyers
            if ip in self.true_sellers
        )
        if not captured_sellers:
            return 0.0
        return self.true_positives / captured_sellers
