"""Opportunistic deanonymisation of hidden-service clients (Section VI)."""

from repro.tracking.signature import TrafficSignature, SignatureDetector
from repro.tracking.deanon import ClientDeanonAttack, CapturedClient, deploy_attacker_guards
from repro.tracking.service_deanon import ServiceDeanonAttack, CapturedService
from repro.tracking.geomap import ClientGeoMap

__all__ = [
    "TrafficSignature",
    "SignatureDetector",
    "ClientDeanonAttack",
    "CapturedClient",
    "deploy_attacker_guards",
    "ServiceDeanonAttack",
    "CapturedService",
    "ClientGeoMap",
]
