"""Geographic aggregation of deanonymised clients (Fig 3).

The paper renders a world map of the clients of one Goldnet hidden
service.  Offline, the equivalent deliverable is the country-level
distribution those map dots encode; :meth:`ClientGeoMap.format_map` prints
it as a text histogram.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.net.geoip import GeoIP


@dataclass
class ClientGeoMap:
    """Country distribution of a set of client IPs."""

    geoip: GeoIP
    counts: Counter = field(default_factory=Counter)

    def add_ips(self, ips: Iterable[int]) -> None:
        """Resolve and accumulate client addresses."""
        for ip in ips:
            self.counts[self.geoip.lookup(ip)] += 1

    @property
    def total_clients(self) -> int:
        """All resolved clients."""
        return sum(self.counts.values())

    @property
    def country_count(self) -> int:
        """Number of distinct countries observed."""
        return len(self.counts)

    def distribution(self) -> List[Tuple[str, int]]:
        """(country, clients) rows, most affected first."""
        return self.counts.most_common()

    def shares(self) -> Dict[str, float]:
        """country -> fraction of all captured clients."""
        total = self.total_clients
        if not total:
            return {}
        return {country: count / total for country, count in self.counts.items()}

    def format_map(self, width: int = 50, limit: int = 20) -> str:
        """Text histogram standing in for the paper's world map."""
        rows = self.distribution()[:limit]
        if not rows:
            return "(no clients captured)"
        peak = rows[0][1]
        lines = []
        for country, count in rows:
            bar = "█" * max(1, round(width * count / peak))
            lines.append(f"{country:>3} {count:>6} {bar}")
        return "\n".join(lines)
