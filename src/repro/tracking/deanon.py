"""The client-deanonymisation attack.

Preconditions (Section VI): the attacker controls (a) a responsible HSDir
of the target service and (b) some share of guard capacity.  Whenever the
malicious directory answers a fetch for the target's descriptor, it wraps
the response in the traffic signature; if the client's entry guard for that
circuit happens to be the attacker's, the guard sees the signature pass and
reads the client's IP address off the TCP connection.

The attack is *opportunistic*: per fetch, the success probability is the
attacker's guard-selection probability (≈ its share of guard bandwidth).
Section VI's punchline applications — identifying Silk Road sellers by
their periodic visit patterns, and mapping the geography of a botnet's
victims — both consume the captured (IP, time) stream this class produces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.crypto.descriptor_id import DescriptorId
from repro.crypto.keys import Fingerprint, KeyPair
from repro.errors import AttackError
from repro.net.address import AddressPool
from repro.relay.relay import Relay
from repro.sim.clock import DAY, Timestamp
from repro.sim.rng import derive_rng
from repro.tornet import FetchTrace, TorNetwork
from repro.tracking.signature import (
    SignatureDetector,
    TrafficSignature,
    honest_response_cells,
)


@dataclass(frozen=True)
class CapturedClient:
    """One deanonymised client observation."""

    time: Timestamp
    client_ip: int
    descriptor_id: DescriptorId
    guard_fingerprint: Fingerprint


def deploy_attacker_guards(
    network: TorNetwork,
    count: int,
    rng: random.Random,
    bandwidth: int = 5000,
    address_pool: Optional[AddressPool] = None,
    age_days: int = 30,
) -> List[Relay]:
    """Stand up ``count`` high-bandwidth relays old enough to be Guards.

    Guard status needs sustained uptime, so the relays are backdated by
    ``age_days`` — operationally this corresponds to having run them for a
    month before the measurement, as the authors did with their EC2 fleet.
    """
    if count < 1:
        raise AttackError(f"need at least one guard: {count}")
    pool = address_pool if address_pool is not None else AddressPool(rng)
    started = network.clock.now - age_days * DAY
    guards: List[Relay] = []
    for index in range(count):
        relay = Relay(
            nickname=f"fastguard{index:03d}",
            ip=pool.allocate(),
            or_port=443,
            keypair=KeyPair.generate(rng),
            bandwidth=bandwidth,
            started_at=started,
        )
        network.add_relay(relay)
        guards.append(relay)
    return guards


class ClientDeanonAttack:
    """Wires the malicious HSDir + malicious guard observation together.

    Attach to a network with :meth:`attach`; every client fetch produces a
    :class:`~repro.tornet.FetchTrace`, and the attack classifies it:

    * directory not ours, or descriptor not targeted → nothing observed;
    * our directory → signature injected (counted);
    * signature injected *and* the client's guard is ours → capture.
    """

    def __init__(
        self,
        hsdir_relay_ids: Set[int],
        guard_fingerprints: FrozenSet[Fingerprint],
        target_descriptor_ids: Optional[Set[DescriptorId]] = None,
        signature: Optional[TrafficSignature] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.hsdir_relay_ids = set(hsdir_relay_ids)
        self.guard_fingerprints = frozenset(guard_fingerprints)
        self.target_descriptor_ids = target_descriptor_ids
        self.signature = signature if signature is not None else TrafficSignature()
        self._detector = SignatureDetector(self.signature)
        self._rng = rng if rng is not None else derive_rng(0, "tracking", "deanon")
        self.captures: List[CapturedClient] = []
        self.signatures_injected = 0
        self.target_fetches_seen = 0
        self.false_positives = 0

    def attach(self, network: TorNetwork) -> None:
        """Start observing the network's fetch path."""
        network.add_fetch_observer(self._observe)

    def retarget(self, descriptor_ids: Set[DescriptorId]) -> None:
        """Update the watched descriptor IDs (they rotate every 24 h)."""
        self.target_descriptor_ids = set(descriptor_ids)

    def _is_target(self, desc_id: DescriptorId) -> bool:
        if self.target_descriptor_ids is None:
            return True  # watch everything
        return desc_id in self.target_descriptor_ids

    def _observe(self, trace: FetchTrace) -> None:
        at_our_hsdir = trace.hsdir_relay_id in self.hsdir_relay_ids
        guard_is_ours = (
            trace.guard_fingerprint is not None
            and trace.guard_fingerprint in self.guard_fingerprints
        )
        if at_our_hsdir and self._is_target(trace.descriptor_id):
            self.target_fetches_seen += 1
            bursts = self.signature.encode(payload_cells=3)
            self.signatures_injected += 1
        else:
            bursts = honest_response_cells(self._rng)
        if not guard_is_ours:
            return
        # The attacker's guard inspects the response cells flowing to the
        # client it is fronting for.
        if self._detector.matches(bursts):
            if at_our_hsdir and self._is_target(trace.descriptor_id):
                self.captures.append(
                    CapturedClient(
                        time=trace.time,
                        client_ip=trace.client_ip,
                        descriptor_id=trace.descriptor_id,
                        guard_fingerprint=trace.guard_fingerprint,
                    )
                )
            else:
                self.false_positives += 1

    @property
    def unique_client_ips(self) -> Set[int]:
        """Distinct client IPs captured."""
        return {capture.client_ip for capture in self.captures}

    def capture_rate(self) -> float:
        """Captures per signature injected (≈ attacker guard share)."""
        if not self.signatures_injected:
            return 0.0
        return len(self.captures) / self.signatures_injected

    def visit_counts(self) -> Dict[int, int]:
        """Visits per captured client IP — the seller-vs-buyer separator.

        Section VI: "a seller tends to have a specific pattern which allows
        his identification" — frequent periodic fetches versus occasional
        ones.
        """
        counts: Dict[int, int] = {}
        for capture in self.captures:
            counts[capture.client_ip] = counts.get(capture.client_ip, 0) + 1
        return counts
