"""The traffic signature.

The attack from [8], adapted to clients: a malicious responsible HSDir
answers a descriptor fetch with the descriptor *encapsulated in a specific
traffic signature* — a cell pattern distinctive enough that an attacker
relay elsewhere on the circuit recognises it.  Here the signature is a
sequence of cell bursts; honest directory responses produce small, smooth
cell counts, so a burst pattern like (1, 50, 1, 50) essentially never
occurs naturally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import AttackError

# The burst pattern appended after the payload cells.  Values are cell
# counts sent back-to-back with pauses between bursts.
DEFAULT_PATTERN: Tuple[int, ...] = (1, 50, 1, 50)


@dataclass(frozen=True)
class TrafficSignature:
    """A recognisable cell-burst pattern."""

    pattern: Tuple[int, ...] = DEFAULT_PATTERN

    def __post_init__(self) -> None:
        if len(self.pattern) < 2:
            raise AttackError("signature pattern too short to be distinctive")
        if any(count < 1 for count in self.pattern):
            raise AttackError("cell counts must be positive")

    def encode(self, payload_cells: int) -> List[int]:
        """Cell-burst sequence for a response of ``payload_cells`` cells."""
        if payload_cells < 1:
            raise AttackError(f"payload must be at least one cell: {payload_cells}")
        return [payload_cells, *self.pattern]


def honest_response_cells(rng: random.Random, payload_cells: int = 3) -> List[int]:
    """What a normal descriptor response looks like on the wire: a handful
    of cells, maybe split across one or two bursts."""
    if rng.random() < 0.3:
        split = rng.randint(1, max(1, payload_cells))
        return [split, max(1, payload_cells - split)]
    return [payload_cells]


class SignatureDetector:
    """Matches observed cell-burst sequences against a signature.

    A match requires the signature pattern as a suffix of the burst
    sequence.  Tolerance admits off-by-``jitter`` cell counts (cells merge
    and split in flight).
    """

    def __init__(self, signature: TrafficSignature, jitter: int = 2) -> None:
        if jitter < 0:
            raise AttackError(f"negative jitter: {jitter}")
        self.signature = signature
        self.jitter = jitter

    def matches(self, bursts: Sequence[int]) -> bool:
        """Whether ``bursts`` ends with the signature pattern."""
        pattern = self.signature.pattern
        if len(bursts) < len(pattern):
            return False
        tail = list(bursts[-len(pattern):])
        return all(
            abs(observed - expected) <= self.jitter
            for observed, expected in zip(tail, pattern)
        )
