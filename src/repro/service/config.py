"""Service configuration: one record, resolved through the batch chains.

The epoch controller takes its worker count, fault profile, and crash
schedule exactly as the batch CLI does — ``workers`` and
``fault_profile`` stay ``Optional`` here and flow unresolved into
:class:`~repro.experiments.pipeline.MeasurementPipeline` /
:func:`~repro.supervise.crashplan.build_crash_plan`, so the existing
argument → environment → default chains (``$REPRO_WORKERS``,
``$REPRO_FAULTS``, ``$REPRO_CRASHES``) remain the single source of
truth.  There is deliberately no second resolution path in the service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that shapes the epochs a service run computes."""

    seed: int = 0
    scale: float = 0.05
    epochs: int = 3
    #: Worker count for stage fan-outs; ``None`` defers to $REPRO_WORKERS.
    workers: Optional[int] = None
    #: Fault profile name; ``None`` defers to $REPRO_FAULTS.
    fault_profile: Optional[str] = None
    #: Crash profile or explicit schedule; ``None`` defers to $REPRO_CRASHES.
    crash_profile: Optional[str] = None
    scan_days: int = 8
    sweep_hours: int = 12

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigError(f"--epochs must be >= 1, got {self.epochs}")
        if self.scale <= 0:
            raise ConfigError(f"--scale must be > 0, got {self.scale}")
        if self.scan_days < 1:
            raise ConfigError(f"--scan-days must be >= 1, got {self.scan_days}")
        if self.sweep_hours < 1:
            raise ConfigError(
                f"--sweep-hours must be >= 1, got {self.sweep_hours}"
            )
