"""The epoch controller: continuous supervised measurement campaigns.

Turns the one-shot pipeline into a service loop.  Each epoch advances
the simulated world deterministically (:func:`repro.worldbuild.advance_epoch`),
runs harvest → scan → certificates → crawl → classify → popularity →
views under :class:`repro.supervise.EpochSupervisor` (so an injected
crash schedule restarts the incarnation and warm-resumes through the
store), and checkpoints every stage through one
:class:`~repro.store.checkpoint.ArtifactStore` with the epoch's ledger
run pinned to ``epoch-NNNNNN`` — every incarnation of an epoch, and
every warm replay of it, ledgers as the same run, which is what lets
``repro store gc --keep-epochs`` reason per epoch.

The controller/results/API split mirrors stem's controller/socket
separation: this module owns sequencing and state, never sockets; the
router (:mod:`repro.service.api`) owns request framing, never stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ServiceError
from repro.experiments.harvest import HarvestExperimentResult, run_harvest
from repro.experiments.pipeline import MeasurementPipeline
from repro.experiments.table2_popularity import Table2Result, run_table2
from repro.obs.scope import Observer
from repro.parallel import ShardQuarantine, resolve_workers
from repro.service.config import ServiceConfig
from repro.service.results import build_views
from repro.store import ArtifactStore, Stage, digest_of
from repro.supervise import (
    CompletenessManifest,
    EpochSupervisor,
    build_crash_plan,
    observer_sim_seconds,
    stage_enter,
    stage_exit,
)
from repro.worldbuild import EpochWorld, advance_epoch

#: The supervised stage methods of one service epoch, in dependency
#: order.  The first five live on the shared measurement pipeline; the
#: last two are the service's own (Table II sweep, then the query-view
#: materialization).
SERVICE_EPOCH_STAGES: Tuple[str, ...] = (
    "harvest",
    "scan",
    "certificates",
    "crawl",
    "classify",
    "popularity",
    "views",
)

#: Sim-second histogram buckets for epoch durations (one sweep is hours,
#: a full scan window is days).
EPOCH_DURATION_BUCKETS: Tuple[float, ...] = (
    3_600.0,
    21_600.0,
    86_400.0,
    259_200.0,
    604_800.0,
    1_209_600.0,
)

#: Import closure of the views stage (REP012 fingerprint coverage): the
#: modules whose source shapes view bytes, kept flat and sorted so
#: ``repro lint`` can statically prove the checkpoint key covers the
#: code it caches.
_VIEWS_STAGE_MODULES: Tuple[str, ...] = (
    "repro.analysis.report",
    "repro.analysis.stats",
    "repro.classify",
    "repro.classify.language",
    "repro.classify.naive_bayes",
    "repro.classify.tokenize",
    "repro.classify.topics",
    "repro.classify.training",
    "repro.client.client",
    "repro.client.guards",
    "repro.client.workload",
    "repro.crawl",
    "repro.crawl.crawler",
    "repro.crawl.filters",
    "repro.crawl.page",
    "repro.crypto.descriptor_id",
    "repro.crypto.keys",
    "repro.crypto.onion",
    "repro.crypto.ring",
    "repro.crypto.vanity",
    "repro.dirauth.archive",
    "repro.dirauth.authority",
    "repro.dirauth.consensus",
    "repro.dirauth.voting",
    "repro.experiments.harvest",
    "repro.experiments.pipeline",
    "repro.experiments.table2_popularity",
    "repro.faults",
    "repro.faults.plan",
    "repro.faults.profiles",
    "repro.faults.retry",
    "repro.faults.taxonomy",
    "repro.faults.transport",
    "repro.hs.descriptor",
    "repro.hs.publisher",
    "repro.hs.service",
    "repro.hsdir.directory",
    "repro.hsdir.ring_view",
    "repro.io",
    "repro.net.address",
    "repro.net.endpoint",
    "repro.net.geoip",
    "repro.net.transport",
    "repro.parallel",
    "repro.parallel.executor",
    "repro.popularity",
    "repro.popularity.labels",
    "repro.popularity.ranking",
    "repro.popularity.resolver",
    "repro.popularity.timeseries",
    "repro.population",
    "repro.population.botnets",
    "repro.population.content",
    "repro.population.corpus",
    "repro.population.generator",
    "repro.population.spec",
    "repro.population.webserver",
    "repro.relay.flags",
    "repro.relay.relay",
    "repro.scan",
    "repro.scan.results",
    "repro.scan.scanner",
    "repro.scan.schedule",
    "repro.scan.tls",
    "repro.service.config",
    "repro.service.controller",
    "repro.service.results",
    "repro.service.schema",
    "repro.sim.clock",
    "repro.sim.engine",
    "repro.sim.rng",
    "repro.tornet",
    "repro.trawl",
    "repro.trawl.attack",
    "repro.trawl.coverage",
    "repro.trawl.harvest",
    "repro.trawl.shadowing",
    "repro.worldbuild",
)


def epoch_run_id(epoch: int) -> str:
    """The pinned ledger run id for ``epoch`` (``epoch-NNNNNN``)."""
    return f"epoch-{epoch:06d}"


def _views_to_payload(views: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Checkpoint encoding: the views are already plain JSON."""
    return {"views": views}


def _views_from_payload(data: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Inverse of :func:`_views_to_payload`."""
    from repro.service.schema import check_views

    return check_views(data["views"], where="views checkpoint")


class ServiceEpochRun:
    """One incarnation of one epoch: the supervisor's pipeline object.

    Exposes every name in :data:`SERVICE_EPOCH_STAGES` as a memoized
    stage method plus the ``observer`` attribute the supervisor budgets
    against.  A fresh incarnation is built after every injected crash;
    the shared store (and the crash-point/quarantine state threaded in
    by the supervisor) is what makes the next incarnation warm.
    """

    def __init__(
        self,
        world: EpochWorld,
        config: ServiceConfig,
        store_root: str,
        crash_points: Optional[Callable[[str], None]],
        quarantine: Optional[ShardQuarantine],
        prev_views: Optional[Mapping[str, Dict[str, Any]]] = None,
    ) -> None:
        self.world = world
        self.config = config
        self.observer = Observer(name=epoch_run_id(world.epoch))
        self.crash_point = crash_points
        self.store = ArtifactStore(
            store_root, observer=self.observer, run_id=epoch_run_id(world.epoch)
        )
        self.pipeline = MeasurementPipeline(
            seed=world.seed,
            scale=world.scale,
            scan_days=config.scan_days,
            workers=config.workers,
            fault_profile=config.fault_profile,
            observer=self.observer,
            store=self.store,
            crash_point=crash_points,
            quarantine=quarantine,
        )
        self.prev_views = prev_views
        self._harvest: Optional[HarvestExperimentResult] = None
        self._popularity: Optional[Table2Result] = None
        self._views: Optional[Dict[str, Dict[str, Any]]] = None

    def _bracket(self, name: str):
        if self.crash_point is not None:
            self.crash_point(name)

    # -- supervised stage methods ----------------------------------------- #

    def harvest(self) -> HarvestExperimentResult:
        """Stage 0: the shadow-relay harvest against this epoch's world."""
        if self._harvest is None:
            self._bracket(stage_enter("harvest"))
            self._harvest = run_harvest(
                seed=self.world.seed,
                population=self.pipeline.population,
                sweep_hours=self.config.sweep_hours,
                store=self.store,
            )
            self._bracket(stage_exit("harvest"))
        return self._harvest

    def scan(self):
        return self.pipeline.scan()

    def certificates(self):
        return self.pipeline.certificates()

    def crawl(self):
        return self.pipeline.crawl()

    def classify(self):
        return self.pipeline.classify()

    def popularity(self) -> Table2Result:
        """Stage 5: the Table II popularity sweep (store stage ``table2``)."""
        if self._popularity is None:
            self._bracket(stage_enter("popularity"))
            self._popularity = run_table2(
                seed=self.world.seed,
                population=self.pipeline.population,
                sweep_hours=self.config.sweep_hours,
                workers=self.config.workers,
                store=self.store,
            )
            self._bracket(stage_exit("popularity"))
        return self._popularity

    def views(self) -> Dict[str, Dict[str, Any]]:
        """Stage 6: materialize the epoch's query views as one artifact.

        The cache key chains every upstream artifact digest plus the
        previous epoch's view digest, so a view checkpoint can only hit
        when the entire epoch — and the epoch before it — produced the
        same bytes.
        """
        if self._views is None:
            table2 = self.popularity()
            scan = self.pipeline.scan()
            classification = self.pipeline.classify()
            self._bracket(stage_enter("views"))
            stage = Stage(
                name="views",
                modules=_VIEWS_STAGE_MODULES,
                encode=_views_to_payload,
                decode=_views_from_payload,
            )
            config = {
                "epoch": self.world.epoch,
                "seed": self.world.seed,
                "scale": self.world.scale,
                "prev_views": (
                    digest_of(dict(self.prev_views))
                    if self.prev_views is not None
                    else None
                ),
                "workers": resolve_workers(self.config.workers),
            }
            self._views = self.store.run(
                stage,
                config,
                lambda: build_views(
                    self.world,
                    scan=scan,
                    classification=classification,
                    table2=table2,
                    prev_views=self.prev_views,
                ),
                upstream=(
                    "harvest",
                    "scan",
                    "certificates",
                    "crawl",
                    "classify",
                    "table2",
                ),
            )
            self._bracket(stage_exit("views"))
        return self._views


@dataclass(frozen=True)
class EpochRecord:
    """One completed epoch, as the API serves it."""

    epoch: int
    seed: int
    scale: float
    run_id: str
    views: Mapping[str, Dict[str, Any]]
    #: view kind → content digest of its envelope (doubles as the ETag).
    digests: Mapping[str, str]
    manifest: CompletenessManifest
    crashes: int
    restarts: int
    sim_seconds: int
    harvest: Mapping[str, Any]

    def summary(self) -> Dict[str, Any]:
        """The epoch's row in the ``/v1/epochs`` listing."""
        return {
            "epoch": self.epoch,
            "seed": self.seed,
            "scale": self.scale,
            "run_id": self.run_id,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "sim_seconds": self.sim_seconds,
            "complete": self.manifest.complete,
            "harvest": dict(self.harvest),
            "views": dict(self.digests),
        }


@dataclass
class EpochController:
    """Drives supervised epochs and accumulates their records."""

    config: ServiceConfig
    store_root: str
    observer: Observer = field(default_factory=lambda: Observer(name="service"))
    records: List[EpochRecord] = field(default_factory=list)

    def run(self) -> List[EpochRecord]:
        """Run the configured number of epochs (continuing past any done)."""
        while len(self.records) < self.config.epochs:
            self.run_epoch()
        return list(self.records)

    def run_epoch(self) -> EpochRecord:
        """Advance the world one epoch and run it under supervision."""
        epoch = len(self.records)
        world = advance_epoch(self.config.seed, self.config.scale, epoch)
        prev_views = self.records[-1].views if self.records else None
        plan = build_crash_plan(self.config.crash_profile, seed=world.seed)
        supervisor = EpochSupervisor(plan, observer=self.observer)

        def factory(
            crash_points: Callable[[str], None], quarantine: ShardQuarantine
        ) -> ServiceEpochRun:
            return ServiceEpochRun(
                world,
                self.config,
                self.store_root,
                crash_points,
                quarantine,
                prev_views=prev_views,
            )

        with self.observer.span("service.epoch", epoch=epoch, seed=world.seed):
            outcome = supervisor.run(factory, stages=SERVICE_EPOCH_STAGES)
            run: ServiceEpochRun = outcome.pipeline
            if not outcome.manifest.complete:
                raise ServiceError(
                    f"epoch {epoch} did not complete: "
                    + "; ".join(outcome.manifest.summary_lines())
                )
            views = run.views()
            harvest = run.harvest()
            sim_seconds = int(observer_sim_seconds(run.observer))
            self.observer.absorb(run.observer)

        record = EpochRecord(
            epoch=epoch,
            seed=world.seed,
            scale=world.scale,
            run_id=epoch_run_id(epoch),
            views=views,
            digests={kind: digest_of(view) for kind, view in views.items()},
            manifest=outcome.manifest,
            crashes=len(outcome.manifest.crashes),
            restarts=outcome.manifest.restarts_used,
            sim_seconds=sim_seconds,
            harvest={
                "published_onions": harvest.published_onions,
                "harvest_fraction": harvest.harvest_fraction,
                "naive_ips_needed": harvest.naive_ips_needed,
                "hsdir_count": harvest.hsdir_count,
            },
        )
        self.records.append(record)
        self.observer.count("service_epochs_total")
        self.observer.gauge("service_current_epoch", epoch)
        self.observer.observe(
            "service_epoch_sim_seconds",
            float(sim_seconds),
            buckets=EPOCH_DURATION_BUCKETS,
        )
        return record
