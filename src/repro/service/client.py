"""A deterministic in-process client over the router — no sockets.

The API's contract lives in :meth:`ServiceRouter.handle`; this client
exercises exactly that surface, so the determinism tests (identical
epoch + identical query ⇒ byte-identical body and ETag at any worker
count, clean or faulted) run without binding a port or depending on
socket timing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.service.api import ServiceRouter


@dataclass(frozen=True)
class ClientResponse:
    """One response as the in-process client surfaces it."""

    status: int
    headers: Mapping[str, str]
    body: bytes

    @property
    def etag(self) -> Optional[str]:
        return self.headers.get("ETag")

    def json(self) -> Dict[str, Any]:
        return json.loads(self.body.decode("utf-8"))


class InProcessClient:
    """GETs against a router, bypassing HTTP entirely."""

    def __init__(self, router: ServiceRouter) -> None:
        self.router = router

    def get(
        self, path: str, headers: Optional[Mapping[str, str]] = None
    ) -> ClientResponse:
        response = self.router.handle("GET", path, headers)
        return ClientResponse(
            status=response.status,
            headers=dict(response.headers),
            body=response.body,
        )

    def get_conditional(self, path: str, etag: str) -> ClientResponse:
        """A conditional re-fetch: the 304 path readers exercise."""
        return self.get(path, headers={"If-None-Match": etag})
