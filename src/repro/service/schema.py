"""Versioned response framing for the measurement service.

Every body the service emits — query views, epoch listings, health and
error responses — is wrapped in a schema-stamped envelope, exactly like
the ``BENCH_*.json`` trajectories in :mod:`repro.bench.schema`: the
version is the first thing a reader checks, and the strict loaders raise
:class:`~repro.errors.ServiceSchemaError` on drift instead of guessing.

The envelope is also the service's unit of caching: a view envelope's
content digest (:func:`repro.store.digest_of` over the whole envelope)
is both its CAS address and its HTTP ETag, so "the bytes changed" and
"the cache key changed" are the same fact.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.errors import ServiceSchemaError

#: Version stamped into every envelope; bump on layout change.
SCHEMA_VERSION = 1

#: The per-epoch query views the results layer materializes.
VIEW_KINDS: Tuple[str, ...] = ("ranking", "ports", "topics", "dossiers", "delta")


def _field(data: Mapping[str, Any], key: str, kinds, where: str):
    if not isinstance(data, Mapping):
        raise ServiceSchemaError(
            f"{where}: expected an object, got {type(data).__name__}"
        )
    if key not in data:
        raise ServiceSchemaError(f"{where}: missing field {key!r}")
    value = data[key]
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise ServiceSchemaError(
            f"{where}: field {key!r} has type {type(value).__name__}"
        )
    return value


def _check_schema(data: Mapping[str, Any], where: str) -> None:
    version = _field(data, "schema", int, where)
    if version != SCHEMA_VERSION:
        raise ServiceSchemaError(
            f"{where}: schema version {version} does not match "
            f"supported version {SCHEMA_VERSION}"
        )


def view_envelope(
    kind: str, epoch: int, seed: int, scale: float, body: Dict[str, Any]
) -> Dict[str, Any]:
    """Wrap one query view's body in the versioned envelope."""
    if kind not in VIEW_KINDS:
        raise ServiceSchemaError(
            f"unknown view kind {kind!r}; expected one of {VIEW_KINDS}"
        )
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "epoch": epoch,
        "seed": seed,
        "scale": scale,
        "body": body,
    }


def check_view(data: Mapping[str, Any], where: str = "service view") -> Dict[str, Any]:
    """Strict decode of a view envelope (shape only, not body semantics)."""
    _check_schema(data, where)
    kind = _field(data, "kind", str, where)
    if kind not in VIEW_KINDS:
        raise ServiceSchemaError(f"{where}: unknown view kind {kind!r}")
    _field(data, "epoch", int, where)
    _field(data, "seed", int, where)
    _field(data, "scale", (int, float), where)
    _field(data, "body", dict, where)
    return dict(data)


def check_views(
    views: Mapping[str, Any], where: str = "service views"
) -> Dict[str, Dict[str, Any]]:
    """Strict decode of a full per-epoch view set (every kind present)."""
    if not isinstance(views, Mapping):
        raise ServiceSchemaError(
            f"{where}: expected an object, got {type(views).__name__}"
        )
    checked: Dict[str, Dict[str, Any]] = {}
    for kind in VIEW_KINDS:
        entry = _field(views, kind, dict, where)
        view = check_view(entry, f"{where}[{kind}]")
        if view["kind"] != kind:
            raise ServiceSchemaError(
                f"{where}: entry {kind!r} holds a {view['kind']!r} view"
            )
        checked[kind] = view
    return checked


def error_envelope(status: int, error: BaseException) -> Dict[str, Any]:
    """The 4xx/5xx response body: error type + message, schema-stamped."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "error",
        "status": status,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
        },
    }
