"""The query API: routing, ETags, and the 4xx/5xx error taxonomy.

The router is transport-agnostic — it maps ``(method, path, headers)``
to a :class:`Response` and never touches a socket.  The HTTP front-end
(:mod:`repro.service.http`) and the in-process test client
(:mod:`repro.service.client`) are both thin adapters over
:meth:`ServiceRouter.handle`, so every route, header, and error body is
testable without binding a port.

Caching: a view's ETag is its content digest, quoted per RFC 9110.  A
conditional ``If-None-Match`` request that matches returns 304 with an
empty body — concurrent readers of an unchanged epoch cost one digest
comparison, not a serialization.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional

from repro.errors import (
    ConfigError,
    ReproError,
    ServiceError,
    ServiceSchemaError,
)
from repro.obs.export import render_json
from repro.obs.scope import Observer, ensure_observer
from repro.service.controller import EpochRecord
from repro.service.results import dossier_envelope
from repro.service.schema import SCHEMA_VERSION, VIEW_KINDS, error_envelope
from repro.store import digest_of

JSON_CONTENT_TYPE = "application/json; charset=utf-8"


@dataclass(frozen=True)
class Response:
    """One framed response: status, headers, body bytes."""

    status: int
    body: bytes = b""
    headers: Mapping[str, str] = field(default_factory=dict)


def _encode(document: Mapping[str, Any]) -> bytes:
    """The service wire encoding: sorted keys, two-space indent, newline.

    Sorting makes the bytes independent of dict construction order, so a
    live-computed envelope and its store-replayed twin serialize
    identically — the property the ETag tests pin.
    """
    return (
        json.dumps(document, indent=2, sort_keys=True, allow_nan=False).encode(
            "utf-8"
        )
        + b"\n"
    )


def etag_of(document: Mapping[str, Any]) -> str:
    """The quoted ETag for an envelope: its CAS content digest."""
    return f'"sha256:{digest_of(dict(document))}"'


def status_of(error: ReproError) -> int:
    """Map a library error onto the 4xx/5xx taxonomy."""
    if isinstance(error, (ConfigError, ServiceSchemaError)):
        return 400
    return 500


class ServiceRouter:
    """Routes queries over the controller's epoch records.

    Thread-safe for concurrent reads: the records list only ever grows
    (append-only, from one controller thread), and the shared observer —
    which is *not* thread-safe — is only touched under ``_lock``.
    """

    def __init__(
        self,
        records: Optional[List[EpochRecord]] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.records = records if records is not None else []
        self.observer = ensure_observer(observer)
        self._lock = threading.Lock()

    # -- observability ----------------------------------------------------- #

    def _count(self, name: str, **labels: object) -> None:
        with self._lock:
            self.observer.count(name, **labels)

    # -- epoch resolution -------------------------------------------------- #

    def _resolve_epoch(self, selector: str) -> Optional[EpochRecord]:
        if selector == "latest":
            return self.records[-1] if self.records else None
        if not selector.isdigit():
            return None
        epoch = int(selector)
        if epoch >= len(self.records):
            return None
        return self.records[epoch]

    # -- responses --------------------------------------------------------- #

    def _json_response(
        self,
        document: Mapping[str, Any],
        headers: Mapping[str, str],
        route: str,
    ) -> Response:
        """200 with body — or 304 without, when If-None-Match hits."""
        etag = etag_of(document)
        if headers.get("If-None-Match") == etag:
            self._count("service_cache_hits_total", route=route)
            return Response(
                status=304,
                headers={"ETag": etag, "Content-Type": JSON_CONTENT_TYPE},
            )
        return Response(
            status=200,
            body=_encode(document),
            headers={"ETag": etag, "Content-Type": JSON_CONTENT_TYPE},
        )

    def _error(self, status: int, error: ReproError) -> Response:
        self._count("service_errors_total", status=status)
        return Response(
            status=status,
            body=_encode(error_envelope(status, error)),
            headers={"Content-Type": JSON_CONTENT_TYPE},
        )

    # -- routes ------------------------------------------------------------ #

    def _health(self) -> Mapping[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "health",
            "status": "ok",
            "epochs": len(self.records),
        }

    def _epochs(self) -> Mapping[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "epochs",
            "epochs": [record.summary() for record in self.records],
        }

    def _metrics(self) -> Response:
        with self._lock:
            body = render_json(self.observer).encode("utf-8")
        return Response(
            status=200, body=body, headers={"Content-Type": JSON_CONTENT_TYPE}
        )

    def _route_epoch(
        self, parts: List[str], headers: Mapping[str, str]
    ) -> Response:
        record = self._resolve_epoch(parts[0])
        if record is None:
            return self._error(
                404, ServiceError(f"no such epoch: {parts[0]!r}")
            )
        if len(parts) == 2 and parts[1] in VIEW_KINDS:
            return self._json_response(
                record.views[parts[1]], headers, route=f"view:{parts[1]}"
            )
        if len(parts) == 3 and parts[1] == "dossier":
            envelope = dossier_envelope(record.views, parts[2])
            if envelope is None:
                return self._error(
                    404,
                    ServiceError(
                        f"epoch {record.epoch} never observed {parts[2]!r}"
                    ),
                )
            return self._json_response(envelope, headers, route="dossier")
        return self._error(
            404, ServiceError(f"unknown epoch query: {'/'.join(parts[1:])!r}")
        )

    def handle(
        self, method: str, path: str, headers: Optional[Mapping[str, str]] = None
    ) -> Response:
        """Serve one request; never raises (errors become envelopes)."""
        headers = headers if headers is not None else {}
        self._count("service_requests_total", method=method)
        if method != "GET":
            return self._error(
                405, ServiceError(f"method {method} not allowed; use GET")
            )
        try:
            path = path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                return self._json_response(self._health(), headers, "healthz")
            if path == "/v1/metrics":
                return self._metrics()
            if path == "/v1/epochs":
                return self._json_response(self._epochs(), headers, "epochs")
            parts = [part for part in path.split("/") if part]
            if len(parts) >= 3 and parts[:2] == ["v1", "epochs"]:
                return self._route_epoch(parts[2:], headers)
            return self._error(404, ServiceError(f"no route for {path!r}"))
        except ReproError as exc:
            return self._error(status_of(exc), exc)
