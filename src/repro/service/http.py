"""The HTTP front-end: a bounded ThreadingHTTPServer over the router.

Raw socket handling for the whole project lives here and only here —
rule REP015 of ``repro lint`` forbids ``socket``/``http.server`` imports
anywhere outside ``repro/service``.  The handler is deliberately thin:
parse nothing, decide nothing, hand ``(method, path, headers)`` to
:meth:`repro.service.api.ServiceRouter.handle` and write the framed
response back.

Determinism: the handler pins ``protocol_version``, the ``Server``
header, and the ``Date`` header (to the epoch constant — the sim clock
is the only clock in this codebase, REP003) so two identical queries
produce byte-identical responses on the wire, not just identical bodies.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from repro.service.api import ServiceRouter

#: The pinned Date header: the service has no wall clock (REP003).
FIXED_DATE = "Thu, 01 Jan 1970 00:00:00 GMT"


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def version_string(self) -> str:
        return "repro-service"

    def date_time_string(self, timestamp=None) -> str:
        return FIXED_DATE

    def log_message(self, format: str, *args) -> None:
        # Request logging belongs to the observer (the router counts
        # every request); stderr chatter would also break REP009.
        pass

    def _respond(self, method: str) -> None:
        response = self.server.router.handle(method, self.path, self.headers)
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        if response.body:
            self.wfile.write(response.body)

    def do_GET(self) -> None:
        self._respond("GET")

    def do_POST(self) -> None:
        self._respond("POST")

    def do_PUT(self) -> None:
        self._respond("PUT")

    def do_DELETE(self) -> None:
        self._respond("DELETE")


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server with a bounded handler pool.

    ``ThreadingHTTPServer`` spawns one thread per connection; the
    semaphore bounds how many handle requests *concurrently*, so a
    traffic burst queues instead of unboundedly fanning out over the
    router lock.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        router: ServiceRouter,
        workers: int = 8,
    ) -> None:
        self.router = router
        self._slots = threading.BoundedSemaphore(max(1, workers))
        super().__init__(address, _ServiceRequestHandler)

    def process_request_thread(self, request, client_address) -> None:
        with self._slots:
            super().process_request_thread(request, client_address)


def serve(
    router: ServiceRouter,
    host: str = "127.0.0.1",
    port: int = 8750,
    workers: int = 8,
) -> ServiceHTTPServer:
    """Bind the server (without starting it; call ``serve_forever``)."""
    return ServiceHTTPServer((host, port), router, workers=workers)
