"""The results layer: per-epoch query views over the stage artifacts.

Pure functions from one epoch's stage results (plus the previous epoch's
views, for deltas) to the schema-versioned envelopes the API serves.
Everything iterates in sorted order and every value is plain JSON, so a
view's canonical encoding — and therefore its content digest, which is
its ETag — is byte-stable across worker counts, fault profiles, crash
restarts, and service-vs-batch execution.

The builders accept live stage objects and store-replayed ones
interchangeably: they only touch the fields the :mod:`repro.io` encoders
round-trip (a crash-resumed epoch recomputes its views from decoded
artifacts and must land on the same bytes).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.experiments.pipeline import ClassificationOutcome
from repro.experiments.table2_popularity import Table2Result
from repro.scan import ScanResults
from repro.service.schema import view_envelope
from repro.worldbuild import EpochWorld


def ranking_view_body(table2: Table2Result) -> Dict[str, Any]:
    """The popularity ranking: Table II rows plus Section V totals."""
    return {
        "rows": [
            {
                "rank": row.rank,
                "requests": row.requests,
                "onion": row.onion,
                "description": row.description,
            }
            for row in table2.ranking.rows
        ],
        "total_requests_observed": table2.total_requests_observed,
        "unique_ids_observed": table2.unique_ids_observed,
    }


def ports_view_body(scan: ScanResults) -> Dict[str, Any]:
    """The port histogram: Fig 1 bins plus scan reachability totals."""
    distribution = scan.port_distribution()
    return {
        "counts": {
            label: distribution.counts[label]
            for label in sorted(distribution.counts)
        },
        "unique_ports": distribution.unique_ports,
        "total_open": distribution.total_open,
        "scanned_onions": scan.scanned_onions,
        "descriptor_onions": len(scan.descriptor_onions),
        "reachable_onions": len(scan.reachable_onions),
    }


def topics_view_body(classification: ClassificationOutcome) -> Dict[str, Any]:
    """The topic breakdown: Fig 2 shares plus the language funnel."""
    return {
        "topic_counts": {
            topic: classification.topic_counts[topic]
            for topic in sorted(classification.topic_counts)
        },
        "topic_shares_percent": {
            topic: share
            for topic, share in sorted(
                classification.topic_shares_percent().items()
            )
        },
        "language_counts": {
            language: classification.language_counts[language]
            for language in sorted(classification.language_counts)
        },
        "classified_pages": classification.classified_pages,
        "english_pages": classification.english_pages,
        "torhost_default_count": classification.torhost_default_count,
    }


def dossiers_view_body(
    scan: ScanResults,
    classification: ClassificationOutcome,
    table2: Table2Result,
) -> Dict[str, Any]:
    """Per-onion dossiers over every onion the epoch observed.

    The universe is the union of descriptor-bearing and reachable onions
    (both round-trip through the scan artifact); each dossier joins the
    scan's ports, the classifier's page topics, and the ranking's row.
    """
    topics_by_onion: Dict[str, List[List[Any]]] = {}
    for (onion, port), topic in classification.page_topics.items():
        topics_by_onion.setdefault(str(onion), []).append([port, topic])
    onions = sorted(set(scan.descriptor_onions) | set(scan.reachable_onions))
    dossiers: Dict[str, Dict[str, Any]] = {}
    for onion in onions:
        row = table2.ranking.row_for(onion)
        dossiers[onion] = {
            "descriptor": onion in scan.descriptor_onions,
            "reachable": onion in scan.reachable_onions,
            "open_ports": scan.ports_of(onion),
            "topics": sorted(topics_by_onion.get(onion, [])),
            "rank": row.rank if row is not None else None,
            "requests": row.requests if row is not None else None,
            "description": row.description if row is not None else None,
        }
    return {"onions": dossiers, "total": len(dossiers)}


def delta_view_body(
    current: Mapping[str, Dict[str, Any]],
    previous: Optional[Mapping[str, Dict[str, Any]]],
) -> Dict[str, Any]:
    """Epoch-over-epoch movement, computed view-to-view.

    Operates on the already-built ranking/ports/topics envelopes (not the
    stage objects) so the delta is exactly the difference a reader of the
    two epochs' views would compute — and epoch 0's delta is well-defined
    (everything empty, ``prev_epoch`` null).
    """
    if previous is None:
        return {
            "prev_epoch": None,
            "new_onions": [],
            "vanished_onions": [],
            "rank_moves": {},
            "port_count_changes": {},
            "topic_count_changes": {},
        }
    cur_ranks = {
        row["onion"]: row["rank"]
        for row in current["ranking"]["body"]["rows"]
    }
    prev_ranks = {
        row["onion"]: row["rank"]
        for row in previous["ranking"]["body"]["rows"]
    }
    rank_moves = {
        onion: {"prev_rank": prev_ranks[onion], "rank": cur_ranks[onion]}
        for onion in sorted(set(cur_ranks) & set(prev_ranks))
        if prev_ranks[onion] != cur_ranks[onion]
    }
    cur_ports = current["ports"]["body"]["counts"]
    prev_ports = previous["ports"]["body"]["counts"]
    port_changes = {
        label: cur_ports.get(label, 0) - prev_ports.get(label, 0)
        for label in sorted(set(cur_ports) | set(prev_ports))
        if cur_ports.get(label, 0) != prev_ports.get(label, 0)
    }
    cur_topics = current["topics"]["body"]["topic_counts"]
    prev_topics = previous["topics"]["body"]["topic_counts"]
    topic_changes = {
        topic: cur_topics.get(topic, 0) - prev_topics.get(topic, 0)
        for topic in sorted(set(cur_topics) | set(prev_topics))
        if cur_topics.get(topic, 0) != prev_topics.get(topic, 0)
    }
    return {
        "prev_epoch": previous["ranking"]["epoch"],
        "new_onions": sorted(set(cur_ranks) - set(prev_ranks)),
        "vanished_onions": sorted(set(prev_ranks) - set(cur_ranks)),
        "rank_moves": rank_moves,
        "port_count_changes": port_changes,
        "topic_count_changes": topic_changes,
    }


def build_views(
    world: EpochWorld,
    scan: ScanResults,
    classification: ClassificationOutcome,
    table2: Table2Result,
    prev_views: Optional[Mapping[str, Dict[str, Any]]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Materialize every query view for one epoch, as envelopes by kind."""

    def wrap(kind: str, body: Dict[str, Any]) -> Dict[str, Any]:
        return view_envelope(kind, world.epoch, world.seed, world.scale, body)

    views = {
        "ranking": wrap("ranking", ranking_view_body(table2)),
        "ports": wrap("ports", ports_view_body(scan)),
        "topics": wrap("topics", topics_view_body(classification)),
        "dossiers": wrap(
            "dossiers", dossiers_view_body(scan, classification, table2)
        ),
    }
    views["delta"] = wrap("delta", delta_view_body(views, prev_views))
    return views


def dossier_envelope(
    views: Mapping[str, Dict[str, Any]], onion: str
) -> Optional[Dict[str, Any]]:
    """One onion's dossier re-wrapped as its own addressable envelope.

    Returns ``None`` when the epoch never observed ``onion`` (the API
    turns that into a 404 rather than an empty dossier).
    """
    dossiers = views["dossiers"]
    entry = dossiers["body"]["onions"].get(onion)
    if entry is None:
        return None
    return {
        "schema": dossiers["schema"],
        "kind": "dossier",
        "epoch": dossiers["epoch"],
        "seed": dossiers["seed"],
        "scale": dossiers["scale"],
        "onion": onion,
        "body": dict(entry),
    }
