"""Measurement-as-a-service: epoch controller, results layer, query API.

The service plane turns the one-shot measurement pipeline into a
long-running daemon, split the way stem splits its controller from its
socket layer:

- :mod:`repro.service.controller` sequences supervised harvest → scan →
  certificates → crawl → classify → popularity → views epochs against a
  deterministically evolving world, checkpointing every stage through
  ``repro.store`` under an epoch-pinned ledger run id;
- :mod:`repro.service.results` materializes the per-epoch query views
  (rankings, port histograms, topic breakdowns, dossiers, deltas) as
  CAS-backed envelopes with stable digests;
- :mod:`repro.service.api` + :mod:`repro.service.http` frame those views
  over HTTP/JSON with digest ETags, conditional 304s, a bounded handler
  pool, and the 4xx/5xx taxonomy mapped from ``repro.errors``;
- :mod:`repro.service.client` is the in-process twin of the HTTP
  front-end, so the whole daemon is testable without sockets.
"""

from repro.service.api import Response, ServiceRouter, etag_of, status_of
from repro.service.client import ClientResponse, InProcessClient
from repro.service.config import ServiceConfig
from repro.service.controller import (
    SERVICE_EPOCH_STAGES,
    EpochController,
    EpochRecord,
    ServiceEpochRun,
    epoch_run_id,
)
from repro.service.http import ServiceHTTPServer, serve
from repro.service.results import build_views, dossier_envelope
from repro.service.schema import (
    SCHEMA_VERSION,
    VIEW_KINDS,
    check_view,
    check_views,
    error_envelope,
    view_envelope,
)

__all__ = [
    "SCHEMA_VERSION",
    "SERVICE_EPOCH_STAGES",
    "VIEW_KINDS",
    "ClientResponse",
    "EpochController",
    "EpochRecord",
    "InProcessClient",
    "Response",
    "ServiceConfig",
    "ServiceEpochRun",
    "ServiceHTTPServer",
    "ServiceRouter",
    "build_views",
    "check_view",
    "check_views",
    "dossier_envelope",
    "epoch_run_id",
    "error_envelope",
    "etag_of",
    "serve",
    "status_of",
    "view_envelope",
]
