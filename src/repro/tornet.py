"""The simulated Tor network facade.

:class:`TorNetwork` wires the substrates together: a directory-authority set
publishing hourly consensuses, one :class:`~repro.hsdir.directory.HSDirServer`
per relay, descriptor publication to the six responsible directories, and
the client fetch path.  Measurement code (harvester, scanner, clients,
trackers) interacts only with this facade and with the public crypto
functions — never with simulator ground truth.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.crypto.descriptor_id import REPLICAS, DescriptorId, descriptor_id
from repro.crypto.keys import Fingerprint
from repro.crypto.onion import OnionAddress
from repro.dirauth.archive import ConsensusArchive
from repro.dirauth.authority import DirectoryAuthoritySet
from repro.dirauth.consensus import Consensus
from repro.dirauth.voting import FlagPolicy
from repro.errors import SimulationError
from repro.hs.service import HiddenService
from repro.hsdir.directory import HSDirServer, StoredDescriptor
from repro.hsdir.ring_view import (
    responsible_for_replica,
    responsible_replica_lists_batch,
)
from repro.relay.relay import Relay
from repro.sim.clock import HOUR, SimClock, Timestamp
from repro.sim.rng import derive_rng


class FetchTrace:
    """Everything observable about one client descriptor fetch.

    The deanonymisation analysis (Section VI) consumes these traces: the
    attack succeeds when the *directory* relay is attacker-controlled (it
    injects the traffic signature into the response) **and** the client's
    *guard* relay is attacker-controlled (it sees the signature pass by and
    reads the client's IP from the TCP connection).
    """

    __slots__ = (
        "time",
        "client_ip",
        "guard_fingerprint",
        "hsdir_relay_id",
        "hsdir_fingerprint",
        "descriptor_id",
        "found",
    )

    def __init__(
        self,
        time: Timestamp,
        client_ip: int,
        guard_fingerprint: Optional[Fingerprint],
        hsdir_relay_id: int,
        hsdir_fingerprint: Fingerprint,
        descriptor_id: DescriptorId,
        found: bool,
    ) -> None:
        self.time = time
        self.client_ip = client_ip
        self.guard_fingerprint = guard_fingerprint
        self.hsdir_relay_id = hsdir_relay_id
        self.hsdir_fingerprint = hsdir_fingerprint
        self.descriptor_id = descriptor_id
        self.found = found


class PublishTrace:
    """Everything observable about one descriptor upload.

    The predecessor attack ([8], recapped in §II.B) deanonymises hidden
    *services*: an attacker-controlled responsible directory answers the
    upload with a traffic signature, and if the service's entry guard is
    also the attacker's, the guard reads the operator's IP off the circuit.
    """

    __slots__ = (
        "time",
        "onion",
        "descriptor_id",
        "operator_ip",
        "guard_fingerprint",
        "hsdir_relay_id",
        "hsdir_fingerprint",
    )

    def __init__(
        self,
        time: Timestamp,
        onion: OnionAddress,
        descriptor_id: DescriptorId,
        operator_ip: int,
        guard_fingerprint: Optional[Fingerprint],
        hsdir_relay_id: int,
        hsdir_fingerprint: Fingerprint,
    ) -> None:
        self.time = time
        self.onion = onion
        self.descriptor_id = descriptor_id
        self.operator_ip = operator_ip
        self.guard_fingerprint = guard_fingerprint
        self.hsdir_relay_id = hsdir_relay_id
        self.hsdir_fingerprint = hsdir_fingerprint


class TorNetwork:
    """The simulated network: relays, consensus, HSDir stores, fetch path."""

    def __init__(
        self,
        policy: Optional[FlagPolicy] = None,
        clock: Optional[SimClock] = None,
        keep_archive: bool = True,
        authority: Optional[DirectoryAuthoritySet] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock(0)
        # Any object speaking the DirectoryAuthoritySet protocol works —
        # e.g. a voting repro.dirauth.council.AuthorityCouncil.
        self.authority = (
            authority if authority is not None else DirectoryAuthoritySet(policy)
        )
        self.archive = ConsensusArchive() if keep_archive else None
        self._hsdir_servers: Dict[int, HSDirServer] = {}
        self._relays_by_fingerprint: Dict[Fingerprint, Relay] = {}
        self._consensus: Optional[Consensus] = None
        self._fetch_observers: List[Callable[[FetchTrace], None]] = []
        self._publish_observers: List[Callable[[PublishTrace], None]] = []
        self._publish_rng = derive_rng(0xB0B, "tornet", "publish")

    # ------------------------------------------------------------------ #
    # Relay management
    # ------------------------------------------------------------------ #

    def add_relay(self, relay: Relay) -> None:
        """Register a relay and provision its directory-side store."""
        self.authority.register(relay)
        self._hsdir_servers[relay.relay_id] = HSDirServer(relay.relay_id)

    def add_relays(self, relays: Iterable[Relay]) -> None:
        """Register many relays."""
        for relay in relays:
            self.add_relay(relay)

    def hsdir_server_for(self, relay: Relay) -> HSDirServer:
        """The directory-side store of ``relay``."""
        try:
            return self._hsdir_servers[relay.relay_id]
        except KeyError as exc:
            raise SimulationError(f"relay not in network: {relay}") from exc

    # ------------------------------------------------------------------ #
    # Consensus
    # ------------------------------------------------------------------ #

    @property
    def consensus(self) -> Consensus:
        """The consensus currently in force."""
        if self._consensus is None:
            raise SimulationError("no consensus built yet; call rebuild_consensus")
        return self._consensus

    def rebuild_consensus(
        self, now: Optional[Timestamp] = None, archive: bool = True
    ) -> Consensus:
        """Publish a fresh consensus at ``now`` (default: current clock)."""
        if now is None:
            now = self.clock.now
        else:
            self.clock.advance_to(now)
        consensus = self.authority.build_consensus(now)
        self._consensus = consensus
        self._relays_by_fingerprint = {}
        for relay in self.authority.monitored_relays:
            if relay.fingerprint in consensus:
                self._relays_by_fingerprint[relay.fingerprint] = relay
        if archive and self.archive is not None:
            self.archive.append(consensus)
        return consensus

    def run_hours(self, hours: int, archive: bool = True) -> None:
        """Advance time hour by hour, rebuilding the consensus each hour."""
        for _ in range(hours):
            self.clock.advance_by(HOUR)
            self.rebuild_consensus(archive=archive)

    def relay_for_fingerprint(self, fingerprint: Fingerprint) -> Optional[Relay]:
        """The consensus-listed relay currently holding ``fingerprint``."""
        return self._relays_by_fingerprint.get(fingerprint)

    # ------------------------------------------------------------------ #
    # Descriptor publication (service side)
    # ------------------------------------------------------------------ #

    def responsible_set(
        self, onion: OnionAddress, now: Optional[Timestamp] = None
    ) -> frozenset:
        """The six responsible fingerprints for ``onion`` right now.

        Services watch this set across consensuses and republish when it
        changes — the behaviour the shadow-relay harvest exploits: every
        attacker relay that rotates into the consensus pulls fresh uploads
        from the services whose descriptor IDs fall in its ring segment.
        """
        if now is None:
            now = self.clock.now
        fingerprints: List[Fingerprint] = []
        for replica in range(REPLICAS):
            desc_id = descriptor_id(onion, now, replica)
            fingerprints.extend(self.consensus.hsdir_ring.responsible_for(desc_id))
        return frozenset(fingerprints)

    def responsible_replica_lists_batch(
        self, onions: Sequence[OnionAddress], now: Optional[Timestamp] = None
    ) -> List[List[List[Fingerprint]]]:
        """Per-replica responsible fingerprints for many onions at once.

        Element ``[i][replica]`` is byte-identical to the scalar
        ``responsible_for_replica`` chain behind :meth:`responsible_set`;
        the batch shares one secret-part table and one vectorised ring
        bisect across the whole population.
        """
        if now is None:
            now = self.clock.now
        return responsible_replica_lists_batch(self.consensus, onions, now)

    def responsible_sets_batch(
        self, onions: Sequence[OnionAddress], now: Optional[Timestamp] = None
    ) -> List[frozenset]:
        """Batched :meth:`responsible_set`: one frozenset per onion."""
        return [
            frozenset(fp for replica_fps in per_replica for fp in replica_fps)
            for per_replica in self.responsible_replica_lists_batch(onions, now)
        ]

    def publish_service(
        self,
        service: HiddenService,
        now: Optional[Timestamp] = None,
        responsible_per_replica: Optional[Sequence[Sequence[Fingerprint]]] = None,
    ) -> int:
        """Upload both replicas of ``service`` to the responsible HSDirs.

        Returns the number of directories that accepted the upload (up to
        ``REPLICAS * 3``; fewer if responsible relays are not in the network
        map, which cannot happen for consensus-derived fingerprints).

        ``responsible_per_replica`` lets a caller that already batched the
        placement (``responsible_replica_lists_batch``) hand the per-replica
        fingerprint lists in; when omitted the scalar derivation runs here,
        and both paths deliver to identical directories in identical order.
        """
        if now is None:
            now = self.clock.now
        if not service.is_online(now):
            return 0
        # Service-side guards are only materialised when someone is watching
        # the publish path (the §II.B attack): guard upkeep for tens of
        # thousands of services would otherwise dominate harvest runs.
        guards = (
            service.ensure_guards(self, self._publish_rng)
            if self._publish_observers
            else None
        )
        delivered = 0
        for descriptor in service.current_descriptors(now):
            responsible = (
                responsible_per_replica[descriptor.replica]
                if responsible_per_replica is not None
                else responsible_for_replica(
                    self.consensus, service.onion, now, descriptor.replica
                )
            )
            # One frozen StoredDescriptor shared across all responsible
            # directories — to_stored() per upload used to dominate the
            # publish loop at harvest scale.
            stored = descriptor.to_stored()
            for fingerprint in responsible:
                relay = self._relays_by_fingerprint.get(fingerprint)
                if relay is None:
                    continue
                server = self._hsdir_servers[relay.relay_id]
                server.store(stored, now)
                delivered += 1
                if guards is not None:
                    trace = PublishTrace(
                        time=int(now),
                        onion=service.onion,
                        descriptor_id=descriptor.descriptor_id,
                        operator_ip=service.operator_ip,
                        guard_fingerprint=(
                            guards.pick() if guards.fingerprints else None
                        ),
                        hsdir_relay_id=relay.relay_id,
                        hsdir_fingerprint=fingerprint,
                    )
                    for observer in self._publish_observers:
                        observer(trace)
        service.publish_count += 1
        return delivered

    def publish_all(
        self, services: Iterable[HiddenService], now: Optional[Timestamp] = None
    ) -> int:
        """Publish every online service; returns total accepted uploads."""
        return sum(self.publish_service(service, now) for service in services)

    # ------------------------------------------------------------------ #
    # Descriptor fetch (client side)
    # ------------------------------------------------------------------ #

    def add_fetch_observer(self, observer: Callable[[FetchTrace], None]) -> None:
        """Register a callback invoked for every client fetch."""
        self._fetch_observers.append(observer)

    def add_publish_observer(self, observer: Callable[[PublishTrace], None]) -> None:
        """Register a callback invoked for every descriptor upload."""
        self._publish_observers.append(observer)

    def fetch_descriptor_id(
        self,
        desc_id: DescriptorId,
        rng: random.Random,
        now: Optional[Timestamp] = None,
        client_ip: int = 0,
        guard_fingerprint: Optional[Fingerprint] = None,
    ) -> Optional[StoredDescriptor]:
        """Fetch a raw descriptor ID, as a (possibly confused) client would.

        The client queries the responsible directories for ``desc_id`` in a
        random order until one answers.  Every queried directory logs the
        request — this is how phantom requests for never-published
        descriptors still show up in the harvest (Section V observed 80% of
        fetches were for non-existent descriptors).
        """
        if now is None:
            now = self.clock.now
        responsible = self.consensus.hsdir_ring.responsible_for(desc_id)
        order = list(responsible)
        rng.shuffle(order)
        result: Optional[StoredDescriptor] = None
        for fingerprint in order:
            relay = self._relays_by_fingerprint.get(fingerprint)
            if relay is None:
                continue
            server = self._hsdir_servers[relay.relay_id]
            found = server.fetch(desc_id, now)
            trace = FetchTrace(
                time=int(now),
                client_ip=client_ip,
                guard_fingerprint=guard_fingerprint,
                hsdir_relay_id=relay.relay_id,
                hsdir_fingerprint=fingerprint,
                descriptor_id=desc_id,
                found=found is not None,
            )
            for observer in self._fetch_observers:
                observer(trace)
            if found is not None:
                result = found
                break
        return result

    def fetch_onion(
        self,
        onion: OnionAddress,
        rng: random.Random,
        now: Optional[Timestamp] = None,
        client_ip: int = 0,
        guard_fingerprint: Optional[Fingerprint] = None,
    ) -> Optional[StoredDescriptor]:
        """Fetch a descriptor by onion address (client picks a replica)."""
        if now is None:
            now = self.clock.now
        replicas = list(range(REPLICAS))
        rng.shuffle(replicas)
        for replica in replicas:
            desc_id = descriptor_id(onion, now, replica)
            stored = self.fetch_descriptor_id(
                desc_id,
                rng,
                now=now,
                client_ip=client_ip,
                guard_fingerprint=guard_fingerprint,
            )
            if stored is not None:
                return stored
        return None

    def descriptor_available(self, onion: OnionAddress, now: Timestamp) -> bool:
        """Whether any responsible directory holds a descriptor for ``onion``.

        Used by the scanner's transport: connecting to a hidden service first
        requires fetching its descriptor.  This probe does not pollute the
        request logs (the scanner's own fetches are not client traffic the
        popularity analysis should count).
        """
        for replica in range(REPLICAS):
            desc_id = descriptor_id(onion, now, replica)
            for fingerprint in self.consensus.hsdir_ring.responsible_for(desc_id):
                relay = self._relays_by_fingerprint.get(fingerprint)
                if relay is None:
                    continue
                server = self._hsdir_servers[relay.relay_id]
                if server.fetch(desc_id, now, log=False) is not None:
                    return True
        return False
