"""A deterministic discrete-event engine.

Components schedule callbacks at absolute or relative simulated times; the
engine pops them in ``(time, sequence)`` order, so two events scheduled for
the same instant fire in scheduling order and runs are bit-for-bit
reproducible.

The engine is deliberately minimal: the Tor measurement experiments mostly
advance in coarse phases (hourly consensuses, daily descriptor rotations,
2-hour harvest windows), and a heap of callbacks is all that is needed to
express churn, scan retries, and publish schedules on top of those phases.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import SimClock, Timestamp


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, sequence)``."""

    time: Timestamp
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing when popped."""
        self.cancelled = True


class EventEngine:
    """Discrete-event scheduler bound to a :class:`SimClock`.

    >>> engine = EventEngine(SimClock(0))
    >>> fired = []
    >>> _ = engine.schedule_at(10, lambda: fired.append("a"))
    >>> _ = engine.schedule_at(5, lambda: fired.append("b"))
    >>> engine.run_until(10)
    >>> fired
    ['b', 'a']
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock(0)
        self._heap: list[Event] = []
        self._sequence = 0
        self._events_fired = 0

    @property
    def now(self) -> Timestamp:
        """Current simulated time."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of events scheduled but not yet fired or cancelled."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_fired

    def schedule_at(
        self, ts: Timestamp, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``ts``."""
        ts = int(ts)
        if ts < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: {ts} < {self.clock.now}"
            )
        event = Event(time=ts, sequence=self._sequence, callback=callback, label=label)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(
        self, delay: Timestamp, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.clock.now + int(delay), callback, label=label)

    def run_until(self, ts: Timestamp) -> None:
        """Fire all events with time <= ``ts``, then set the clock to ``ts``."""
        ts = int(ts)
        if ts < self.clock.now:
            raise SimulationError(f"cannot run backwards to {ts}")
        while self._heap and self._heap[0].time <= ts:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._events_fired += 1
        self.clock.advance_to(ts)

    def run_all(self, limit: int = 10_000_000) -> None:
        """Fire every pending event.  ``limit`` guards against runaway loops."""
        fired = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._events_fired += 1
            fired += 1
            if fired > limit:
                raise SimulationError(f"run_all exceeded {limit} events")

    def __repr__(self) -> str:
        return f"EventEngine(now={self.clock.now}, pending={self.pending})"
