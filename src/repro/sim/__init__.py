"""Deterministic discrete-event simulation substrate.

The rest of the library never reads wall-clock time or the global
:mod:`random` state.  All time comes from a :class:`~repro.sim.clock.SimClock`
driven by an :class:`~repro.sim.engine.EventEngine`, and all randomness comes
from :func:`~repro.sim.rng.derive_rng`, so every experiment is reproducible
from a single integer seed.
"""

from repro.sim.clock import SimClock, Timestamp, parse_date, format_date, DAY, HOUR, MINUTE
from repro.sim.engine import EventEngine, Event
from repro.sim.rng import derive_rng, derive_seed, split_rng

__all__ = [
    "SimClock",
    "Timestamp",
    "parse_date",
    "format_date",
    "DAY",
    "HOUR",
    "MINUTE",
    "EventEngine",
    "Event",
    "derive_rng",
    "derive_seed",
]
