"""Simulated time.

Time in the simulator is a Unix timestamp in whole seconds (``Timestamp``).
The paper's measurements are anchored to concrete dates (harvest on
2013-02-04, port scans 2013-02-14..21, descriptor resolution window
2013-01-28..2013-02-08, Silk Road history 2011-02-01..2013-10-31), so the
clock works in real calendar time to keep experiment configuration readable.
"""

from __future__ import annotations

import datetime as _dt

from repro.errors import SimulationError

Timestamp = int

MINUTE: Timestamp = 60
HOUR: Timestamp = 60 * MINUTE
DAY: Timestamp = 24 * HOUR

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)


def parse_date(text: str) -> Timestamp:
    """Parse ``YYYY-MM-DD`` or ``YYYY-MM-DD HH:MM:SS`` into a timestamp.

    >>> parse_date("2013-02-04")
    1359936000
    """
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d"):
        try:
            parsed = _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
        parsed = parsed.replace(tzinfo=_dt.timezone.utc)
        return int((parsed - _EPOCH).total_seconds())
    raise SimulationError(f"unparseable date: {text!r}")


def format_date(ts: Timestamp, with_time: bool = False) -> str:
    """Format a timestamp as ``YYYY-MM-DD`` (optionally with ``HH:MM:SS``)."""
    moment = _EPOCH + _dt.timedelta(seconds=int(ts))
    if with_time:
        return moment.strftime("%Y-%m-%d %H:%M:%S")
    return moment.strftime("%Y-%m-%d")


def day_number(ts: Timestamp) -> int:
    """Whole days since the Unix epoch (used for daily descriptor rotation)."""
    return int(ts) // DAY


class SimClock:
    """A monotonically advancing simulated clock.

    The clock can only move forward; rewinding indicates a scheduling bug and
    raises :class:`SimulationError`.
    """

    def __init__(self, start: Timestamp = 0) -> None:
        self._now = int(start)

    @property
    def now(self) -> Timestamp:
        """Current simulated time in seconds since the Unix epoch."""
        return self._now

    def advance_to(self, ts: Timestamp) -> None:
        """Jump the clock forward to ``ts``."""
        ts = int(ts)
        if ts < self._now:
            raise SimulationError(
                f"clock cannot rewind: {ts} < {self._now}"
            )
        self._now = ts

    def advance_by(self, seconds: Timestamp) -> None:
        """Advance the clock by a non-negative number of seconds."""
        if seconds < 0:
            raise SimulationError(f"cannot advance by negative time: {seconds}")
        self._now += int(seconds)

    def __repr__(self) -> str:
        return f"SimClock({format_date(self._now, with_time=True)})"
