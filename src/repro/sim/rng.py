"""Seeded random-number-generator derivation.

Experiments take a single integer ``seed``; every component derives its own
independent :class:`random.Random` stream from that seed plus a string path
(e.g. ``derive_rng(7, "population", "skynet")``).  Independent streams mean
adding randomness to one component never perturbs another component's draws,
which keeps regression expectations stable as the library grows.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(seed: int, *path: str) -> int:
    """Derive a child seed from a parent seed and a string path.

    The derivation hashes ``seed`` together with each path element, so
    ``derive_seed(7, "a", "b")`` and ``derive_seed(7, "a/b")`` differ and the
    mapping is stable across processes and Python versions.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("ascii"))
    for element in path:
        digest.update(b"\x00")
        digest.update(element.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: int, *path: str) -> random.Random:
    """Return an independent :class:`random.Random` for ``(seed, path)``."""
    return random.Random(derive_seed(seed, *path))


def split_rng(rng: random.Random, *path: str) -> random.Random:
    """Split an independent child stream off an existing generator.

    Draws 64 bits from ``rng`` — advancing the parent by exactly one draw
    regardless of ``path`` — and hashes them together with ``path``, so two
    splits at the same parent state but with different paths yield
    uncorrelated streams.  This is the one sanctioned way to fork a stream
    mid-flight; ad-hoc ``random.Random(rng.getrandbits(64))`` re-seeding is
    rejected by ``repro lint`` (rule REP002).
    """
    return derive_rng(rng.getrandbits(64), *path)
