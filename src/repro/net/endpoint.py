"""Service endpoints and connection outcomes.

A :class:`Host` is anything reachable through the simulated Tor transport —
in this study, the machine behind a hidden service.  It exposes
:class:`ServiceEndpoint` objects on ports; connecting to a port yields a
:class:`ConnectResult` whose outcome mirrors what the paper's scanner could
observe over Tor:

* ``OPEN`` — TCP connect succeeded (optionally with a banner).
* ``REFUSED`` — the usual connection-refused error relayed by Tor.
* ``TIMEOUT`` — the persistent timeout errors the paper mentions.
* ``ABNORMAL_ERROR`` — the distinct error the Skynet malware produces on
  port 55080: the bot accepts then immediately closes the connection unless
  configured as a forwarder, which surfaces to the scanner as an error
  message *different from the usual one* (Section III).  The paper counts
  these as open ports.
* ``UNREACHABLE`` — no descriptor / service offline; no per-port signal.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.errors import NetworkError
from repro.sim.clock import Timestamp


class ConnectOutcome(enum.Enum):
    """What a connection attempt to ``onion:port`` observed."""

    OPEN = "open"
    REFUSED = "refused"
    TIMEOUT = "timeout"
    ABNORMAL_ERROR = "abnormal-error"
    UNREACHABLE = "unreachable"

    @property
    def counts_as_open(self) -> bool:
        """Whether the paper's scanner tallies this outcome as an open port.

        The Skynet abnormal error is counted as open (Section III: "counted
        such events as open ports").
        """
        return self in (ConnectOutcome.OPEN, ConnectOutcome.ABNORMAL_ERROR)


@dataclass
class ConnectResult:
    """Outcome of one connection attempt.

    ``truncated`` marks an OPEN connection whose conversation died partway
    through (the circuit collapsed mid-transfer): the port still counts as
    open to a SYN scan, but no complete application-layer exchange happened.
    ``latency`` is the extra simulated seconds the circuit took beyond the
    nominal build time; retry deadlines account for it.
    """

    outcome: ConnectOutcome
    port: int
    banner: str = ""
    error_message: str = ""
    endpoint: Optional["ServiceEndpoint"] = None
    truncated: bool = False
    latency: Timestamp = 0

    @property
    def ok(self) -> bool:
        """True when an application-layer conversation is possible."""
        return self.outcome is ConnectOutcome.OPEN and not self.truncated


@dataclass
class ServiceEndpoint:
    """A listening service on one port of a host.

    ``application`` is an optional duck-typed application-layer handler (the
    population's web servers attach objects with a ``handle_request`` method
    and, for HTTPS, a ``certificate`` attribute).
    """

    port: int
    protocol: str = "tcp"
    banner: str = ""
    abnormal_error: bool = False
    timeout_probability: float = 0.0
    application: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0 < self.port <= 65535:
            raise NetworkError(f"port out of range: {self.port}")
        if not 0.0 <= self.timeout_probability <= 1.0:
            raise NetworkError(
                f"timeout probability out of range: {self.timeout_probability}"
            )

    def connect(self, rng: random.Random) -> ConnectResult:
        """Attempt a TCP-level connection to this endpoint."""
        if self.abnormal_error:
            return ConnectResult(
                outcome=ConnectOutcome.ABNORMAL_ERROR,
                port=self.port,
                error_message="connection closed unexpectedly (code 0xF1)",
                endpoint=self,
            )
        if self.timeout_probability and rng.random() < self.timeout_probability:
            return ConnectResult(
                outcome=ConnectOutcome.TIMEOUT,
                port=self.port,
                error_message="connection timed out",
                endpoint=self,
            )
        return ConnectResult(
            outcome=ConnectOutcome.OPEN,
            port=self.port,
            banner=self.banner,
            endpoint=self,
        )


@runtime_checkable
class Host(Protocol):
    """Anything the transport can connect to."""

    def is_online(self, now: Timestamp) -> bool:
        """Whether the host answers at all at ``now``."""
        ...

    def endpoint_on(self, port: int) -> Optional[ServiceEndpoint]:
        """The endpoint listening on ``port``, or None when closed."""
        ...


@dataclass
class SimpleHost:
    """A concrete :class:`Host` with a fixed endpoint table and uptime window.

    ``online_from``/``online_until`` bound the host's lifetime; churn between
    the paper's harvest (4 Feb), scans (14–21 Feb) and crawl (~April) is
    expressed by hosts whose windows end between those dates.  ``down_days``
    lists whole days (day numbers since the epoch) on which the host is
    temporarily offline — the short-term churn that cost the paper's scan
    13% of its port coverage.
    """

    endpoints: Dict[int, ServiceEndpoint] = field(default_factory=dict)
    online_from: Timestamp = 0
    online_until: Optional[Timestamp] = None
    down_days: frozenset = frozenset()

    def add_endpoint(self, endpoint: ServiceEndpoint) -> None:
        """Register a listening service; one endpoint per port."""
        if endpoint.port in self.endpoints:
            raise NetworkError(f"port {endpoint.port} already bound")
        self.endpoints[endpoint.port] = endpoint

    def is_online(self, now: Timestamp) -> bool:
        if now < self.online_from:
            return False
        if self.online_until is not None and now >= self.online_until:
            return False
        if self.down_days and (int(now) // 86_400) in self.down_days:
            return False
        return True

    def endpoint_on(self, port: int) -> Optional[ServiceEndpoint]:
        return self.endpoints.get(port)

    @property
    def open_ports(self) -> List[int]:
        """Sorted list of ports with listening services."""
        return sorted(self.endpoints)
