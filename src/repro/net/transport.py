"""Simulated Tor transport.

The paper's scanner and crawler reach hidden services "over Tor": resolve the
onion address to a descriptor, build a rendezvous circuit, then speak TCP.
The simulated transport collapses the circuit mechanics into the observable
outcomes — descriptor availability, host liveness, per-port behaviour, and
the occasional circuit-level timeout — which is all the measurement pipeline
ever sees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Collection, Dict, Optional

from repro.crypto.onion import OnionAddress, is_valid_onion
from repro.errors import NetworkError
from repro.net.endpoint import ConnectOutcome, ConnectResult, Host
from repro.obs.scope import Observer, ensure_observer
from repro.sim.clock import Timestamp


@dataclass
class OnionRegistry:
    """Maps onion addresses to the hosts behind them.

    This registry is *simulator ground truth*: no measurement component may
    iterate it to discover addresses (that would bypass the harvesting
    attack).  The transport only performs point lookups for addresses the
    caller already knows.
    """

    _hosts: Dict[OnionAddress, Host] = field(default_factory=dict)

    def register(self, onion: OnionAddress, host: Host) -> None:
        """Bind ``onion`` to ``host``."""
        if not is_valid_onion(onion):
            raise NetworkError(f"invalid onion address: {onion!r}")
        if onion in self._hosts:
            raise NetworkError(f"onion already registered: {onion}")
        self._hosts[onion] = host

    def lookup(self, onion: OnionAddress) -> Optional[Host]:
        """The host behind ``onion``, or None if it never existed."""
        return self._hosts.get(onion)

    def __len__(self) -> int:
        return len(self._hosts)

    def __contains__(self, onion: OnionAddress) -> bool:
        return onion in self._hosts


class TorTransport:
    """Connects to ``onion:port`` with the outcomes a Tor client would see.

    Args:
        registry: onion → host ground truth.
        rng: seeded stream for circuit-level noise.
        descriptor_available: optional predicate ``(onion, now) -> bool``;
            when provided, a missing descriptor makes the service
            unreachable regardless of host state (this is how the scanner
            experienced the 39,824 → 24,511 shrinkage between harvest and
            scan).
        circuit_timeout_probability: chance any attempt dies to a circuit
            timeout before reaching the host.
        observer: optional :class:`~repro.obs.scope.Observer` that counts
            every probe issued and its outcome (no-op when omitted).
    """

    def __init__(
        self,
        registry: OnionRegistry,
        rng: random.Random,
        descriptor_available: Optional[Callable[[OnionAddress, Timestamp], bool]] = None,
        circuit_timeout_probability: float = 0.0,
        observer: Optional[Observer] = None,
    ) -> None:
        if not 0.0 <= circuit_timeout_probability <= 1.0:
            raise NetworkError(
                f"circuit timeout probability out of range: {circuit_timeout_probability}"
            )
        self._registry = registry
        self._rng = rng
        self._descriptor_available = descriptor_available
        self._circuit_timeout_probability = circuit_timeout_probability
        self._observer = ensure_observer(observer)
        self.attempts = 0

    def stream_state(self) -> Dict[str, object]:
        """JSON-compatible snapshot of the transport's mutable stream state.

        The circuit-noise RNG and attempt counter evolve as stages consume
        the transport; checkpoint/resume (:mod:`repro.store`) captures this
        before a stage and restores the stored post-stage snapshot on a
        cache hit, so skipping a stage leaves the stream exactly where
        running it would have.
        """
        version, internal, gauss = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss],
            "attempts": self.attempts,
        }

    def restore_stream_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`stream_state`."""
        version, internal, gauss = state["rng"]  # type: ignore[misc]
        self._rng.setstate((version, tuple(internal), gauss))
        self.attempts = int(state["attempts"])  # type: ignore[arg-type]

    def has_descriptor(self, onion: OnionAddress, now: Timestamp) -> bool:
        """Whether a descriptor for ``onion`` is currently fetchable.

        True when no descriptor predicate is configured (direct-host test
        setups).  The scanner uses this to count how many harvested onions
        still exist at scan time (the paper's 39,824 → 24,511 shrinkage).
        """
        if self._descriptor_available is None:
            return True
        return self._descriptor_available(onion, now)

    def connect(self, onion: OnionAddress, port: int, now: Timestamp) -> ConnectResult:
        """Attempt a connection to ``onion:port`` at simulated time ``now``."""
        result = self._connect(onion, port, now)
        self._observer.count("transport_probes_total", api="connect")
        self._observer.count(
            "transport_outcomes_total", outcome=result.outcome.value
        )
        return result

    def _connect(self, onion: OnionAddress, port: int, now: Timestamp) -> ConnectResult:
        self.attempts += 1
        if self._descriptor_available is not None and not self._descriptor_available(
            onion, now
        ):
            return ConnectResult(
                outcome=ConnectOutcome.UNREACHABLE,
                port=port,
                error_message="no descriptor found",
            )
        host = self._registry.lookup(onion)
        if host is None or not host.is_online(now):
            return ConnectResult(
                outcome=ConnectOutcome.UNREACHABLE,
                port=port,
                error_message="service unreachable",
            )
        if (
            self._circuit_timeout_probability
            and self._rng.random() < self._circuit_timeout_probability
        ):
            return ConnectResult(
                outcome=ConnectOutcome.TIMEOUT,
                port=port,
                error_message="circuit build timeout",
            )
        endpoint = host.endpoint_on(port)
        if endpoint is None:
            return ConnectResult(
                outcome=ConnectOutcome.REFUSED,
                port=port,
                error_message="connection refused",
            )
        return endpoint.connect(self._rng)

    def scan_ports(
        self, onion: OnionAddress, ports: Collection[int], now: Timestamp
    ) -> Dict[int, ConnectResult]:
        """Batch-scan ``ports`` on ``onion``; returns the *non-refused* ones.

        Observationally equivalent to calling :meth:`connect` on every port
        and discarding REFUSED results, but runs in O(open ports) instead of
        O(len(ports)) — a full 65,535-port sweep over tens of thousands of
        onions is infeasible one synchronous connect at a time, which is why
        real scanners (and this simulated one) batch SYNs.

        Reachability (descriptor availability, host liveness, circuit
        timeouts) is evaluated *per port probe*, matching a real scan where
        each probe rides its own circuit: if the whole host is unreachable,
        an empty dict is returned — indistinguishable from all-closed, which
        is exactly the ambiguity the paper's scanner faced.
        """
        if self._descriptor_available is not None and not self._descriptor_available(
            onion, now
        ):
            return {}
        host = self._registry.lookup(onion)
        if host is None or not host.is_online(now):
            return {}
        results: Dict[int, ConnectResult] = {}
        port_set = ports if isinstance(ports, (set, frozenset, range)) else set(ports)
        for port, endpoint in host.endpoints.items():
            if port not in port_set:
                continue
            self.attempts += 1
            self._observer.count("transport_probes_total", api="scan")
            if (
                self._circuit_timeout_probability
                and self._rng.random() < self._circuit_timeout_probability
            ):
                results[port] = ConnectResult(
                    outcome=ConnectOutcome.TIMEOUT,
                    port=port,
                    error_message="circuit build timeout",
                )
                continue
            results[port] = endpoint.connect(self._rng)
        for port in sorted(results):
            self._observer.count(
                "transport_outcomes_total", outcome=results[port].outcome.value
            )
        return results
