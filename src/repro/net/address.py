"""IPv4 addresses for the simulated network.

Addresses are plain 32-bit integers (``IPv4``) with string helpers.  An
:class:`AddressPool` hands out unique addresses deterministically; the
2-relays-per-IP consensus rule and the attacker's "rent n IP addresses"
step both operate on these.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.errors import AddressExhaustedError, NetworkError

IPv4 = int


def ip_to_str(ip: IPv4) -> str:
    """Render a 32-bit address as dotted-quad text.

    >>> ip_to_str(0xC0A80001)
    '192.168.0.1'
    """
    if not 0 <= ip <= 0xFFFFFFFF:
        raise NetworkError(f"not a 32-bit address: {ip}")
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def str_to_ip(text: str) -> IPv4:
    """Parse dotted-quad text into a 32-bit address.

    >>> ip_to_str(str_to_ip("192.168.0.1"))
    '192.168.0.1'
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise NetworkError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise NetworkError(f"not a dotted quad: {text!r}") from exc
        if not 0 <= octet <= 255:
            raise NetworkError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


class AddressPool:
    """Deterministic allocator of unique public IPv4 addresses.

    Draws uniformly from the unicast range, skipping private/reserved
    prefixes, and never returns the same address twice.
    """

    _RESERVED_FIRST_OCTETS = {0, 10, 127, 169, 172, 192, 224, 240, 255}

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._allocated: Set[IPv4] = set()

    @property
    def allocated_count(self) -> int:
        """How many addresses have been handed out."""
        return len(self._allocated)

    def allocate(self) -> IPv4:
        """Return a fresh public address."""
        for _ in range(10_000):
            candidate = self._rng.getrandbits(32)
            if (candidate >> 24) in self._RESERVED_FIRST_OCTETS:
                continue
            if candidate in self._allocated:
                continue
            self._allocated.add(candidate)
            return candidate
        raise AddressExhaustedError("address pool exhausted")

    def allocate_many(self, count: int) -> List[IPv4]:
        """Allocate ``count`` distinct addresses."""
        if count < 0:
            raise NetworkError(f"negative count: {count}")
        return [self.allocate() for _ in range(count)]
