"""Simulated network substrate.

Provides IPv4 address allocation, service endpoints with connection
behaviours (open / refused / timeout / the Skynet abnormal error), a
simulated Tor transport that the scanner and crawler drive, and a synthetic
GeoIP database for the client-deanonymisation geography (Fig 3).
"""

from repro.net.address import IPv4, AddressPool, ip_to_str, str_to_ip
from repro.net.endpoint import (
    ConnectOutcome,
    ConnectResult,
    ServiceEndpoint,
    Host,
    SimpleHost,
)
from repro.net.transport import TorTransport, OnionRegistry
from repro.net.geoip import GeoIP, COUNTRY_WEIGHTS

__all__ = [
    "IPv4",
    "AddressPool",
    "ip_to_str",
    "str_to_ip",
    "ConnectOutcome",
    "ConnectResult",
    "ServiceEndpoint",
    "Host",
    "SimpleHost",
    "TorTransport",
    "OnionRegistry",
    "GeoIP",
    "COUNTRY_WEIGHTS",
]
