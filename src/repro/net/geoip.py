"""Synthetic GeoIP database.

Fig 3 of the paper maps the geographic locations of deanonymised clients of
a Goldnet hidden service.  Offline we cannot ship MaxMind data, so this
module provides a deterministic synthetic equivalent: the public IPv4 space
is partitioned into /8 blocks assigned to countries with weights resembling
the Tor client population of 2013 (heavy in the US, Germany, Russia, France,
Italy, …), and lookups invert that mapping.

The deanonymisation experiment allocates client IPs *through* this database
(``random_ip``), then the analysis resolves them back with ``lookup`` — the
aggregation code is identical to what a real GeoIP-backed pipeline runs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.errors import NetworkError
from repro.net.address import IPv4
from repro.sim.rng import derive_rng

# Country → relative weight among Tor clients (shape of the 2013 Tor metrics
# directly-connecting-user statistics; exact values are not load-bearing).
COUNTRY_WEIGHTS: Dict[str, float] = {
    "US": 17.0,
    "DE": 9.0,
    "RU": 8.0,
    "FR": 6.5,
    "IT": 6.0,
    "GB": 5.0,
    "ES": 4.0,
    "BR": 3.5,
    "PL": 3.0,
    "NL": 2.5,
    "JP": 2.5,
    "SE": 2.0,
    "CA": 2.0,
    "UA": 1.8,
    "IN": 1.8,
    "AU": 1.5,
    "IR": 1.5,
    "CZ": 1.2,
    "AT": 1.0,
    "CH": 1.0,
    "TR": 1.0,
    "AR": 0.9,
    "MX": 0.9,
    "KR": 0.8,
    "CN": 0.8,
    "FI": 0.7,
    "NO": 0.7,
    "BE": 0.7,
    "PT": 0.6,
    "GR": 0.6,
    "RO": 0.6,
    "HU": 0.5,
    "DK": 0.5,
    "IL": 0.5,
    "ZA": 0.4,
    "EG": 0.3,
    "ID": 0.3,
    "TH": 0.3,
    "VN": 0.2,
    "NG": 0.2,
}

_UNICAST_FIRST_OCTETS: Tuple[int, ...] = tuple(
    octet
    for octet in range(1, 224)
    if octet not in (10, 127, 169, 172, 192)
)


class GeoIP:
    """Deterministic /8 → country map with weighted IP generation."""

    def __init__(
        self,
        seed: int = 0,
        weights: Dict[str, float] | None = None,
    ) -> None:
        weights = dict(weights if weights is not None else COUNTRY_WEIGHTS)
        if not weights:
            raise NetworkError("GeoIP needs at least one country")
        if any(w <= 0 for w in weights.values()):
            raise NetworkError("country weights must be positive")
        self._countries: List[str] = sorted(weights)
        self._weights = weights
        rng = derive_rng(seed, "net", "geoip")
        blocks = list(_UNICAST_FIRST_OCTETS)
        rng.shuffle(blocks)
        if len(self._countries) > len(blocks):
            raise NetworkError(
                f"{len(self._countries)} countries cannot each get a /8: "
                f"only {len(blocks)} unicast blocks exist"
            )
        # Assign /8 blocks proportionally to weight, at least one block each.
        # Reserve the one guaranteed block per country FIRST, then hand out
        # the remainder by floored proportional quota plus largest fractional
        # remainder (ties broken alphabetically).  Rounding each country's
        # share independently — as a naive max(1, round(...)) loop does —
        # over-allocates to early alphabetical countries and can exhaust the
        # block cursor, leaving later countries with zero /8 blocks.
        total = sum(weights.values())
        remainder = len(blocks) - len(self._countries)
        quotas: Dict[str, int] = {}
        fractions: List[Tuple[float, str]] = []
        assigned = 0
        for country in self._countries:
            exact = remainder * weights[country] / total
            quotas[country] = int(exact)
            assigned += quotas[country]
            fractions.append((-(exact - quotas[country]), country))
        fractions.sort()
        for _, country in fractions[: remainder - assigned]:
            quotas[country] += 1
        self._block_to_country: Dict[int, str] = {}
        self._country_to_blocks: Dict[str, List[int]] = {c: [] for c in self._countries}
        cursor = 0
        for country in self._countries:
            for _ in range(1 + quotas[country]):
                block = blocks[cursor]
                cursor += 1
                self._block_to_country[block] = country
                self._country_to_blocks[country].append(block)

    @property
    def countries(self) -> List[str]:
        """All country codes in the database."""
        return list(self._countries)

    def lookup(self, ip: IPv4) -> str:
        """Country code for ``ip``; ``"??"`` for unassigned space."""
        if not 0 <= ip <= 0xFFFFFFFF:
            raise NetworkError(f"not a 32-bit address: {ip}")
        return self._block_to_country.get(ip >> 24, "??")

    def random_ip(self, rng: random.Random, country: str | None = None) -> IPv4:
        """A random address, optionally constrained to ``country``."""
        if country is None:
            country = self.random_country(rng)
        blocks = self._country_to_blocks.get(country)
        if not blocks:
            raise NetworkError(f"unknown country: {country!r}")
        block = rng.choice(blocks)
        return (block << 24) | rng.getrandbits(24)

    def random_country(self, rng: random.Random) -> str:
        """Draw a country according to the configured weights."""
        choices = self._countries
        weights: Sequence[float] = [self._weights[c] for c in choices]
        return rng.choices(choices, weights=weights, k=1)[0]
