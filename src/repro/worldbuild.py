"""Standard world construction shared by experiments, examples and tests.

Every experiment needs the same scaffolding — an honest relay population
with seasoned uptimes and realistic bandwidths, an address pool, a network
facade — before the interesting part starts.  One builder keeps those
choices consistent (and centrally documented) across the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.keys import KeyPair
from repro.dirauth.authority import DirectoryAuthoritySet
from repro.errors import ConfigError
from repro.net.address import AddressPool
from repro.relay.relay import Relay
from repro.sim.clock import DAY, SimClock, Timestamp
from repro.sim.rng import derive_rng
from repro.tornet import TorNetwork


@dataclass(frozen=True)
class HonestNetworkSpec:
    """Parameters of the honest relay population.

    Defaults approximate the early-2013 network the paper measured:
    bandwidths spread over an order of magnitude, relays between days and
    years old (so most carry HSDir/Stable, a bandwidth-dependent subset
    Guard).
    """

    relay_count: int = 1_450
    min_bandwidth: int = 100
    max_bandwidth: int = 5_000
    min_age_days: int = 5
    max_age_days: int = 500
    or_port: int = 9001


@dataclass(frozen=True)
class EpochWorld:
    """The deterministic identity of one service epoch's simulated world.

    The service plane (``repro.service``) advances the world between epochs
    by deriving a fresh population seed from the base seed and the epoch
    index; epoch 0 keeps the base seed so the first service epoch is
    byte-identical to the equivalent one-shot batch run.
    """

    epoch: int
    seed: int
    scale: float


def advance_epoch(base_seed: int, scale: float, epoch: int) -> EpochWorld:
    """Derive the world identity for ``epoch`` from the base seed.

    Epoch 0 reuses ``base_seed`` verbatim; later epochs draw a fresh seed
    from the lineage-tracked RNG tree so each epoch's population evolves
    deterministically and independently of how many epochs ran before it.
    """
    if epoch < 0:
        raise ConfigError(f"epoch must be >= 0, got {epoch}")
    if epoch == 0:
        seed = base_seed
    else:
        seed = derive_rng(base_seed, "service", "epoch", str(epoch)).randrange(
            2**31
        )
    return EpochWorld(epoch=epoch, seed=seed, scale=scale)


def build_honest_network(
    seed: int,
    start: Timestamp,
    spec: Optional[HonestNetworkSpec] = None,
    keep_archive: bool = False,
    authority: Optional[DirectoryAuthoritySet] = None,
    rng_label: str = "honest-network",
) -> Tuple[TorNetwork, AddressPool]:
    """Stand up a network of seasoned honest relays with a live consensus.

    Returns the facade plus the address pool (attacks rent their IPs from
    the same pool so addresses never collide).
    """
    if spec is None:
        spec = HonestNetworkSpec()
    rng = derive_rng(seed, rng_label, "relays")
    pool = AddressPool(derive_rng(seed, rng_label, "ips"))
    network = TorNetwork(
        clock=SimClock(start), keep_archive=keep_archive, authority=authority
    )
    for index in range(spec.relay_count):
        network.add_relay(
            Relay(
                nickname=f"relay{index:05d}",
                ip=pool.allocate(),
                or_port=spec.or_port,
                keypair=KeyPair.generate(rng),
                bandwidth=rng.randint(spec.min_bandwidth, spec.max_bandwidth),
                started_at=start
                - rng.randint(spec.min_age_days, spec.max_age_days) * DAY,
            )
        )
    network.rebuild_consensus(start)
    return network, pool
