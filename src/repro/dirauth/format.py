"""Consensus document text format (dir-spec flavoured).

Real Tor consensuses are line-oriented documents ("r" router lines, "s"
flag lines, "w" bandwidth lines).  The Section VII analysis runs off
*archived* consensus history, so a faithful reproduction needs the archive
to survive a round trip through a textual interchange format — both for
persisting simulated histories and for eyeballing them.

The format here mirrors the real one's shape::

    network-status-version 3 repro
    valid-after 2013-02-04 00:00:00
    r <nickname> <fingerprint-hex> <ip> <orport> <bandwidth>
    s <Flag> <Flag> ...
    directory-footer

One ``r``+``s`` pair per relay, sorted by fingerprint as in real documents.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.dirauth.archive import ConsensusArchive
from repro.dirauth.consensus import Consensus, ConsensusEntry
from repro.errors import ConsensusError
from repro.net.address import ip_to_str, str_to_ip
from repro.relay.flags import RelayFlags
from repro.sim.clock import format_date, parse_date

_HEADER = "network-status-version 3 repro"
_FOOTER = "directory-footer"

_FLAG_BY_NAME = {
    "Running": RelayFlags.RUNNING,
    "Valid": RelayFlags.VALID,
    "Fast": RelayFlags.FAST,
    "Stable": RelayFlags.STABLE,
    "Guard": RelayFlags.GUARD,
    "HSDir": RelayFlags.HSDIR,
    "Exit": RelayFlags.EXIT,
    "Authority": RelayFlags.AUTHORITY,
}


def format_consensus(consensus: Consensus) -> str:
    """Render one consensus as text."""
    lines: List[str] = [
        _HEADER,
        f"valid-after {format_date(consensus.valid_after, with_time=True)}",
    ]
    for entry in consensus.entries:
        lines.append(
            "r {nick} {fp} {ip} {port} {bw}".format(
                nick=entry.nickname or "Unnamed",
                fp=entry.fingerprint.hex().upper(),
                ip=ip_to_str(entry.ip),
                port=entry.or_port,
                bw=entry.bandwidth,
            )
        )
        lines.append("s " + " ".join(entry.flags.names()))
    lines.append(_FOOTER)
    return "\n".join(lines) + "\n"


def parse_consensus(text: str) -> Consensus:
    """Parse :func:`format_consensus` output back into a document."""
    lines = [line.rstrip("\n") for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != _HEADER:
        raise ConsensusError("missing or unknown network-status header")
    if lines[-1] != _FOOTER:
        raise ConsensusError("missing directory-footer")
    if not lines[1].startswith("valid-after "):
        raise ConsensusError("missing valid-after line")
    valid_after = parse_date(lines[1][len("valid-after "):])

    entries: List[ConsensusEntry] = []
    index = 2
    while index < len(lines) - 1:
        router_line = lines[index]
        if not router_line.startswith("r "):
            raise ConsensusError(f"expected router line, got: {router_line!r}")
        parts = router_line.split()
        if len(parts) != 6:
            raise ConsensusError(f"malformed router line: {router_line!r}")
        _, nickname, fp_hex, ip_text, port_text, bw_text = parts
        if index + 1 >= len(lines) - 1 + 1 or not lines[index + 1].startswith("s"):
            raise ConsensusError(f"router {nickname} has no flag line")
        flags = RelayFlags.NONE
        for name in lines[index + 1][1:].split():
            try:
                flags |= _FLAG_BY_NAME[name]
            except KeyError as exc:
                raise ConsensusError(f"unknown flag {name!r}") from exc
        try:
            fingerprint = bytes.fromhex(fp_hex)
        except ValueError as exc:
            raise ConsensusError(f"bad fingerprint {fp_hex!r}") from exc
        if len(fingerprint) != 20:
            raise ConsensusError(f"fingerprint wrong length: {fp_hex!r}")
        entries.append(
            ConsensusEntry(
                fingerprint=fingerprint,
                nickname=nickname,
                ip=str_to_ip(ip_text),
                or_port=int(port_text),
                bandwidth=int(bw_text),
                flags=flags,
            )
        )
        index += 2
    return Consensus(valid_after=valid_after, entries=tuple(entries))


def format_archive(archive: ConsensusArchive) -> str:
    """Render a whole archive (documents separated by blank lines)."""
    return "\n".join(format_consensus(consensus) for consensus in archive)


def parse_archive(text: str) -> ConsensusArchive:
    """Parse :func:`format_archive` output."""
    archive = ConsensusArchive()
    chunk: List[str] = []
    for line in text.splitlines():
        chunk.append(line)
        if line.strip() == _FOOTER:
            archive.append(parse_consensus("\n".join(chunk)))
            chunk = []
    if any(line.strip() for line in chunk):
        raise ConsensusError("trailing garbage after last directory-footer")
    return archive


def archive_from_consensuses(consensuses: Iterable[Consensus]) -> ConsensusArchive:
    """Build an archive from loose documents (must be time-ordered)."""
    archive = ConsensusArchive()
    for consensus in consensuses:
        archive.append(consensus)
    return archive
