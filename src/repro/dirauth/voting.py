"""Flag-assignment policy.

Real Tor authorities vote and take a majority; the study only depends on the
*effective* thresholds, so the policy is expressed directly.  The decisive
rule for this paper is HSDir: "a Tor relay needs to be operational for at
least 25 hours to obtain this flag" — and crucially the uptime is accrued by
*all monitored relays*, consensus-listed or not, which is the flaw the
harvesting attack exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relay.flags import RelayFlags
from repro.relay.relay import Relay
from repro.sim.clock import DAY, HOUR, Timestamp


@dataclass(frozen=True)
class FlagPolicy:
    """Thresholds for assigning router flags.

    Attributes:
        hsdir_min_uptime: continuous uptime needed for HSDir (25 h in the
            2013 network the paper measured).
        guard_min_uptime: uptime needed for Guard.
        guard_min_bandwidth: measured bandwidth needed for Guard (kB/s).
        stable_min_uptime: uptime needed for Stable.
        fast_min_bandwidth: bandwidth needed for Fast (kB/s).
    """

    hsdir_min_uptime: int = 25 * HOUR
    guard_min_uptime: int = 8 * DAY
    guard_min_bandwidth: int = 250
    stable_min_uptime: int = 5 * DAY
    fast_min_bandwidth: int = 100

    def flags_for(self, relay: Relay, now: Timestamp) -> RelayFlags:
        """Flags a relay earns at ``now`` from its uptime and bandwidth."""
        if not relay.reachable:
            return RelayFlags.NONE
        flags = RelayFlags.RUNNING | RelayFlags.VALID
        uptime = relay.uptime(now)
        if relay.bandwidth >= self.fast_min_bandwidth:
            flags |= RelayFlags.FAST
        if uptime >= self.stable_min_uptime:
            flags |= RelayFlags.STABLE
        if uptime >= self.hsdir_min_uptime:
            flags |= RelayFlags.HSDIR
        if (
            uptime >= self.guard_min_uptime
            and relay.bandwidth >= self.guard_min_bandwidth
        ):
            flags |= RelayFlags.GUARD
        return flags
