"""Flag-assignment policy.

Real Tor authorities vote and take a majority; the study only depends on the
*effective* thresholds, so the policy is expressed directly.  The decisive
rule for this paper is HSDir: "a Tor relay needs to be operational for at
least 25 hours to obtain this flag" — and crucially the uptime is accrued by
*all monitored relays*, consensus-listed or not, which is the flaw the
harvesting attack exploits.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.relay.flags import RelayFlags
from repro.relay.relay import Relay
from repro.sim.clock import DAY, HOUR, Timestamp

# Flag assignment runs once per relay per consensus — hundreds of thousands
# of times in an archive build — and IntFlag's operators construct a new
# enum member per ``|``.  The policy therefore works on plain int masks and
# converts once at the end, through a cache over the handful of masks that
# actually occur.
_RUNNING_VALID = RelayFlags.RUNNING.value | RelayFlags.VALID.value
_FAST = RelayFlags.FAST.value
_STABLE = RelayFlags.STABLE.value
_HSDIR = RelayFlags.HSDIR.value
_GUARD = RelayFlags.GUARD.value


@functools.lru_cache(maxsize=None)
def _flags_from_mask(mask: int) -> RelayFlags:
    return RelayFlags(mask)


@dataclass(frozen=True)
class FlagPolicy:
    """Thresholds for assigning router flags.

    Attributes:
        hsdir_min_uptime: continuous uptime needed for HSDir (25 h in the
            2013 network the paper measured).
        guard_min_uptime: uptime needed for Guard.
        guard_min_bandwidth: measured bandwidth needed for Guard (kB/s).
        stable_min_uptime: uptime needed for Stable.
        fast_min_bandwidth: bandwidth needed for Fast (kB/s).
    """

    hsdir_min_uptime: int = 25 * HOUR
    guard_min_uptime: int = 8 * DAY
    guard_min_bandwidth: int = 250
    stable_min_uptime: int = 5 * DAY
    fast_min_bandwidth: int = 100

    def flags_for(self, relay: Relay, now: Timestamp) -> RelayFlags:
        """Flags a relay earns at ``now`` from its uptime and bandwidth."""
        if not relay.reachable:
            return RelayFlags.NONE
        mask = _RUNNING_VALID
        uptime = relay.uptime(now)
        if relay.bandwidth >= self.fast_min_bandwidth:
            mask |= _FAST
        if uptime >= self.stable_min_uptime:
            mask |= _STABLE
        if uptime >= self.hsdir_min_uptime:
            mask |= _HSDIR
        if (
            uptime >= self.guard_min_uptime
            and relay.bandwidth >= self.guard_min_bandwidth
        ):
            mask |= _GUARD
        return _flags_from_mask(mask)
