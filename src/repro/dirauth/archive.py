"""Consensus history archive.

Section VII analyses roughly three years of consensus history to find relays
that positioned themselves as Silk Road's responsible HSDirs.  The archive
stores snapshots in time order and answers the queries the analyzer needs:
the consensus in force at a time, the first appearance of a fingerprint, and
iteration over descriptor time periods.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.crypto.keys import Fingerprint
from repro.dirauth.consensus import Consensus
from repro.errors import ConsensusError
from repro.sim.clock import Timestamp


class ConsensusArchive:
    """An append-only, time-ordered collection of consensuses."""

    def __init__(self) -> None:
        self._consensuses: List[Consensus] = []
        self._times: List[Timestamp] = []
        self._first_seen: Dict[Fingerprint, Timestamp] = {}

    def append(self, consensus: Consensus) -> None:
        """Add a consensus; must be strictly newer than the last one."""
        if self._times and consensus.valid_after <= self._times[-1]:
            raise ConsensusError(
                f"consensus at {consensus.valid_after} not newer than "
                f"archive tail {self._times[-1]}"
            )
        self._consensuses.append(consensus)
        self._times.append(consensus.valid_after)
        for entry in consensus.entries:
            self._first_seen.setdefault(entry.fingerprint, consensus.valid_after)

    def __len__(self) -> int:
        return len(self._consensuses)

    def __iter__(self) -> Iterator[Consensus]:
        return iter(self._consensuses)

    @property
    def span(self) -> Tuple[Timestamp, Timestamp]:
        """(first, last) valid_after times in the archive."""
        if not self._times:
            raise ConsensusError("archive is empty")
        return self._times[0], self._times[-1]

    def at(self, ts: Timestamp) -> Optional[Consensus]:
        """The consensus in force at ``ts`` (latest with valid_after <= ts)."""
        index = bisect.bisect_right(self._times, int(ts)) - 1
        if index < 0:
            return None
        return self._consensuses[index]

    def between(self, start: Timestamp, end: Timestamp) -> List[Consensus]:
        """All consensuses with ``start <= valid_after <= end``."""
        lo = bisect.bisect_left(self._times, int(start))
        hi = bisect.bisect_right(self._times, int(end))
        return self._consensuses[lo:hi]

    def first_seen(self, fingerprint: Fingerprint) -> Optional[Timestamp]:
        """When ``fingerprint`` first appeared in any archived consensus."""
        return self._first_seen.get(fingerprint)
