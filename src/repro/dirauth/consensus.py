"""Consensus documents.

A consensus is the authorities' hourly snapshot of admitted relays with
their flags.  Two properties drive the study:

* **Two relays per IP** — when more than two relays advertise from one IP,
  only the two with the highest measured bandwidth are listed.  This is the
  anti-Sybil measure the shadow-relay attack circumvents.
* The set of entries carrying ``HSDir`` defines the fingerprint ring on
  which hidden-service descriptors are placed for that period.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.crypto.keys import Fingerprint
from repro.crypto.ring import FingerprintRing
from repro.errors import ConsensusError
from repro.net.address import IPv4
from repro.relay.flags import RelayFlags, flags_overlap
from repro.sim.clock import Timestamp

MAX_RELAYS_PER_IP = 2


class ConsensusEntry(NamedTuple):
    """One router-status line.

    A NamedTuple rather than a dataclass: the tracking-detection experiment
    retains years of history (thousands of snapshots × hundreds of relays),
    so entries are kept as small as practical.
    """

    fingerprint: Fingerprint
    nickname: str
    ip: IPv4
    or_port: int
    bandwidth: int
    flags: RelayFlags

    @property
    def address(self) -> Tuple[IPv4, int]:
        """The (IP, ORPort) pair — stable across fingerprint changes."""
        return (self.ip, self.or_port)

    def has(self, flag: RelayFlags) -> bool:
        """Whether the entry carries ``flag``."""
        return flags_overlap(self.flags, flag)


@dataclass
class Consensus:
    """An immutable snapshot of the network at ``valid_after``."""

    valid_after: Timestamp
    entries: Tuple[ConsensusEntry, ...]
    _by_fingerprint: Dict[Fingerprint, ConsensusEntry] = field(
        init=False, repr=False, default_factory=dict
    )
    _hsdir_ring: Optional[FingerprintRing] = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        by_fp: Dict[Fingerprint, ConsensusEntry] = {}
        for entry in self.entries:
            if entry.fingerprint in by_fp:
                raise ConsensusError(
                    f"duplicate fingerprint in consensus: {entry.fingerprint.hex()}"
                )
            by_fp[entry.fingerprint] = entry
        self._by_fingerprint = by_fp

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ConsensusEntry]:
        return iter(self.entries)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint in self._by_fingerprint

    def entry_for(self, fingerprint: Fingerprint) -> Optional[ConsensusEntry]:
        """The entry with ``fingerprint``, or None."""
        return self._by_fingerprint.get(fingerprint)

    def with_flag(self, flag: RelayFlags) -> List[ConsensusEntry]:
        """All entries carrying ``flag``."""
        return [entry for entry in self.entries if flags_overlap(entry.flags, flag)]

    @property
    def hsdir_ring(self) -> FingerprintRing:
        """The HSDir fingerprint ring implied by this consensus (cached)."""
        if self._hsdir_ring is None:
            self._hsdir_ring = FingerprintRing(
                [
                    e.fingerprint
                    for e in self.entries
                    if flags_overlap(e.flags, RelayFlags.HSDIR)
                ]
            )
        return self._hsdir_ring

    @property
    def hsdir_count(self) -> int:
        """Number of relays with the HSDir flag."""
        return len(self.hsdir_ring)


def apply_per_ip_limit(
    candidates: List[ConsensusEntry], limit: int = MAX_RELAYS_PER_IP
) -> List[ConsensusEntry]:
    """Enforce the per-IP admission rule.

    Groups candidates by IP and keeps the ``limit`` highest-bandwidth relays
    per address (ties broken by fingerprint for determinism), preserving the
    original relative order of the survivors.

    This is the batched consensus-generation kernel: one streaming pass
    keeping a bounded top-``limit`` bucket per IP replaces a dict of per-IP
    lists each materialised, sorted, and re-filtered — which is what
    hourly-sweep workloads (thousands of consensuses over thousands of
    candidates) spend their time on.  Output is element-identical to
    :func:`apply_per_ip_limit_scalar`, the retained reference
    implementation the equivalence tests pin against.
    """
    if limit < 1:
        raise ConsensusError(f"per-IP limit must be positive: {limit}")
    # One pass, keeping at most ``limit`` (-bandwidth, fingerprint, index)
    # keys per IP in a tiny always-sorted bucket: O(n·limit) with bare-tuple
    # C-level comparisons, instead of materialising, fully sorting, and
    # re-filtering every per-IP group the way the scalar reference does.
    best: Dict[IPv4, List[Tuple[int, Fingerprint, int]]] = {}
    for index, entry in enumerate(candidates):
        key = (-entry.bandwidth, entry.fingerprint, index)
        bucket = best.get(entry.ip)
        if bucket is None:
            best[entry.ip] = [key]
        elif len(bucket) < limit or key < bucket[-1]:
            insort(bucket, key)
            if len(bucket) > limit:
                bucket.pop()
    admitted = sorted(
        index for bucket in best.values() for _, _, index in bucket
    )
    return [candidates[index] for index in admitted]


def apply_per_ip_limit_scalar(
    candidates: List[ConsensusEntry], limit: int = MAX_RELAYS_PER_IP
) -> List[ConsensusEntry]:
    """Scalar reference for :func:`apply_per_ip_limit` (the original loop).

    Kept as the byte-equivalence oracle: the batched kernel must produce
    exactly this output for every input, at every worker count.
    """
    if limit < 1:
        raise ConsensusError(f"per-IP limit must be positive: {limit}")
    by_ip: Dict[IPv4, List[ConsensusEntry]] = {}
    for entry in candidates:
        by_ip.setdefault(entry.ip, []).append(entry)
    admitted: set[Fingerprint] = set()
    for ip_entries in by_ip.values():
        ranked = sorted(
            ip_entries, key=lambda e: (-e.bandwidth, e.fingerprint)
        )
        for entry in ranked[:limit]:
            admitted.add(entry.fingerprint)
    return [entry for entry in candidates if entry.fingerprint in admitted]
