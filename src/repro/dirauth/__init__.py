"""Directory authorities: flag voting, consensus building, history archive.

The authorities observe every advertised relay (including *shadow* relays
that never make it into the consensus), accrue uptime, assign flags — HSDir
after 25 hours — and publish consensuses subject to the two-relays-per-IP
rule.  The consensus archive retains history for the Section VII
tracking-detection analysis.
"""

from repro.dirauth.voting import FlagPolicy
from repro.dirauth.consensus import Consensus, ConsensusEntry
from repro.dirauth.authority import DirectoryAuthoritySet
from repro.dirauth.council import AuthorityCouncil, DirectoryAuthority
from repro.dirauth.archive import ConsensusArchive
from repro.dirauth.format import (
    format_consensus,
    parse_consensus,
    format_archive,
    parse_archive,
)

__all__ = [
    "FlagPolicy",
    "Consensus",
    "ConsensusEntry",
    "DirectoryAuthoritySet",
    "AuthorityCouncil",
    "DirectoryAuthority",
    "ConsensusArchive",
    "format_consensus",
    "parse_consensus",
    "format_archive",
    "parse_archive",
]
