"""The directory-authority set.

Modelled as one logical entity (real Tor has nine authorities that vote; the
voting outcome, not the voting, is what the study depends on).  The
authority set:

* tracks every advertised relay — *including* relays that the per-IP rule
  keeps out of the consensus.  Their uptime still accrues, which is the flaw
  ("statistics on them is collected, including the uptime") behind the
  shadow-relay harvest;
* tests reachability each round;
* assigns flags from the :class:`~repro.dirauth.voting.FlagPolicy`;
* applies the two-per-IP admission rule and publishes a
  :class:`~repro.dirauth.consensus.Consensus`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.crypto.keys import Fingerprint
from repro.dirauth.consensus import (
    Consensus,
    ConsensusEntry,
    apply_per_ip_limit,
)
from repro.dirauth.voting import FlagPolicy
from repro.errors import ConsensusError
from repro.relay.flags import RelayFlags, flags_overlap
from repro.relay.relay import Relay
from repro.sim.clock import Timestamp


class DirectoryAuthoritySet:
    """Registers relays and periodically publishes consensuses."""

    def __init__(self, policy: Optional[FlagPolicy] = None) -> None:
        self.policy = policy if policy is not None else FlagPolicy()
        self._relays: Dict[int, Relay] = {}
        self.consensuses_built = 0

    def register(self, relay: Relay) -> None:
        """Start monitoring ``relay``."""
        if relay.relay_id in self._relays:
            raise ConsensusError(f"relay already registered: {relay}")
        self._relays[relay.relay_id] = relay

    def register_all(self, relays: Iterable[Relay]) -> None:
        """Register many relays."""
        for relay in relays:
            self.register(relay)

    def deregister(self, relay: Relay) -> None:
        """Stop monitoring ``relay`` (operator shut it down permanently)."""
        self._relays.pop(relay.relay_id, None)

    @property
    def monitored_relays(self) -> List[Relay]:
        """Every relay the authorities currently track."""
        return list(self._relays.values())

    @property
    def monitored_count(self) -> int:
        """How many relays are tracked (shadow relays included)."""
        return len(self._relays)

    def build_consensus(self, now: Timestamp) -> Consensus:
        """Publish the consensus valid from ``now``.

        Reachable relays are flagged per policy, then the per-IP limit keeps
        the two highest-bandwidth relays per address.  Entries are ordered by
        fingerprint, as in real consensus documents.
        """
        candidates: List[ConsensusEntry] = []
        for relay in self._relays.values():
            if not relay.reachable:
                continue
            flags = self.policy.flags_for(relay, now)
            if not flags_overlap(flags, RelayFlags.RUNNING):
                continue
            candidates.append(
                ConsensusEntry(
                    fingerprint=relay.fingerprint,
                    nickname=relay.nickname,
                    ip=relay.ip,
                    or_port=relay.or_port,
                    bandwidth=relay.bandwidth,
                    flags=flags,
                )
            )
        admitted = apply_per_ip_limit(candidates)
        admitted.sort(key=lambda e: e.fingerprint)
        self.consensuses_built += 1
        return Consensus(valid_after=int(now), entries=tuple(admitted))

    def relay_by_fingerprint(self, fingerprint: Fingerprint) -> Optional[Relay]:
        """Find the monitored relay currently holding ``fingerprint``."""
        for relay in self._relays.values():
            if relay.fingerprint == fingerprint:
                return relay
        return None
