"""Multi-authority voting.

Real Tor consensuses are negotiated by ~9 directory authorities: each
measures relays independently (reachability tests can disagree — networks
flake), votes a status document, and the published consensus takes majority
flags and median bandwidths.  :class:`AuthorityCouncil` implements that
process; :class:`~repro.dirauth.authority.DirectoryAuthoritySet` remains the
single-authority fast path the large-scale experiments use (the paper's
mechanisms depend on consensus *content*, not on vote mechanics — but the
voting layer lets tests quantify how much measurement noise the majority
absorbs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.dirauth.consensus import Consensus, ConsensusEntry, apply_per_ip_limit
from repro.dirauth.voting import FlagPolicy
from repro.errors import ConsensusError
from repro.relay.flags import RelayFlags, flags_overlap
from repro.relay.relay import Relay
from repro.sim.clock import Timestamp
from repro.sim.rng import derive_rng, split_rng

DEFAULT_AUTHORITY_COUNT = 9


@dataclass
class AuthorityVote:
    """One authority's opinion of the network at one instant."""

    authority_id: int
    # relay_id -> (flags, measured bandwidth); absent = seen as down.
    opinions: Dict[int, tuple]


class DirectoryAuthority:
    """A single voting authority with imperfect measurement.

    ``misreachability``: probability of wrongly seeing an up relay as down
    on a given vote (transient network trouble between this authority and
    the relay).  ``bandwidth_noise``: relative σ of its bandwidth scanner.
    """

    def __init__(
        self,
        authority_id: int,
        policy: FlagPolicy,
        rng: random.Random,
        misreachability: float = 0.02,
        bandwidth_noise: float = 0.1,
    ) -> None:
        if not 0 <= misreachability < 0.5:
            raise ConsensusError(
                f"misreachability must be < 0.5 for majorities to work: "
                f"{misreachability}"
            )
        self.authority_id = authority_id
        self.policy = policy
        self._rng = rng
        self.misreachability = misreachability
        self.bandwidth_noise = bandwidth_noise

    def vote(self, relays: Iterable[Relay], now: Timestamp) -> AuthorityVote:
        """Measure every relay and produce this authority's opinion."""
        opinions: Dict[int, tuple] = {}
        for relay in relays:
            if not relay.reachable:
                continue
            if self._rng.random() < self.misreachability:
                continue  # we failed to reach it; others may succeed
            flags = self.policy.flags_for(relay, now)
            if not flags_overlap(flags, RelayFlags.RUNNING):
                continue
            measured = max(
                1,
                round(
                    relay.bandwidth
                    * (1.0 + self._rng.gauss(0.0, self.bandwidth_noise))
                ),
            )
            opinions[relay.relay_id] = (flags, measured)
        return AuthorityVote(authority_id=self.authority_id, opinions=opinions)


class AuthorityCouncil:
    """Nine authorities, one consensus.

    Protocol-compatible with :class:`DirectoryAuthoritySet` (``register``,
    ``deregister``, ``monitored_relays``, ``build_consensus``), so it can be
    passed to :class:`~repro.tornet.TorNetwork` construction sites that
    accept an authority object.
    """

    def __init__(
        self,
        policy: Optional[FlagPolicy] = None,
        authority_count: int = DEFAULT_AUTHORITY_COUNT,
        rng: Optional[random.Random] = None,
        misreachability: float = 0.02,
        bandwidth_noise: float = 0.1,
    ) -> None:
        if authority_count < 1:
            raise ConsensusError(f"need at least one authority: {authority_count}")
        self.policy = policy if policy is not None else FlagPolicy()
        rng = rng if rng is not None else derive_rng(0, "dirauth", "council")
        self.authorities = [
            DirectoryAuthority(
                authority_id=index,
                policy=self.policy,
                rng=split_rng(rng, "authority", str(index)),
                misreachability=misreachability,
                bandwidth_noise=bandwidth_noise,
            )
            for index in range(authority_count)
        ]
        self._relays: Dict[int, Relay] = {}
        self.consensuses_built = 0

    # -- DirectoryAuthoritySet protocol ---------------------------------- #

    def register(self, relay: Relay) -> None:
        """Start monitoring ``relay``."""
        if relay.relay_id in self._relays:
            raise ConsensusError(f"relay already registered: {relay}")
        self._relays[relay.relay_id] = relay

    def register_all(self, relays: Iterable[Relay]) -> None:
        """Register many relays."""
        for relay in relays:
            self.register(relay)

    def deregister(self, relay: Relay) -> None:
        """Stop monitoring ``relay``."""
        self._relays.pop(relay.relay_id, None)

    @property
    def monitored_relays(self) -> List[Relay]:
        """Every relay currently tracked."""
        return list(self._relays.values())

    @property
    def monitored_count(self) -> int:
        """How many relays are tracked."""
        return len(self._relays)

    def relay_by_fingerprint(self, fingerprint) -> Optional[Relay]:
        """Find the monitored relay currently holding ``fingerprint``."""
        for relay in self._relays.values():
            if relay.fingerprint == fingerprint:
                return relay
        return None

    # -- voting ------------------------------------------------------------ #

    def build_consensus(self, now: Timestamp) -> Consensus:
        """Vote and take majorities.

        A relay is listed when a majority of authorities reached it; each
        flag needs its own majority among the listing authorities; the
        consensus bandwidth is the median of the measurements.
        """
        relays = list(self._relays.values())
        votes = [authority.vote(relays, now) for authority in self.authorities]
        quorum = len(self.authorities) // 2 + 1

        candidates: List[ConsensusEntry] = []
        for relay in relays:
            supporting = [
                vote.opinions[relay.relay_id]
                for vote in votes
                if relay.relay_id in vote.opinions
            ]
            if len(supporting) < quorum:
                continue
            # Per-flag majority over ALL authorities (absent = against).
            flags = RelayFlags.RUNNING | RelayFlags.VALID
            for flag in (
                RelayFlags.FAST,
                RelayFlags.STABLE,
                RelayFlags.GUARD,
                RelayFlags.HSDIR,
                RelayFlags.EXIT,
            ):
                agreeing = sum(1 for opinion in supporting if opinion[0] & flag)
                if agreeing >= quorum:
                    flags |= flag
            bandwidths = sorted(opinion[1] for opinion in supporting)
            median = bandwidths[len(bandwidths) // 2]
            candidates.append(
                ConsensusEntry(
                    fingerprint=relay.fingerprint,
                    nickname=relay.nickname,
                    ip=relay.ip,
                    or_port=relay.or_port,
                    bandwidth=median,
                    flags=flags,
                )
            )
        admitted = apply_per_ip_limit(candidates)
        admitted.sort(key=lambda entry: entry.fingerprint)
        self.consensuses_built += 1
        return Consensus(valid_after=int(now), entries=tuple(admitted))
