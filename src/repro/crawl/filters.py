"""The Section IV exclusion funnel.

From 6,579 connectable destinations the paper excluded, in order:

1. destinations with fewer than 20 words of text (2,348, of which 1,092
   were SSH banners from port 22);
2. port-443 destinations whose content duplicated the same onion's port-80
   page (1,108);
3. destinations returning an error message embedded in an HTML page (73);

leaving 3,050 destinations for language and topic classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.crawl.crawler import CrawlResults
from repro.crawl.page import FetchedPage, PageKind
from repro.population.content import is_error_page

MIN_WORDS = 20


@dataclass
class ClassifiableSet:
    """Pages that survive the funnel, plus per-rule exclusion counts."""

    pages: List[FetchedPage] = field(default_factory=list)
    short_excluded: int = 0
    ssh_banner_excluded: int = 0  # subset of short_excluded from port 22
    duplicate_443_excluded: int = 0
    error_page_excluded: int = 0

    @property
    def classified_count(self) -> int:
        """Destinations that will be classified."""
        return len(self.pages)

    @property
    def total_excluded(self) -> int:
        """All exclusions (ssh banners are inside the short count)."""
        return (
            self.short_excluded
            + self.duplicate_443_excluded
            + self.error_page_excluded
        )


def apply_exclusions(results: CrawlResults) -> ClassifiableSet:
    """Run the funnel over crawl results (order as in the paper)."""
    out = ClassifiableSet()

    connected = [page for page in results.pages if page.connected]

    # Rule 2 preparation: index port-80 text per onion.
    port80_text: Dict[str, str] = {
        page.onion: page.text
        for page in connected
        if page.port == 80 and page.kind is PageKind.HTML
    }

    for page in connected:
        if page.word_count < MIN_WORDS:
            out.short_excluded += 1
            if page.port == 22:
                out.ssh_banner_excluded += 1
            continue
        if (
            page.port == 443
            and page.kind is PageKind.HTML
            and port80_text.get(page.onion) == page.text
        ):
            out.duplicate_443_excluded += 1
            continue
        if page.kind is PageKind.HTML and (
            page.status >= 400 or is_error_page(page.text)
        ):
            out.error_page_excluded += 1
            continue
        out.pages.append(page)
    return out


def destinations_summary(results: CrawlResults) -> List[Tuple[str, int]]:
    """Table I: connectable destination counts per port.

    Ports 80, 443, 22, 8080 get their own rows; everything else is 'Other'.
    """
    counts: Dict[str, int] = {"80": 0, "443": 0, "22": 0, "8080": 0, "Other": 0}
    for page in results.pages:
        if not page.connected:
            continue
        key = str(page.port) if str(page.port) in counts else "Other"
        counts[key] += 1
    return [(port, counts[port]) for port in ("80", "443", "22", "8080", "Other")]
