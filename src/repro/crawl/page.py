"""Fetched-page model."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.onion import OnionAddress


class PageKind(enum.Enum):
    """What kind of response a destination produced."""

    HTML = "html"  # an HTTP response with a body
    BANNER = "banner"  # raw protocol banner (SSH, IRC, misc TCP services)
    NO_RESPONSE = "no-response"  # TCP open but nothing intelligible
    DEAD = "dead"  # port closed / host gone / unreachable


@dataclass
class FetchedPage:
    """One crawled destination (onion address : port pair)."""

    onion: OnionAddress
    port: int
    scheme: str  # "http" or "https"
    kind: PageKind
    status: int = 0
    text: str = ""  # tag-stripped text content
    error: str = ""
    attempts: int = 1  # connection attempts the fetch consumed (retries incl.)

    @property
    def destination(self) -> tuple:
        """(onion, port) identity of the destination."""
        return (self.onion, self.port)

    @property
    def word_count(self) -> int:
        """Words of text — the Section IV exclusion cutoff is 20."""
        return len(self.text.split())

    @property
    def connected(self) -> bool:
        """True when the crawler got any application-layer content."""
        return self.kind in (PageKind.HTML, PageKind.BANNER)
