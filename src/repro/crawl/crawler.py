"""The crawler.

Connects to each scanned destination over the simulated Tor transport and
tries to hold an HTTP(S) conversation, falling back to recording whatever
banner the service volunteers (SSH version strings, IRC notices).  Binary
data is excluded up front, as in the paper ("We excluded all binary data
such as images, executables, etc.").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.onion import OnionAddress
from repro.errors import CrawlError
from repro.faults.retry import RetryPolicy, connect_with_retry
from repro.faults.taxonomy import FailureCategory, FailureTaxonomy
from repro.net.endpoint import ConnectOutcome
from repro.net.transport import TorTransport
from repro.obs.scope import Observer, ensure_observer
from repro.parallel import pmap
from repro.crawl.page import FetchedPage, PageKind
from repro.population.content import strip_html
from repro.sim.clock import Timestamp


@dataclass
class CrawlResults:
    """Everything the crawl produced, plus funnel counters."""

    pages: List[FetchedPage] = field(default_factory=list)
    tried: int = 0
    open_at_crawl: int = 0
    connected: int = 0
    #: How fetch failures were classified; all zero without a retry policy.
    failures: FailureTaxonomy = field(default_factory=FailureTaxonomy)
    # destination → first page for it, maintained by add_page so page_for is
    # O(1) instead of a linear scan per lookup (the classifier does one
    # lookup per classified destination).
    _page_index: Dict[Tuple[OnionAddress, int], FetchedPage] = field(
        default_factory=dict, repr=False, compare=False
    )

    def by_kind(self, kind: PageKind) -> List[FetchedPage]:
        """Pages of one kind."""
        return [page for page in self.pages if page.kind == kind]

    def add_page(self, page: FetchedPage) -> None:
        """Append a page, keeping the destination index in sync."""
        self.pages.append(page)
        self._page_index.setdefault(page.destination, page)

    def page_for(self, onion: OnionAddress, port: int) -> FetchedPage:
        """The page for a destination (crawl order preserved; unique).

        Indexed lookup; pages appended to :attr:`pages` directly (rather
        than through :meth:`add_page`) are picked up by rebuilding lazily.
        """
        if len(self._page_index) < len(self.pages):
            self._page_index.clear()
            for page in self.pages:
                self._page_index.setdefault(page.destination, page)
        page = self._page_index.get((onion, port))
        if page is None:
            raise CrawlError(f"destination not in crawl results: {(onion, port)}")
        return page


class Crawler:
    """Fetches destinations and extracts text.

    With a :class:`RetryPolicy`, fetches whose conversation fails
    transiently (circuit timeouts, mid-transfer truncation) are retried and
    accounted in :attr:`CrawlResults.failures`; a missing descriptor earns
    one re-fetch.  Without a policy every failure is final, exactly as
    before — including truncated conversations, which surface as DEAD.
    """

    def __init__(
        self,
        transport: TorTransport,
        retry_policy: Optional[RetryPolicy] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self._transport = transport
        self._retry_policy = retry_policy
        self._observer = ensure_observer(observer)

    def crawl(
        self,
        destinations: Iterable[Tuple[OnionAddress, int]],
        when: Timestamp,
        workers: Optional[int] = None,
    ) -> CrawlResults:
        """Fetch every (onion, port) destination at time ``when``.

        The fetch fan-out goes through :func:`repro.parallel.pmap`; the
        fetch closure captures the live transport (shared circuit-noise
        stream), so the executor keeps it in-process in destination order
        and the page list is identical at every ``workers`` value.
        """
        results = CrawlResults()

        def fetch(destination):
            onion, port = destination
            return self._fetch_one(onion, port, when)

        destination_list = list(destinations)
        for page, category in pmap(fetch, destination_list, workers=workers):
            results.tried += 1
            if page.kind is not PageKind.DEAD:
                results.open_at_crawl += 1
            if page.connected:
                results.connected += 1
            results.failures.record(category, page.attempts)
            results.add_page(page)
            self._observer.count("crawl_pages_total", kind=page.kind.value)
        self._observer.gauge("crawl_tried", results.tried)
        self._observer.gauge("crawl_connected", results.connected)
        self._observer.gauge("crawl_open_at_crawl", results.open_at_crawl)
        return results

    def _fetch_one(
        self, onion: OnionAddress, port: int, when: Timestamp
    ) -> Tuple[FetchedPage, Optional[FailureCategory]]:
        scheme = "https" if port == 443 else "http"
        attempts = 1
        category: Optional[FailureCategory] = None
        if self._retry_policy is None:
            result = self._transport.connect(onion, port, when)
            self._observer.add_time(result.latency)
        else:
            outcome = connect_with_retry(
                self._transport,
                onion,
                port,
                when,
                self._retry_policy,
                observer=self._observer,
            )
            result = outcome.result
            attempts = outcome.attempts
            category = outcome.category
            self._observer.add_time(max(0, outcome.finished_at - when))
        if result.outcome in (
            ConnectOutcome.UNREACHABLE,
            ConnectOutcome.REFUSED,
            ConnectOutcome.TIMEOUT,
            ConnectOutcome.ABNORMAL_ERROR,
        ) or (result.outcome is ConnectOutcome.OPEN and result.truncated):
            return (
                FetchedPage(
                    onion=onion,
                    port=port,
                    scheme=scheme,
                    kind=PageKind.DEAD,
                    error=result.error_message,
                    attempts=attempts,
                ),
                category,
            )
        endpoint = result.endpoint
        application = getattr(endpoint, "application", None)
        if application is not None and hasattr(application, "handle_request"):
            response = application.handle_request("/", when)
            return (
                FetchedPage(
                    onion=onion,
                    port=port,
                    scheme=scheme,
                    kind=PageKind.HTML,
                    status=response.status,
                    text=strip_html(response.body),
                    attempts=attempts,
                ),
                category,
            )
        if result.banner:
            return (
                FetchedPage(
                    onion=onion,
                    port=port,
                    scheme=scheme,
                    kind=PageKind.BANNER,
                    text=result.banner,
                    attempts=attempts,
                ),
                category,
            )
        return (
            FetchedPage(
                onion=onion,
                port=port,
                scheme=scheme,
                kind=PageKind.NO_RESPONSE,
                attempts=attempts,
            ),
            category,
        )
