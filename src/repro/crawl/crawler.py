"""The crawler.

Connects to each scanned destination over the simulated Tor transport and
tries to hold an HTTP(S) conversation, falling back to recording whatever
banner the service volunteers (SSH version strings, IRC notices).  Binary
data is excluded up front, as in the paper ("We excluded all binary data
such as images, executables, etc.").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.crypto.onion import OnionAddress
from repro.errors import CrawlError
from repro.net.endpoint import ConnectOutcome
from repro.net.transport import TorTransport
from repro.parallel import pmap
from repro.crawl.page import FetchedPage, PageKind
from repro.population.content import strip_html
from repro.sim.clock import Timestamp


@dataclass
class CrawlResults:
    """Everything the crawl produced, plus funnel counters."""

    pages: List[FetchedPage] = field(default_factory=list)
    tried: int = 0
    open_at_crawl: int = 0
    connected: int = 0

    def by_kind(self, kind: PageKind) -> List[FetchedPage]:
        """Pages of one kind."""
        return [page for page in self.pages if page.kind == kind]

    def page_for(self, onion: OnionAddress, port: int) -> FetchedPage:
        """The page for a destination (crawl order preserved; unique)."""
        for page in self.pages:
            if page.destination == (onion, port):
                return page
        raise CrawlError(f"destination not in crawl results: {(onion, port)}")


class Crawler:
    """Fetches destinations and extracts text."""

    def __init__(self, transport: TorTransport) -> None:
        self._transport = transport

    def crawl(
        self,
        destinations: Iterable[Tuple[OnionAddress, int]],
        when: Timestamp,
        workers: Optional[int] = None,
    ) -> CrawlResults:
        """Fetch every (onion, port) destination at time ``when``.

        The fetch fan-out goes through :func:`repro.parallel.pmap`; the
        fetch closure captures the live transport (shared circuit-noise
        stream), so the executor keeps it in-process in destination order
        and the page list is identical at every ``workers`` value.
        """
        results = CrawlResults()

        def fetch(destination):
            onion, port = destination
            return self._fetch_one(onion, port, when)

        destination_list = list(destinations)
        for page in pmap(fetch, destination_list, workers=workers):
            results.tried += 1
            if page.kind is not PageKind.DEAD:
                results.open_at_crawl += 1
            if page.connected:
                results.connected += 1
            results.pages.append(page)
        return results

    def _fetch_one(
        self, onion: OnionAddress, port: int, when: Timestamp
    ) -> FetchedPage:
        scheme = "https" if port == 443 else "http"
        result = self._transport.connect(onion, port, when)
        if result.outcome in (
            ConnectOutcome.UNREACHABLE,
            ConnectOutcome.REFUSED,
            ConnectOutcome.TIMEOUT,
            ConnectOutcome.ABNORMAL_ERROR,
        ):
            return FetchedPage(
                onion=onion,
                port=port,
                scheme=scheme,
                kind=PageKind.DEAD,
                error=result.error_message,
            )
        endpoint = result.endpoint
        application = getattr(endpoint, "application", None)
        if application is not None and hasattr(application, "handle_request"):
            response = application.handle_request("/", when)
            return FetchedPage(
                onion=onion,
                port=port,
                scheme=scheme,
                kind=PageKind.HTML,
                status=response.status,
                text=strip_html(response.body),
            )
        if result.banner:
            return FetchedPage(
                onion=onion,
                port=port,
                scheme=scheme,
                kind=PageKind.BANNER,
                text=result.banner,
            )
        return FetchedPage(
            onion=onion, port=port, scheme=scheme, kind=PageKind.NO_RESPONSE
        )
