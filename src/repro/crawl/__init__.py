"""HTTP(S) crawling of scanned destinations (Section IV)."""

from repro.crawl.page import FetchedPage, PageKind
from repro.crawl.crawler import Crawler, CrawlResults
from repro.crawl.filters import ClassifiableSet, apply_exclusions

__all__ = [
    "FetchedPage",
    "PageKind",
    "Crawler",
    "CrawlResults",
    "ClassifiableSet",
    "apply_exclusions",
]
