"""A Tor client.

Owns an IP address (and thus a country), a guard set, and optionally a clock
skew.  Skewed clients derive descriptor IDs for the wrong day — one source of
the "requests for descriptors which did not exist" the paper measured, and
the reason its resolver recomputes descriptor IDs "for each day between 28
January 2013 and 8 February ... to deal with possible wrong time settings of
Tor clients".
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.crypto.descriptor_id import REPLICAS, descriptor_id
from repro.crypto.onion import OnionAddress
from repro.hsdir.directory import StoredDescriptor
from repro.net.address import IPv4
from repro.sim.clock import Timestamp

if TYPE_CHECKING:  # circular: tornet imports repro.hs, which imports here
    from repro.tornet import TorNetwork


class TorClient:
    """One client identity with its guard set and clock skew."""

    def __init__(
        self,
        ip: IPv4,
        rng: random.Random,
        clock_skew: int = 0,
        country: str = "??",
    ) -> None:
        from repro.client.guards import GuardSet  # local: avoid import cycle at module load

        self.ip = ip
        self.country = country
        self.clock_skew = int(clock_skew)
        self._rng = rng
        self.guards = GuardSet(rng)
        self.fetches_attempted = 0
        self.fetches_succeeded = 0

    def refresh_guards(self, network: "TorNetwork", now: Optional[Timestamp] = None) -> None:
        """(Re)build the guard set against the current consensus."""
        if now is None:
            now = network.clock.now
        self.guards.refresh(network.consensus, now)

    def local_time(self, now: Timestamp) -> Timestamp:
        """The client's wall clock (possibly wrong)."""
        return int(now) + self.clock_skew

    def fetch_onion(
        self, network: "TorNetwork", onion: OnionAddress, now: Optional[Timestamp] = None
    ) -> Optional[StoredDescriptor]:
        """Fetch ``onion``'s descriptor through a guard circuit.

        Descriptor IDs are derived from the *client's* clock, so skewed
        clients ask for IDs that were never published and come back empty.
        """
        if now is None:
            now = network.clock.now
        self.fetches_attempted += 1
        guard = self.guards.pick() if self.guards.fingerprints else None
        local = self.local_time(now)
        replicas = list(range(REPLICAS))
        self._rng.shuffle(replicas)
        for replica in replicas:
            desc_id = descriptor_id(onion, local, replica)
            stored = network.fetch_descriptor_id(
                desc_id,
                self._rng,
                now=now,
                client_ip=self.ip,
                guard_fingerprint=guard,
            )
            if stored is not None:
                self.fetches_succeeded += 1
                return stored
        return None

    def fetch_descriptor_id(
        self, network: "TorNetwork", desc_id: bytes, now: Optional[Timestamp] = None
    ) -> Optional[StoredDescriptor]:
        """Fetch a raw descriptor ID (e.g. from a stale search-engine list)."""
        if now is None:
            now = network.clock.now
        self.fetches_attempted += 1
        guard = self.guards.pick() if self.guards.fingerprints else None
        stored = network.fetch_descriptor_id(
            desc_id,
            self._rng,
            now=now,
            client_ip=self.ip,
            guard_fingerprint=guard,
        )
        if stored is not None:
            self.fetches_succeeded += 1
        return stored
