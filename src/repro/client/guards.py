"""Entry-guard management.

A client keeps a set of three guard relays chosen from the consensus
(bandwidth-weighted among Guard-flagged relays); every circuit's first hop is
one of them.  A guard expires after a random 30–60 days, and new guards are
chosen whenever fewer than two in the set are reachable (Section II.B).

The guard mechanism bounds the client-deanonymisation attack of Section VI:
the attacker only learns a client's IP when the client's *chosen guard* for
the fetch circuit is attacker-controlled, so the success probability is
roughly the attacker's share of guard bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.keys import Fingerprint
from repro.dirauth.consensus import Consensus
from repro.errors import SimulationError
from repro.relay.flags import RelayFlags
from repro.sim.clock import DAY, Timestamp

GUARD_SET_SIZE = 3
GUARD_LIFETIME_MIN = 30 * DAY
GUARD_LIFETIME_MAX = 60 * DAY


@dataclass
class GuardSlot:
    """One guard in the set with its expiry."""

    fingerprint: Fingerprint
    expires_at: Timestamp


class GuardSet:
    """The three entry guards of one client."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._slots: List[GuardSlot] = []

    @property
    def fingerprints(self) -> List[Fingerprint]:
        """Current guard fingerprints."""
        return [slot.fingerprint for slot in self._slots]

    def refresh(self, consensus: Consensus, now: Timestamp) -> None:
        """Expire old guards, drop vanished ones, and refill to three.

        Guards that left the consensus are treated as unreachable; per the
        Tor behaviour the paper describes, replacements are drawn whenever
        fewer than two reachable guards remain — we refill to the full set,
        which subsumes that rule and keeps selection simple.
        """
        self._slots = [
            slot
            for slot in self._slots
            if slot.expires_at > now and consensus.entry_for(slot.fingerprint) is not None
        ]
        candidates = self._guard_candidates(consensus)
        have = {slot.fingerprint for slot in self._slots}
        while len(self._slots) < GUARD_SET_SIZE and candidates:
            pick = self._weighted_pick(candidates)
            if pick in have:
                candidates.pop(pick, None)
                continue
            have.add(pick)
            candidates.pop(pick, None)
            lifetime = self._rng.randint(GUARD_LIFETIME_MIN, GUARD_LIFETIME_MAX)
            self._slots.append(
                GuardSlot(fingerprint=pick, expires_at=int(now) + lifetime)
            )

    def pick(self) -> Fingerprint:
        """Choose the guard for the next circuit (uniform over the set)."""
        if not self._slots:
            raise SimulationError("guard set is empty; call refresh first")
        return self._rng.choice(self._slots).fingerprint

    def _guard_candidates(self, consensus: Consensus) -> Dict[Fingerprint, int]:
        return {
            entry.fingerprint: max(1, entry.bandwidth)
            for entry in consensus.with_flag(RelayFlags.GUARD)
        }

    def _weighted_pick(self, candidates: Dict[Fingerprint, int]) -> Optional[Fingerprint]:
        if not candidates:
            return None
        fingerprints = list(candidates)
        weights = [candidates[fp] for fp in fingerprints]
        return self._rng.choices(fingerprints, weights=weights, k=1)[0]
