"""Circuit construction.

A Tor circuit is a telescoped path through three relays: the entry guard
(from the client's guard set), a middle, and a final hop whose role depends
on purpose (exit, rendezvous point, or the directory/introduction relay
itself).  The simulator models the parts the study observes — who the hops
are — not the cryptography between them.

Path selection follows the properties that matter here: the first hop is
always a guard from the pinned set (the entire §VI attack economics), later
hops are bandwidth-weighted, and no relay (or IP) appears twice in a path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.client.guards import GuardSet
from repro.crypto.keys import Fingerprint
from repro.dirauth.consensus import Consensus, ConsensusEntry
from repro.errors import SimulationError
from repro.relay.flags import RelayFlags

CIRCUIT_LENGTH = 3


@dataclass(frozen=True)
class Circuit:
    """A built path.  ``hops[0]`` is the guard."""

    hops: Tuple[Fingerprint, ...]
    purpose: str = "general"

    def __post_init__(self) -> None:
        if len(self.hops) < 1:
            raise SimulationError("a circuit needs at least one hop")
        if len(set(self.hops)) != len(self.hops):
            raise SimulationError("circuit reuses a relay")

    @property
    def guard(self) -> Fingerprint:
        """The entry hop."""
        return self.hops[0]

    @property
    def last_hop(self) -> Fingerprint:
        """The hop that touches the destination (exit / RP / directory)."""
        return self.hops[-1]

    def __len__(self) -> int:
        return len(self.hops)


class CircuitBuilder:
    """Builds circuits against a consensus for one client/service identity."""

    def __init__(self, guards: GuardSet, rng: random.Random) -> None:
        self._guards = guards
        self._rng = rng
        self.circuits_built = 0

    def build(
        self,
        consensus: Consensus,
        purpose: str = "general",
        length: int = CIRCUIT_LENGTH,
        final_hop: Optional[Fingerprint] = None,
        exclude: Sequence[Fingerprint] = (),
    ) -> Circuit:
        """Build a circuit.

        ``final_hop`` pins the last relay (connecting to an introduction
        point or a chosen rendezvous point); intermediate hops are
        bandwidth-weighted draws over Fast relays.
        """
        if length < 1:
            raise SimulationError(f"circuit length must be positive: {length}")
        if not self._guards.fingerprints:
            raise SimulationError("guard set is empty; refresh before building")
        excluded: Set[Fingerprint] = set(exclude)
        hops: List[Fingerprint] = []

        guard = self._pick_guard(excluded | ({final_hop} if final_hop else set()))
        hops.append(guard)
        excluded.add(guard)

        middle_count = length - 1 - (1 if final_hop is not None else 0)
        if final_hop is None:
            middle_count = length - 1
        for _ in range(max(0, middle_count)):
            middle = self._weighted_pick(consensus, excluded)
            hops.append(middle)
            excluded.add(middle)
        if final_hop is not None:
            if final_hop in hops:
                raise SimulationError("final hop collides with an earlier hop")
            hops.append(final_hop)
        self.circuits_built += 1
        return Circuit(hops=tuple(hops), purpose=purpose)

    def _pick_guard(self, excluded: Set[Fingerprint]) -> Fingerprint:
        candidates = [
            fp for fp in self._guards.fingerprints if fp not in excluded
        ]
        if not candidates:
            # All pinned guards excluded: fall back to any pinned guard
            # (real Tor would fail the circuit; the distinction never
            # matters at our abstraction level).
            candidates = list(self._guards.fingerprints)
        return self._rng.choice(candidates)

    def _weighted_pick(
        self, consensus: Consensus, excluded: Set[Fingerprint]
    ) -> Fingerprint:
        entries: List[ConsensusEntry] = [
            entry
            for entry in consensus.with_flag(RelayFlags.FAST)
            if entry.fingerprint not in excluded
        ]
        if not entries:
            entries = [
                entry
                for entry in consensus.entries
                if entry.fingerprint not in excluded
            ]
        if not entries:
            raise SimulationError("no relays available for a middle hop")
        weights = [max(1, entry.bandwidth) for entry in entries]
        return self._rng.choices(entries, weights=weights, k=1)[0].fingerprint
