"""Tor clients: guard management, descriptor fetching, popularity workload."""

from repro.client.guards import GuardSet, GUARD_SET_SIZE
from repro.client.client import TorClient
from repro.client.workload import (
    PopularityWorkload,
    WorkloadSpec,
    zipf_weights,
)

__all__ = [
    "GuardSet",
    "GUARD_SET_SIZE",
    "TorClient",
    "PopularityWorkload",
    "WorkloadSpec",
    "zipf_weights",
]
