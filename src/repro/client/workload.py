"""Client request workload for the popularity measurement (Section V).

The paper's vantage saw, in 2-hour windows, just over a million descriptor
requests for 29,123 unique descriptor IDs — a mixture of:

* traffic to a handful of *very* popular services (the Goldnet and Skynet
  botnets phoning home, adult sites, Silk Road, …),
* a long Zipf-like tail over a few thousand ordinary services (only ~10% of
  published descriptors were ever requested), and
* a dominant share (~80%) of requests for descriptors that *never existed* —
  stale search-engine databases probing dead onions, clients with wrong
  clocks deriving off-by-k-days descriptor IDs.

:class:`PopularityWorkload` reproduces that mixture by driving real client
fetches through the network facade, so every request lands in (attacker)
HSDir request logs exactly the way real traffic would.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from typing import TYPE_CHECKING

from repro.client.client import TorClient
from repro.crypto.onion import OnionAddress
from repro.errors import ConfigError
from repro.net.geoip import GeoIP
from repro.sim.clock import DAY, Timestamp
from repro.sim.rng import split_rng

if TYPE_CHECKING:  # circular: tornet imports repro.hs, which imports here
    from repro.tornet import TorNetwork


def zipf_weights(count: int, exponent: float = 1.0, rank_offset: int = 0) -> List[float]:
    """Weights ``1/(k + rank_offset)**exponent`` for ranks 1..count.

    ``rank_offset`` shifts the curve so a tail can *continue* a head
    distribution instead of restarting at rank 1 — the popularity tail
    starts where Table II's named head (≈30 services) leaves off.

    >>> [round(w, 3) for w in zipf_weights(3)]
    [1.0, 0.5, 0.333]
    """
    return [
        1.0 / ((rank + rank_offset) ** exponent) for rank in range(1, count + 1)
    ]


def diurnal_weight(
    ts: Timestamp, peak_hour: float = 20.0, amplitude: float = 0.8
) -> float:
    """Relative human activity at timestamp ``ts`` (UTC sinusoid).

    Botnets phone home on timers; people browse in the evening.  The
    traffic-shape forensics in :mod:`repro.popularity.timeseries` separate
    the two, so the workload can modulate *human* services with this curve
    while botnet services stay flat.

    >>> diurnal_weight(20 * 3600, peak_hour=20, amplitude=0.5)
    1.5
    """
    if not 0 <= amplitude <= 1:
        raise ConfigError(f"amplitude out of range: {amplitude}")
    hour = (int(ts) % DAY) / 3600.0
    return 1.0 + amplitude * math.cos(2 * math.pi * (hour - peak_hour) / 24.0)


@dataclass
class WorkloadSpec:
    """Configuration of one popularity window.

    Attributes:
        window_start / window_end: the harvest window (2 hours in the paper).
        named_rates: exact expected request counts for specific services
            (the Table II head: botnets, adult sites, Silk Road, …).
        tail_onions: ordinary published services that receive the Zipf tail.
        tail_total: total requests spread over ``tail_onions``.
        tail_exponent: Zipf exponent of the tail.
        tail_rank_offset: rank shift so the tail continues below the named
            head instead of restarting at rank 1.
        ghost_onions: syntactically valid onions that were *never published*
            within the resolution window (long-dead services).  Ghost traffic
            requests *fixed stale descriptor IDs* derived from these onions —
            the paper's hypothesis for the 80% never-published fetches is
            "specialized Hidden Service search engines ... trying to connect
            to services from their databases which did not exist anymore",
            i.e. the requesters replay old identifiers rather than deriving
            fresh ones.
        ghost_total: total requests spread over ghost descriptor IDs.
        ghost_exponent: Zipf exponent of ghost traffic (flat-ish: spread over
            many stale entries, none outranking the real head).
        ghost_staleness_days: how many days before the window the stale IDs
            were derived (puts them outside any sane resolution window).
        client_count: distinct client identities issuing the traffic.
        skew_fraction: fraction of clients whose clock is off by ±1 day
            (their requests for live onions also miss, and resolve only
            thanks to the resolver's multi-day window).
    """

    window_start: Timestamp
    window_end: Timestamp
    named_rates: Dict[OnionAddress, int] = field(default_factory=dict)
    tail_onions: List[OnionAddress] = field(default_factory=list)
    tail_total: int = 0
    tail_exponent: float = 1.25
    tail_rank_offset: int = 30
    ghost_onions: List[OnionAddress] = field(default_factory=list)
    ghost_total: int = 0
    ghost_exponent: float = 0.45
    ghost_staleness_days: int = 45
    client_count: int = 500
    skew_fraction: float = 0.01
    # Human-driven services get the diurnal curve; everything else (botnet
    # C&C beacons, search-engine crawlers) is flat.
    diurnal_onions: Set[OnionAddress] = field(default_factory=set)
    diurnal_peak_hour: float = 20.0
    diurnal_amplitude: float = 0.8

    @property
    def planned_fetches(self) -> int:
        """Total fetch operations the spec will issue."""
        return sum(self.named_rates.values()) + self.tail_total + self.ghost_total


@dataclass
class WorkloadReport:
    """What the workload actually issued."""

    fetches_issued: int = 0
    fetches_succeeded: int = 0
    named_fetches: int = 0
    tail_fetches: int = 0
    ghost_fetches: int = 0
    clients_used: int = 0


class PopularityWorkload:
    """Drives the Section V client traffic into the network."""

    def __init__(
        self,
        spec: WorkloadSpec,
        rng: random.Random,
        geoip: Optional[GeoIP] = None,
    ) -> None:
        self.spec = spec
        self._rng = rng
        self._geoip = geoip if geoip is not None else GeoIP(seed=0)
        self._ghost_id_cache: Optional[Dict[OnionAddress, List[bytes]]] = None

    def _make_clients(self) -> List[TorClient]:
        clients: List[TorClient] = []
        for index in range(self.spec.client_count):
            country = self._geoip.random_country(self._rng)
            ip = self._geoip.random_ip(self._rng, country)
            skew = 0
            if self._rng.random() < self.spec.skew_fraction:
                skew = self._rng.choice((-1, 1)) * DAY
            clients.append(
                TorClient(
                    ip=ip,
                    rng=split_rng(self._rng, "client", str(index)),
                    clock_skew=skew,
                    country=country,
                )
            )
        return clients

    def _spread(
        self,
        total: int,
        targets: Sequence[OnionAddress],
        exponent: float,
        rank_offset: int = 0,
    ) -> Dict[OnionAddress, int]:
        """Allocate ``total`` requests over ``targets`` with Zipf weights.

        Uses largest-remainder rounding so the counts sum exactly to
        ``total`` (multinomial sampling at a million requests would be slow
        for no fidelity gain: per-service counts concentrate tightly around
        their expectations at these volumes).
        """
        if not targets or total <= 0:
            return {}
        weights = zipf_weights(len(targets), exponent, rank_offset)
        weight_sum = sum(weights)
        raw = [total * w / weight_sum for w in weights]
        counts = [int(value) for value in raw]
        remainders = sorted(
            range(len(targets)), key=lambda i: raw[i] - counts[i], reverse=True
        )
        missing = total - sum(counts)
        for i in remainders[:missing]:
            counts[i] += 1
        return {onion: count for onion, count in zip(targets, counts) if count > 0}

    def _ghost_ids(self, onion: OnionAddress) -> List[bytes]:
        """The fixed stale descriptor IDs replayed for a dead onion.

        Derived once for the whole ghost population through the batched
        kernel (the IDs are fixed per onion — the derivation draws no
        randomness, so hoisting it out of the per-slice loop cannot shift
        any RNG stream) and memoised; an onion outside the spec's ghost
        list still derives on demand.
        """
        from repro.crypto.descriptor_id import (
            descriptor_ids_for_day,
            descriptor_ids_for_day_batch,
        )

        stale_time = self.spec.window_start - self.spec.ghost_staleness_days * DAY
        if self._ghost_id_cache is None:
            self._ghost_id_cache = dict(
                zip(
                    self.spec.ghost_onions,
                    descriptor_ids_for_day_batch(self.spec.ghost_onions, stale_time),
                )
            )
        ids = self._ghost_id_cache.get(onion)
        if ids is None:
            ids = descriptor_ids_for_day(onion, stale_time)
            self._ghost_id_cache[onion] = ids
        return ids

    def _full_plan(self) -> List[tuple[OnionAddress, int, str]]:
        spec = self.spec
        plan: List[tuple[OnionAddress, int, str]] = []
        for onion, count in spec.named_rates.items():
            plan.append((onion, count, "named"))
        for onion, count in self._spread(
            spec.tail_total, spec.tail_onions, spec.tail_exponent, spec.tail_rank_offset
        ).items():
            plan.append((onion, count, "tail"))
        for onion, count in self._spread(
            spec.ghost_total, spec.ghost_onions, spec.ghost_exponent
        ).items():
            plan.append((onion, count, "ghost"))
        return plan

    def plan_slices(
        self,
        slice_count: int,
        slice_starts: Optional[Sequence[Timestamp]] = None,
    ) -> "SlicedPlan":
        """Split the workload into ``slice_count`` time slices.

        The harvesting attack rotates its relays hourly, so traffic must be
        issued interleaved with consensus changes — each request routed via
        the consensus in force when it happens.  Per-target counts are
        multinomially assigned to slices (unit-by-unit, preserving exact
        totals).

        ``slice_starts`` (one timestamp per slice) enables the diurnal
        modulation of :attr:`WorkloadSpec.diurnal_onions`: their requests
        land in slices with probability proportional to human activity at
        that hour; without slice times, allocation is uniform.
        """
        spec = self.spec
        plan = self._full_plan()
        slice_weights: Optional[List[float]] = None
        if slice_starts is not None and spec.diurnal_onions:
            if len(slice_starts) != slice_count:
                raise ConfigError(
                    f"{len(slice_starts)} slice starts for {slice_count} slices"
                )
            slice_weights = [
                diurnal_weight(ts, spec.diurnal_peak_hour, spec.diurnal_amplitude)
                for ts in slice_starts
            ]
        indices = list(range(slice_count))
        sliced: Dict[tuple[OnionAddress, str], List[int]] = {}
        for onion, count, kind in plan:
            buckets = [0] * slice_count
            diurnal = slice_weights is not None and onion in spec.diurnal_onions
            for _ in range(count):
                if diurnal:
                    index = self._rng.choices(indices, weights=slice_weights, k=1)[0]
                else:
                    index = self._rng.randrange(slice_count)
                buckets[index] += 1
            sliced[(onion, kind)] = buckets
        return SlicedPlan(
            slices=slice_count, buckets=sliced, clients=self._make_clients()
        )

    def run_slice(
        self,
        network: "TorNetwork",
        planned: "SlicedPlan",
        slice_index: int,
        window_start: Timestamp,
        window_end: Timestamp,
        report: Optional[WorkloadReport] = None,
    ) -> WorkloadReport:
        """Issue slice ``slice_index`` of a plan within the given window."""
        if report is None:
            report = WorkloadReport()
        report.clients_used = len(planned.clients)
        window = max(1, window_end - window_start)
        for (onion, kind), buckets in planned.buckets.items():
            count = buckets[slice_index]
            if not count:
                continue
            ghost_ids = self._ghost_ids(onion) if kind == "ghost" else None
            for _ in range(count):
                client = self._rng.choice(planned.clients)
                when = window_start + self._rng.randrange(window)
                if ghost_ids is not None:
                    stored = client.fetch_descriptor_id(
                        network, self._rng.choice(ghost_ids), now=when
                    )
                else:
                    stored = client.fetch_onion(network, onion, now=when)
                report.fetches_issued += 1
                if stored is not None:
                    report.fetches_succeeded += 1
                if kind == "named":
                    report.named_fetches += 1
                elif kind == "tail":
                    report.tail_fetches += 1
                else:
                    report.ghost_fetches += 1
        return report

    def run(self, network: "TorNetwork") -> WorkloadReport:
        """Issue the full workload in one window (single-consensus setups).

        Fetch timestamps are drawn uniformly inside the window; the network
        clock is left untouched (HSDir request accounting carries per-request
        times when detailed logging is enabled).
        """
        planned = self.plan_slices(1)
        return self.run_slice(
            network, planned, 0, self.spec.window_start, self.spec.window_end
        )


@dataclass
class SlicedPlan:
    """A workload pre-split into time slices (see ``plan_slices``)."""

    slices: int
    buckets: Dict[tuple, List[int]]
    clients: List[TorClient]

    @property
    def total_requests(self) -> int:
        """Requests across all slices."""
        return sum(sum(b) for b in self.buckets.values())
