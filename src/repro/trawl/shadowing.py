"""Shadow-relay fleet management.

The attacker rents ``n`` IP addresses and runs ``m`` relays on each.  The
consensus lists at most two relays per IP (the two with the highest measured
bandwidth), but the authorities monitor *all* of them and their uptime
accrues — so after 25 hours every one of the ``n × m`` relays qualifies for
HSDir.  Making the currently listed pair unreachable lets the next pair
"shadow" into the consensus with full flags.  Section II calls this
*shadowing*.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.crypto.keys import KeyPair
from repro.errors import AttackError
from repro.net.address import AddressPool, IPv4
from repro.relay.relay import Relay
from repro.sim.clock import Timestamp
from repro.tornet import TorNetwork


class ShadowFleet:
    """The attacker's relays, grouped by rented IP address."""

    def __init__(
        self,
        network: TorNetwork,
        ip_count: int,
        relays_per_ip: int,
        rng: random.Random,
        address_pool: Optional[AddressPool] = None,
        bandwidth: int = 400,
        nickname_stem: str = "trawler",
    ) -> None:
        if ip_count < 1 or relays_per_ip < 1:
            raise AttackError(
                f"fleet needs positive dimensions, got {ip_count}×{relays_per_ip}"
            )
        self.network = network
        self.ip_count = ip_count
        self.relays_per_ip = relays_per_ip
        self._rng = rng
        pool = address_pool if address_pool is not None else AddressPool(rng)
        self.by_ip: Dict[IPv4, List[Relay]] = {}
        now = network.clock.now
        for ip_index in range(ip_count):
            ip = pool.allocate()
            group: List[Relay] = []
            for relay_index in range(relays_per_ip):
                # Descending bandwidth inside the group fixes which two the
                # per-IP rule admits first, making rotation order
                # deterministic: the pair currently listed is always the
                # highest-bandwidth pair still reachable.
                relay = Relay(
                    nickname=f"{nickname_stem}{ip_index:03d}x{relay_index:03d}",
                    ip=ip,
                    or_port=9001 + relay_index,
                    keypair=KeyPair.generate(rng),
                    bandwidth=bandwidth + (relays_per_ip - relay_index) * 2,
                    started_at=now,
                )
                group.append(relay)
                network.add_relay(relay)
            self.by_ip[ip] = group

    @property
    def all_relays(self) -> List[Relay]:
        """Every attacker relay, listed or shadow."""
        return [relay for group in self.by_ip.values() for relay in group]

    def listed_relays(self) -> List[Relay]:
        """Attacker relays in the *current* consensus."""
        consensus = self.network.consensus
        return [
            relay for relay in self.all_relays if relay.fingerprint in consensus
        ]

    def reachable_relays(self) -> List[Relay]:
        """Attacker relays still reachable (not yet burned)."""
        return [relay for relay in self.all_relays if relay.reachable]

    def rotate(self, now: Timestamp) -> List[Relay]:
        """Burn the currently listed relays so shadows rotate in.

        Returns the relays that were retired (their HSDir stores should be
        harvested *before* the next consensus forgets them).  Safe to call
        when nothing is listed (returns []).
        """
        retired = self.listed_relays()
        for relay in retired:
            relay.set_reachable(False, now)
        return retired

    def waves_remaining(self) -> int:
        """How many more rotations the fleet can sustain."""
        reachable = len(self.reachable_relays())
        return reachable // (2 * self.ip_count) if self.ip_count else 0
