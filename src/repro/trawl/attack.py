"""The trawling attack controller.

Timeline (mirrors Section II):

1. **Deploy** — spin up ``ip_count × relays_per_ip`` relays.  The per-IP
   consensus rule lists only two per IP, but every relay's uptime accrues.
2. **Ripen** — wait ≥ 25 hours so all relays qualify for HSDir.
3. **Sweep** — every ``rotation_interval`` hours, read out and burn the
   listed relays so fresh shadows rotate in at new ring positions.  Each
   new consensus shifts responsible sets, services republish, and the new
   attacker relays receive descriptors; client fetches hitting attacker
   relays are counted.

The sweep both harvests onion addresses and (during the measurement window)
captures the client request statistics that Section V ranks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.crypto.keys import fingerprint_int
from repro.errors import AttackError
from repro.hs.publisher import PublishScheduler
from repro.hs.service import HiddenService
from repro.net.address import AddressPool
from repro.relay.flags import RelayFlags
from repro.sim.clock import HOUR, Timestamp
from repro.tornet import TorNetwork
from repro.trawl.coverage import CoverageTracker
from repro.trawl.harvest import HarvestResult, RingHistory
from repro.trawl.shadowing import ShadowFleet


@dataclass(frozen=True)
class TrawlConfig:
    """Attack parameters.

    The paper used 58 Amazon EC2 instances; ``relays_per_ip`` controls how
    many rotation waves the fleet can sustain (two listed relays are burned
    per IP per wave).
    """

    ip_count: int = 58
    relays_per_ip: int = 24
    ripen_hours: int = 26  # ≥ 25 h for the HSDir flag, plus slack
    sweep_hours: int = 12
    rotation_interval_hours: int = 1
    bandwidth: int = 400

    def __post_init__(self) -> None:
        if self.ip_count < 1 or self.relays_per_ip < 2:
            raise AttackError("fleet too small to rotate")
        if self.ripen_hours * HOUR < 25 * HOUR:
            raise AttackError("relays must ripen at least 25 hours for HSDir")
        if self.sweep_hours < 1 or self.rotation_interval_hours < 1:
            raise AttackError("sweep parameters must be positive")


class TrawlAttack:
    """Runs the full deploy → ripen → sweep pipeline."""

    def __init__(
        self,
        network: TorNetwork,
        config: TrawlConfig,
        rng: random.Random,
        address_pool: Optional[AddressPool] = None,
    ) -> None:
        self.network = network
        self.config = config
        self._rng = rng
        self._pool = address_pool
        self.fleet: Optional[ShadowFleet] = None
        self.coverage = CoverageTracker()
        self.harvest = HarvestResult()
        self.ring_history = RingHistory()

    def deploy(self) -> ShadowFleet:
        """Stand the fleet up at the current simulated time."""
        if self.fleet is not None:
            raise AttackError("fleet already deployed")
        self.fleet = ShadowFleet(
            network=self.network,
            ip_count=self.config.ip_count,
            relays_per_ip=self.config.relays_per_ip,
            rng=self._rng,
            address_pool=self._pool,
            bandwidth=self.config.bandwidth,
        )
        return self.fleet

    def run(
        self,
        services: Iterable[HiddenService],
        publisher: Optional[PublishScheduler] = None,
        hour_hook: Optional[Callable[[int, Timestamp], None]] = None,
    ) -> HarvestResult:
        """Execute the attack against the given service population.

        ``publisher`` defaults to a fresh scheduler over ``services``; pass
        an existing one to share republish state with other phases.
        ``hour_hook(sweep_hour_index, now)`` fires once per sweep hour after
        the consensus settles — the popularity experiment uses it to issue
        the client workload interleaved with the rotation.
        """
        services = list(services)
        if publisher is None:
            publisher = PublishScheduler(self.network, services)
        if self.fleet is None:
            self.deploy()
        fleet = self.fleet
        assert fleet is not None
        network = self.network
        self.harvest.started_at = network.clock.now

        # Ripen: relays accrue uptime; the network keeps breathing.
        for _ in range(self.config.ripen_hours):
            network.clock.advance_by(HOUR)
            network.rebuild_consensus()
            publisher.maintain(network.clock.now)

        # Sweep: rotate shadows in, harvest and burn.
        hours_until_rotation = 0
        for sweep_hour in range(self.config.sweep_hours):
            network.clock.advance_by(HOUR)
            if hours_until_rotation == 0:
                now = network.clock.now
                retired = fleet.rotate(now)
                self._absorb(retired, now)
                hours_until_rotation = self.config.rotation_interval_hours
            network.rebuild_consensus()
            listed = fleet.listed_relays()
            listed_positions = {relay.keypair.ring_position for relay in listed}
            self.coverage.record_wave(
                listed_positions, network.consensus.hsdir_count
            )
            ring_positions = [
                fingerprint_int(entry.fingerprint)
                for entry in network.consensus.with_flag(RelayFlags.HSDIR)
            ]
            ring_positions.sort()
            self.ring_history.record(
                network.clock.now, ring_positions, listed_positions
            )
            publisher.maintain(network.clock.now)
            if hour_hook is not None:
                hour_hook(sweep_hour, network.clock.now)
            hours_until_rotation -= 1

        # Final read-out of whatever is still listed.
        now = network.clock.now
        self._absorb(fleet.listed_relays(), now)
        self.harvest.finished_at = now
        return self.harvest

    def _absorb(self, relays: List, now: Timestamp) -> None:
        for relay in relays:
            server = self.network.hsdir_server_for(relay)
            self.harvest.absorb_server(server, now)

    @property
    def attacker_fingerprints(self) -> frozenset:
        """Current fingerprints of every attacker relay (for detection
        experiments that must exclude the authors' own trackers)."""
        if self.fleet is None:
            return frozenset()
        return frozenset(relay.fingerprint for relay in self.fleet.all_relays)
