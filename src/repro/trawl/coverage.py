"""Ring-coverage analytics for the trawl.

Quantifies the two claims framing Section II:

* *Without* the shadowing flaw, an attacker limited to two consensus relays
  per IP must interleave enough relays that every descriptor ID has an
  attacker among its three following HSDirs — an attacker needs at least
  half as many relays as there are honest HSDirs, i.e. **> 300 IP
  addresses** at the 2013 ring size (footnote 3 of the paper).
* *With* the flaw, 58 IPs running shadow fleets sweep the ring within a
  day: each rotation wave drops ~2·n fresh relays onto new ring positions,
  and capture probabilities compound across waves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Set

from repro.crypto.descriptor_id import REPLICAS
from repro.crypto.ring import HSDIRS_PER_REPLICA
from repro.errors import AttackError


def naive_ip_requirement(
    honest_hsdir_count: int,
    relays_per_ip: int = 2,
    hsdirs_per_replica: int = HSDIRS_PER_REPLICA,
) -> int:
    """IP addresses needed to cover the whole ring *without* shadowing.

    Guaranteed capture of every descriptor requires an attacker relay in
    every window of ``hsdirs_per_replica`` consecutive ring members.  With
    attacker relays interleaved every ``hsdirs_per_replica - 1`` honest
    relays, the attacker needs ``H / (hsdirs_per_replica - 1)`` relays for
    ``H`` honest HSDirs, i.e. ``H / 2`` at the protocol's 3-per-replica —
    over 600 relays / 300 IPs at the 2013 ring size, matching the paper.

    >>> naive_ip_requirement(1200)
    300
    """
    if honest_hsdir_count < 0:
        raise AttackError(f"negative ring size: {honest_hsdir_count}")
    if relays_per_ip < 1 or hsdirs_per_replica < 2:
        raise AttackError("degenerate parameters")
    relays_needed = math.ceil(honest_hsdir_count / (hsdirs_per_replica - 1))
    return math.ceil(relays_needed / relays_per_ip)


def expected_capture_probability(
    attacker_listed: int,
    total_hsdirs: int,
    waves: int = 1,
    replicas: int = REPLICAS,
    hsdirs_per_replica: int = HSDIRS_PER_REPLICA,
) -> float:
    """Probability one service's descriptors are captured within ``waves``.

    Each attacker relay is responsible for descriptor IDs falling in the
    ``hsdirs_per_replica`` ring gaps preceding it, so one wave of ``A``
    listed relays out of ``N`` HSDirs captures a given replica with
    probability ≈ ``min(1, 3A/N)``; replicas and waves are independent
    (fresh fingerprints land on fresh positions).
    """
    if total_hsdirs <= 0:
        raise AttackError("ring is empty")
    if attacker_listed < 0 or waves < 0:
        raise AttackError("negative attacker parameters")
    per_replica = min(1.0, hsdirs_per_replica * attacker_listed / total_hsdirs)
    miss_one_wave = (1.0 - per_replica) ** replicas
    return 1.0 - miss_one_wave**waves


@dataclass
class CoverageTracker:
    """Tracks which ring segments the attack has swept so far.

    Ring positions are tracked as the attacker fingerprints that have been
    responsible at some point; analytic coverage uses
    :func:`expected_capture_probability` while this tracker reports the
    realised sweep.
    """

    total_hsdirs: int = 0
    positions_swept: Set[int] = field(default_factory=set)
    waves_completed: int = 0

    def record_wave(self, attacker_positions: Set[int], total_hsdirs: int) -> None:
        """Account one rotation wave."""
        self.positions_swept |= attacker_positions
        self.total_hsdirs = total_hsdirs
        self.waves_completed += 1

    @property
    def distinct_positions(self) -> int:
        """How many distinct ring positions attacker relays have held."""
        return len(self.positions_swept)
