"""The shadow-relay harvesting attack (Section II).

Runs many relays on few IP addresses, lets them all accrue the 25-hour
HSDir uptime while only two per IP sit in the consensus, then progressively
knocks active relays out so shadow relays rotate in and sweep the HSDir
ring — collecting hidden-service descriptors (onion addresses) and client
request statistics.
"""

from repro.trawl.attack import TrawlAttack, TrawlConfig
from repro.trawl.harvest import HarvestResult, RingHistory
from repro.trawl.shadowing import ShadowFleet
from repro.trawl.coverage import (
    naive_ip_requirement,
    expected_capture_probability,
    CoverageTracker,
)

__all__ = [
    "TrawlAttack",
    "TrawlConfig",
    "HarvestResult",
    "RingHistory",
    "ShadowFleet",
    "naive_ip_requirement",
    "expected_capture_probability",
    "CoverageTracker",
]
