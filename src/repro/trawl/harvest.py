"""What the trawl collects.

Two streams come off the attacker's directories before each rotation burns
them: the stored descriptors (public keys → onion addresses) and the
per-descriptor-ID request counters (client popularity, Section V).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.descriptor_id import DescriptorId
from repro.crypto.onion import OnionAddress, onion_address_from_key
from repro.crypto.ring import HSDIRS_PER_REPLICA, ring_start_indices
from repro.hsdir.directory import HSDirServer
from repro.sim.clock import HOUR, Timestamp

try:  # numpy accelerates the batched observation pass; scalar path is complete
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None


@dataclass
class HarvestResult:
    """Accumulated trawl output."""

    onions: Set[OnionAddress] = field(default_factory=set)
    descriptor_ids_seen: Set[DescriptorId] = field(default_factory=set)
    # descriptor_id -> [found_count, not_found_count] summed over attacker
    # directories; "found" means the directory held the descriptor when the
    # client asked.
    request_counts: Dict[DescriptorId, List[int]] = field(default_factory=dict)
    descriptors_collected: int = 0
    relays_harvested: int = 0
    started_at: Timestamp = 0
    finished_at: Timestamp = 0

    def absorb_server(self, server: HSDirServer, now: Timestamp) -> None:
        """Read one attacker directory out before it is burned."""
        for stored in server.stored_descriptors(now):
            self.onions.add(onion_address_from_key(stored.public_der))
            self.descriptor_ids_seen.add(stored.descriptor_id)
            self.descriptors_collected += 1
        for desc_id, (found, missing) in server.request_counts.items():
            counts = self.request_counts.setdefault(desc_id, [0, 0])
            counts[0] += found
            counts[1] += missing
        self.relays_harvested += 1

    @property
    def total_requests(self) -> int:
        """All client fetches observed at attacker directories."""
        return sum(found + missing for found, missing in self.request_counts.values())

    @property
    def unique_requested_ids(self) -> int:
        """Distinct descriptor IDs clients asked for."""
        return len(self.request_counts)

    def requests_for(self, desc_id: DescriptorId) -> int:
        """Observed request count for one descriptor ID."""
        counts = self.request_counts.get(desc_id)
        return (counts[0] + counts[1]) if counts else 0


@dataclass
class RingHistory:
    """Hourly snapshots of the HSDir ring with attacker membership.

    The attacker can only observe requests for a descriptor ID while one of
    its relays is among the ID's responsible directories.  To report request
    *rates* (Table II counts are per 2-hour window), raw counts must be
    normalised by each ID's covered time — which the attacker can compute
    from public data: the consensus history plus its own relay list.
    """

    # (hour timestamp, sorted ring positions, attacker position set)
    snapshots: List[Tuple[Timestamp, List[int], Set[int]]] = field(
        default_factory=list
    )

    def record(
        self, when: Timestamp, ring_positions: List[int], attacker_positions: Set[int]
    ) -> None:
        """Store one hourly snapshot (ring positions must be sorted)."""
        self.snapshots.append((int(when), ring_positions, attacker_positions))

    def _attacker_slots(
        self,
        desc_id: DescriptorId,
        per_replica: int = HSDIRS_PER_REPLICA,
        validity: Optional[Tuple[Timestamp, Timestamp]] = None,
    ) -> List[int]:
        """Per snapshot: how many of the ID's responsible slots were ours.

        ``validity`` restricts the accounting to the ID's own time period —
        a descriptor ID only receives traffic while it is the service's
        *current* ID, so hours entirely outside ``[start, end)`` cannot have
        observed anything and must not dilute the denominator.  A snapshot
        taken at ``when`` stands for the consensus hour ``(when - 1h, when]``
        (requests issued during that hour route through it), so the filter
        keeps any snapshot whose *hour* overlaps the validity window — a
        rotation boundary falling mid-hour keeps both neighbouring IDs'
        accounting consistent with where their raw counts landed.
        """
        point = int.from_bytes(desc_id, "big")
        slots: List[int] = []
        for when, positions, attacker in self.snapshots:
            if validity is not None and not (
                when - HOUR < validity[1] and when > validity[0]
            ):
                continue
            if not positions:
                slots.append(0)
                continue
            start = bisect.bisect_right(positions, point)
            take = min(per_replica, len(positions))
            count = sum(
                1
                for i in range(take)
                if positions[(start + i) % len(positions)] in attacker
            )
            slots.append(count)
        return slots

    def covered_seconds(
        self,
        desc_id: DescriptorId,
        per_replica: int = HSDIRS_PER_REPLICA,
        validity: Optional[Tuple[Timestamp, Timestamp]] = None,
    ) -> int:
        """For how long ≥ 1 attacker relay was responsible for ``desc_id``.

        Each snapshot is assumed to hold for one hour (the consensus
        cadence).  Note a descriptor ID is fixed here — rotation to the next
        day's ID is a different ID with its own coverage.
        """
        return sum(
            HOUR
            for slots in self._attacker_slots(desc_id, per_replica, validity)
            if slots
        )

    def slot_weighted_seconds(
        self,
        desc_id: DescriptorId,
        per_replica: int = HSDIRS_PER_REPLICA,
        validity: Optional[Tuple[Timestamp, Timestamp]] = None,
    ) -> float:
        """Coverage weighted by the *fraction of slots* held (a/3 per hour).

        A client whose fetch succeeds queries exactly one of the ID's
        directories at random, so the attacker observes a found-fetch with
        probability a/3 when it holds a of the 3 slots; a failed fetch walks
        all three, so any held slot observes it.  The two observation models
        share this denominator (see :meth:`normalized_rate`).
        """
        take = per_replica
        return sum(
            HOUR * slots / take
            for slots in self._attacker_slots(desc_id, per_replica, validity)
        )

    def normalized_rate(
        self,
        desc_id: DescriptorId,
        found: int,
        missing: int,
        window: int = 2 * HOUR,
        validity: Optional[Tuple[Timestamp, Timestamp]] = None,
    ) -> float:
        """Scale raw observed counts to a per-``window`` request count *as a
        full-takeover attacker would have logged it* — the paper's vantage,
        where the measuring relays held essentially every responsible slot.

        A successful fetch queries one directory uniformly at random (the
        attacker sees it w.p. a/3 holding a slots); a failed fetch walks all
        three (each held slot logs it, i.e. a log lines).  Both observation
        processes scale linearly with held slots, so one slot-weighted
        denominator recovers the full-coverage count for each: per 2-hour
        window, a found-count normalises to the service's fetch rate (what
        Table II prints) and a missing-count to 3× the phantom fetch rate
        (clients hammering every directory, as the paper's logs show).

        ``validity`` restricts coverage to the ID's own period, so an ID
        whose service rotated mid-sweep is not diluted by hours it could not
        have been asked for.  When every observed request arrived *outside*
        the validity window (clock-skewed clients asking for yesterday's or
        tomorrow's ID), the denominator falls back to full-sweep coverage —
        observability is a property of when requests arrive, and such
        requests arrive throughout the sweep.
        """
        weighted = self.slot_weighted_seconds(desc_id, validity=validity)
        if weighted <= 0 and validity is not None:
            weighted = self.slot_weighted_seconds(desc_id)
        if weighted <= 0:
            weighted = HOUR
        return (found + missing) * window / weighted

    def _attacker_slot_matrix(
        self, points: Sequence[int], per_replica: int
    ) -> List[Optional[List[int]]]:
        """Per snapshot, the attacker slot count of every query point.

        The batched half of the observation pass: one vectorised ring
        bisect (:func:`ring_start_indices`) plus a wrapped prefix sum over
        the snapshot's attacker-membership flags answers all points at
        once.  Row ``None`` stands for an empty-ring snapshot (slot 0 for
        every ID, as the scalar loop records).  Entry ``[s][i]`` always
        equals the scalar ``_attacker_slots`` count of point *i* at
        snapshot *s*.
        """
        matrix: List[Optional[List[int]]] = []
        for _, positions, attacker in self.snapshots:
            if not positions:
                matrix.append(None)
                continue
            size = len(positions)
            take = min(per_replica, size)
            starts = ring_start_indices(points, positions)
            flags = [1 if p in attacker else 0 for p in positions]
            # ``flags`` extended past the wrap point: index ``start + i``
            # reads the same member the scalar ``(start + i) % size`` does,
            # for any bisect_right result in [0, size].
            extended = flags + flags[:take]
            if _np is not None and len(points) >= 8:
                prefix = _np.concatenate(
                    ([0], _np.cumsum(_np.asarray(extended, dtype=_np.int64)))
                )
                starts_arr = _np.asarray(starts, dtype=_np.int64)
                matrix.append((prefix[starts_arr + take] - prefix[starts_arr]).tolist())
            else:
                prefix = [0]
                for flag in extended:
                    prefix.append(prefix[-1] + flag)
                matrix.append([prefix[s + take] - prefix[s] for s in starts])
        return matrix

    def normalized_rates_batch(
        self,
        requests: Sequence[
            Tuple[DescriptorId, int, int, Optional[Tuple[Timestamp, Timestamp]]]
        ],
        window: int = 2 * HOUR,
        per_replica: int = HSDIRS_PER_REPLICA,
    ) -> List[float]:
        """Batched :meth:`normalized_rate` over ``(id, found, missing,
        validity)`` requests.

        The slot matrix is computed once for all IDs; each ID's weighted
        coverage is then accumulated snapshot by snapshot with exactly the
        scalar expression and term order (validity filter, empty-ring
        zeros, full-sweep fallback, ``HOUR`` floor included), so element
        *i* is bit-identical to ``normalized_rate(*requests[i], window)``.
        """
        points = [int.from_bytes(desc_id, "big") for desc_id, _, _, _ in requests]
        matrix = self._attacker_slot_matrix(points, per_replica)
        take = per_replica
        whens = [when for when, _, _ in self.snapshots]
        rates: List[float] = []
        for column, (_, found, missing, validity) in enumerate(requests):
            weighted: float = 0
            for when, row in zip(whens, matrix):
                if validity is not None and not (
                    when - HOUR < validity[1] and when > validity[0]
                ):
                    continue
                weighted = weighted + HOUR * (0 if row is None else row[column]) / take
            if weighted <= 0 and validity is not None:
                for row in matrix:
                    weighted = (
                        weighted + HOUR * (0 if row is None else row[column]) / take
                    )
            if weighted <= 0:
                weighted = HOUR
            rates.append((found + missing) * window / weighted)
        return rates
