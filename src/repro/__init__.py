"""repro — a reproduction of *Content and popularity analysis of Tor hidden
services* (Biryukov, Pustogarov, Thill, Weinmann; ICDCS 2014).

The library has three layers:

* **Substrates** — a deterministic discrete-event Tor network simulator:
  :mod:`repro.sim` (time/events/RNG), :mod:`repro.crypto` (v2 onion and
  descriptor-ID math), :mod:`repro.net` (addresses, transport, GeoIP),
  :mod:`repro.relay` / :mod:`repro.dirauth` (relays, flags, consensus),
  :mod:`repro.hsdir` / :mod:`repro.hs` / :mod:`repro.client` (directories,
  services, clients), and :mod:`repro.population` (the calibrated synthetic
  hidden-service world).
* **Measurement pipeline** — the paper's contribution: :mod:`repro.trawl`
  (shadow-relay harvesting), :mod:`repro.scan` (port scanning),
  :mod:`repro.crawl` + :mod:`repro.classify` (content analysis),
  :mod:`repro.popularity` (request-rate ranking), :mod:`repro.tracking`
  (client deanonymisation) and :mod:`repro.detection` (consensus-history
  tracking detection).
* **Experiments** — :mod:`repro.experiments` regenerates every table and
  figure; :mod:`repro.analysis` holds the reporting helpers.

Quickstart::

    from repro import TorNetwork, HiddenService, KeyPair, derive_rng
    from repro.sim import SimClock, parse_date

    net = TorNetwork(clock=SimClock(parse_date("2013-02-04")))
    ...

See README.md and the ``examples/`` directory.
"""

from repro.errors import (
    ReproError,
    SimulationError,
    CryptoError,
    NetworkError,
    ConsensusError,
    DescriptorError,
    AttackError,
    ClassificationError,
    PopulationError,
)
from repro.sim import SimClock, EventEngine, derive_rng, parse_date, format_date
from repro.crypto import (
    KeyPair,
    FingerprintRing,
    onion_address_from_key,
    descriptor_id,
    descriptor_ids_for_day,
)
from repro.relay import Relay, RelayFlags
from repro.dirauth import Consensus, ConsensusArchive, DirectoryAuthoritySet, FlagPolicy
from repro.tornet import TorNetwork, FetchTrace
from repro.hs import HiddenService, PublishScheduler
from repro.client import TorClient, GuardSet, PopularityWorkload, WorkloadSpec
from repro.population import PopulationSpec, generate_population
from repro.trawl import TrawlAttack, TrawlConfig
from repro.scan import PortScanner, ScanSchedule
from repro.crawl import Crawler, apply_exclusions
from repro.classify import build_language_detector, build_topic_classifier
from repro.popularity import DescriptorResolver, PopularityRanking
from repro.tracking import ClientDeanonAttack, ClientGeoMap, ServiceDeanonAttack
from repro.detection import SilkroadStudy, SilkroadStudyConfig, TrackingAnalyzer
from repro.worldbuild import HonestNetworkSpec, build_honest_network

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SimulationError",
    "CryptoError",
    "NetworkError",
    "ConsensusError",
    "DescriptorError",
    "AttackError",
    "ClassificationError",
    "PopulationError",
    "SimClock",
    "EventEngine",
    "derive_rng",
    "parse_date",
    "format_date",
    "KeyPair",
    "FingerprintRing",
    "onion_address_from_key",
    "descriptor_id",
    "descriptor_ids_for_day",
    "Relay",
    "RelayFlags",
    "Consensus",
    "ConsensusArchive",
    "DirectoryAuthoritySet",
    "FlagPolicy",
    "TorNetwork",
    "FetchTrace",
    "HiddenService",
    "PublishScheduler",
    "TorClient",
    "GuardSet",
    "PopularityWorkload",
    "WorkloadSpec",
    "PopulationSpec",
    "generate_population",
    "TrawlAttack",
    "TrawlConfig",
    "PortScanner",
    "ScanSchedule",
    "Crawler",
    "apply_exclusions",
    "build_language_detector",
    "build_topic_classifier",
    "DescriptorResolver",
    "PopularityRanking",
    "ClientDeanonAttack",
    "ClientGeoMap",
    "ServiceDeanonAttack",
    "SilkroadStudy",
    "SilkroadStudyConfig",
    "TrackingAnalyzer",
    "HonestNetworkSpec",
    "build_honest_network",
    "__version__",
]
