"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class CryptoError(ReproError):
    """Invalid key material, onion address, or descriptor-identifier input."""


class NetworkError(ReproError):
    """Simulated network failure that is not an expected connection outcome."""


class AddressExhaustedError(NetworkError):
    """The simulated IPv4 address pool has no more addresses to allocate."""


class ConsensusError(ReproError):
    """Consensus construction or archive lookup failed."""


class DescriptorError(ReproError):
    """A hidden-service descriptor is malformed or cannot be (un)published."""


class AttackError(ReproError):
    """A measurement attack (trawl / tracking) was configured incorrectly."""


class ClassificationError(ReproError):
    """A classifier was used before training or trained on invalid input."""


class PopulationError(ReproError):
    """The synthetic hidden-service population spec is infeasible."""


class ConfigError(ReproError):
    """A caller-supplied parameter or configuration file is invalid."""


class CrawlError(ReproError):
    """A crawl-result lookup or crawl configuration failed."""


class FaultConfigError(ConfigError):
    """A fault-injection plan, rule, or profile is invalid."""


class RetryExhaustedError(NetworkError):
    """A retried network operation failed on every permitted attempt."""

    def __init__(self, message: str, attempts: int = 0, last_outcome: str = ""):
        super().__init__(message)
        #: Connection attempts made before giving up.
        self.attempts = attempts
        #: ``ConnectOutcome.value`` of the final attempt, when known.
        self.last_outcome = last_outcome


class ParallelError(ReproError):
    """The deterministic parallel executor was configured incorrectly."""


class StoreError(ReproError):
    """The artifact store was configured or used incorrectly."""


class StoreCorruptionError(StoreError):
    """A stored artifact's bytes no longer match its content address."""

    def __init__(self, message: str, digest: str = ""):
        super().__init__(message)
        #: Content address of the damaged object, when known.
        self.digest = digest


class ObservabilityError(ReproError):
    """A metric, span, or snapshot in repro.obs was used incorrectly."""


class BenchError(ReproError):
    """A benchmark workload, trajectory, or comparison was misconfigured."""


class BenchSchemaError(BenchError):
    """A BENCH_*.json document does not match the trajectory schema."""


class BenchRegressionError(BenchError):
    """A tagged hot path regressed past the configured threshold."""


class SupervisionError(ReproError):
    """A crash plan, restart policy, or deadline budget is invalid."""


class ServiceError(ReproError):
    """The measurement service (epoch controller or query API) failed."""


class ServiceSchemaError(ServiceError):
    """A service response envelope does not match the documented schema."""


class SimulatedCrashError(BaseException):
    """An injected process death (crash-point testing, repro.supervise).

    Deliberately **not** a :class:`ReproError`: a real crash (SIGKILL, OOM,
    power loss) cannot be caught by ordinary error handling, so the
    simulated one must sail past every ``except ReproError`` / ``except
    Exception`` in the tree exactly the way the real thing would.  Only the
    supervision plane (``repro.supervise``) may catch it — rule REP014 of
    ``repro lint`` enforces that.
    """

    def __init__(self, point: str = "", visit: int = 0):
        super().__init__(
            f"simulated crash at point {point!r} (visit {visit})"
            if point
            else "simulated crash"
        )
        #: The crash-point label where the injected death fired.
        self.point = point
        #: The 1-based visit count at which the rule fired.
        self.visit = visit
