"""Botnet host construction: Skynet and "Goldnet".

Skynet (Section III): a Tor-powered botnet whose infected machines expose a
hidden service with *no* ordinary open ports, but whose port 55080 answers
with an error message different from the usual one (the malware accepts and
immediately drops connections unless configured as a forwarder).  The paper
identified 13,854 such onions — over half the live population.

"Goldnet" (Section V): the paper's name for a probable botnet discovered
from the popularity data: nine extremely popular onion addresses, port 80
only, returning 503 on every request, with an exposed Apache server-status
page revealing ~330 kB/s of almost-all-POST traffic.  Identical Apache
uptimes grouped the nine fronts onto two physical machines.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.net.endpoint import ServiceEndpoint, SimpleHost
from repro.population.spec import PORT_HTTP, PORT_SKYNET
from repro.population.webserver import (
    GoldnetApp,
    PhysicalServer,
    SkynetPortBehavior,
    TlsCertificate,
)
from repro.sim.clock import DAY, Timestamp


def make_skynet_bot_host(
    bot_id: int,
    online_from: Timestamp,
    online_until: Optional[Timestamp],
) -> SimpleHost:
    """An infected machine: only the tell-tale port 55080."""
    host = SimpleHost(online_from=online_from, online_until=online_until)
    host.add_endpoint(
        ServiceEndpoint(
            port=PORT_SKYNET,
            protocol="skynet-fwd",
            abnormal_error=True,
            application=SkynetPortBehavior(bot_id=bot_id),
        )
    )
    return host


def make_goldnet_servers(
    split: tuple,
    now: Timestamp,
    rng: random.Random,
) -> List[PhysicalServer]:
    """The physical machines behind the Goldnet fronts.

    Each machine gets its own boot time (weeks in the past), so fronts of
    the same machine share an Apache uptime — the forensic tell the paper
    used to group them.
    """
    servers: List[PhysicalServer] = []
    for server_id in range(len(split)):
        booted_at = int(now) - rng.randint(20, 90) * DAY - rng.randint(0, DAY - 1)
        servers.append(
            PhysicalServer(
                server_id=server_id,
                booted_at=booted_at,
                traffic_bytes_per_sec=330_000 + rng.randint(-15_000, 15_000),
                requests_per_sec=10.0 + rng.uniform(-0.8, 0.8),
            )
        )
    return servers


def make_goldnet_front_host(
    server: PhysicalServer,
    online_from: Timestamp,
    certificate: Optional[TlsCertificate] = None,
) -> SimpleHost:
    """One Goldnet front: port 80, 503s everywhere, server-status exposed.

    Fronts never churn — the C&C must stay reachable for the bots — which is
    also why they are always found by the scanner.
    """
    host = SimpleHost(online_from=online_from, online_until=None)
    host.add_endpoint(
        ServiceEndpoint(
            port=PORT_HTTP,
            protocol="http",
            application=GoldnetApp(server=server, certificate=certificate),
        )
    )
    return host
