"""Synthetic hidden-service population.

Generates the world the measurement pipeline is pointed at: ~40k hidden
services whose port mix, content topics, languages, botnet behaviours and
popularity are calibrated to the marginals the paper reports.  The pipeline
(scan → crawl → classify → rank) must *recover* these planted distributions;
no experiment reads the generator's ground truth directly.
"""

from repro.population.spec import PopulationSpec
from repro.population.generator import GeneratedPopulation, generate_population
from repro.population.corpus import TOPICS, LANGUAGES

__all__ = [
    "PopulationSpec",
    "GeneratedPopulation",
    "generate_population",
    "TOPICS",
    "LANGUAGES",
]
