"""Vocabulary for synthetic page content.

Two axes, matching the paper's two classification tasks:

* **Topics** — the 18 categories of Fig 2, each with a characteristic
  English vocabulary.  Topic classification (Mallet/uClassify in the paper)
  is word-based, so category vocabularies are what make it learnable.
* **Languages** — the 17 languages of Section IV, each with common words in
  native orthography.  Language identification (Langdetect in the paper) is
  character-n-gram-based, so the lists carry each language's distinctive
  character statistics (diacritics, Cyrillic, kana, hanzi, Arabic script…).

The lists are deliberately redundant — classifiers must cope with pages that
mix topical words into generic filler, as real pages do.
"""

from __future__ import annotations

from typing import Dict, List

# --------------------------------------------------------------------------- #
# Topics (Fig 2 categories)
# --------------------------------------------------------------------------- #

TOPIC_VOCABULARY: Dict[str, List[str]] = {
    "adult": """
        adult escort cam webcam amateur explicit mature erotic lingerie
        fetish nude model gallery video premium membership verified candy
        teens dating hookup intimate sensual private pictures uncensored
        hardcore softcore exclusive preview subscribe performers studio
        """.split(),
    "drugs": """
        cannabis weed marijuana hash hashish mdma ecstasy lsd acid cocaine
        heroin opium mushrooms psilocybin amphetamine speed ketamine dose
        gram ounce stealth shipping vendor escrow review purity lab tested
        strain indica sativa edibles tabs blotter pills pharmacy opiates
        benzos prescription narcotics dealer listing marketplace
        """.split(),
    "politics": """
        corruption government censorship freedom speech rights human leak
        leaked cables whistleblower regime oppression protest revolution
        democracy election propaganda surveillance activist dissident asylum
        journalist repression liberty constitution amendment policy reform
        transparency accountability wikileaks documents classified embassy
        """.split(),
    "counterfeit": """
        counterfeit fake replica passport license identity card ssn cloned
        credit cards dumps cvv fullz track skimmer bills currency euros
        dollars notes hologram document forged stolen accounts paypal bank
        transfer cashout carding marketplace vendor verified balance
        """.split(),
    "weapon": """
        gun pistol rifle firearm ammunition ammo rounds caliber glock
        holster barrel trigger silencer suppressor magazine tactical knife
        blade explosive detonator armory dealer shipment untraceable serial
        handgun shotgun optics scope kevlar armor
        """.split(),
    "faq_tutorials": """
        tutorial guide howto faq beginners instructions step walkthrough
        manual lesson learn basics introduction explained tips tricks setup
        configure install troubleshooting question answer wiki knowledge
        documentation example practice course primer
        """.split(),
    "security": """
        security vulnerability exploit patch firewall antivirus malware
        encryption cipher key certificate audit penetration testing cve
        advisory disclosure zero hardening sandbox threat intrusion
        detection incident response forensics integrity authentication
        password hash sha rsa aes
        """.split(),
    "anonymity": """
        anonymity anonymous privacy tor onion hidden service relay circuit
        pseudonym untraceable metadata tails pgp gpg encrypted remailer
        mixnet vpn proxy fingerprinting deanonymization operational opsec
        jabber xmpp otr bitmessage i2p freenet darknet surveillance
        mail hosting
        """.split(),
    "hacking": """
        hack hacking hacker botnet ddos exploit rootkit trojan keylogger
        phishing spoofing injection sql xss shell backdoor payload crack
        cracking bruteforce defacement leak database breach dox rat stealer
        spam flood
        """.split(),
    "software_hardware": """
        software hardware linux debian windows kernel driver compiler code
        repository release version download binary source opensource server
        hosting cpu gpu motherboard firmware embedded raspberry arduino
        android package build patch library framework python javascript
        """.split(),
    "art": """
        art gallery painting poetry poem literature novel drawing sketch
        photography creative artist exhibition sculpture music album lyrics
        fiction stories zine collage aesthetic illustration portfolio
        """.split(),
    "services": """
        service escrow laundering laundry mixer tumbler bets hitman hire
        killer thief mercenary fixer middleman guarantor vouch reputation
        delivery courier exchange transfer wallet fee commission invoice
        consulting translation passport rental
        """.split(),
    "games": """
        game chess poker lottery casino dice roulette blackjack jackpot
        wager bet odds tournament player leaderboard puzzle arcade rpg
        multiplayer server rules elo rating stake payout bitcoin
        """.split(),
    "science": """
        science research physics chemistry biology mathematics theorem
        experiment hypothesis laboratory journal paper peer quantum
        molecule genome neuroscience astronomy telescope particle dataset
        statistics analysis academic
        """.split(),
    "digital_libs": """
        library ebook ebooks books archive collection pdf epub mobi
        catalogue index texts manuscripts journal magazine mirror torrent
        repository shelf reading author title isbn borrow download
        literature encyclopedia
        """.split(),
    "sports": """
        sports football soccer basketball tennis hockey boxing marathon
        league championship match score team player coach season betting
        fixtures tournament stadium goal referee transfer standings
        """.split(),
    "technology": """
        technology internet network protocol router bandwidth latency fiber
        wireless telecom startup innovation gadget review benchmark cloud
        datacenter storage processor silicon chip robotics automation
        artificial intelligence blockchain
        """.split(),
    "other": """
        forum board community discussion thread post reply member random
        misc general chat blog diary personal journal announcement news
        update links directory miscellaneous welcome page about contact
        """.split(),
}

TOPICS: List[str] = sorted(TOPIC_VOCABULARY)

# Display names used in Fig 2 of the paper, keyed by our topic slug.
TOPIC_DISPLAY_NAMES: Dict[str, str] = {
    "adult": "Adult",
    "drugs": "Drugs",
    "politics": "Politics",
    "counterfeit": "Counterfeit",
    "weapon": "Weapon",
    "faq_tutorials": "FAQs,Tutorials",
    "security": "Security",
    "anonymity": "Anonymity",
    "hacking": "Hacking",
    "software_hardware": "Sofware,Hardware",
    "art": "Art",
    "services": "Services",
    "games": "Games",
    "science": "Science",
    "digital_libs": "Digital libs",
    "sports": "Sports",
    "technology": "Technology",
    "other": "Other",
}

# Generic English filler every page mixes in (classifiers must not rely on
# pages being purely topical).
ENGLISH_FILLER: List[str] = """
    the and for with this that from have will your more about when where
    what which their there here also other some many most very much can
    could should would just like time page site welcome please contact
    email address new old best only over under between because however
    during after before first last next public free open world people
    """.split()

# --------------------------------------------------------------------------- #
# Languages (Section IV: English + 16 others)
# --------------------------------------------------------------------------- #

LANGUAGE_VOCABULARY: Dict[str, List[str]] = {
    "en": ENGLISH_FILLER
    + """
        information website content service online network message forum
        community privacy secure account member register login welcome
        """.split(),
    "de": """
        der die das und ist nicht mit für eine einer über aber auch wenn
        wir sie haben werden können müssen schön größe straße deutsch
        seite dienst netzwerk sicherheit anonymität freiheit regierung
        nachrichten willkommen benutzer konto zugang verschlüsselung
        datenschutz überwachung zwiebel versteckte dienste
        """.split(),
    "ru": """
        и в не на что это как по но из у за от так же бы для мы вы они
        есть был быть этот весь свой наш сайт форум сеть анонимность
        безопасность свобода скрытый сервис правительство новости добро
        пожаловать пользователь пароль доступ шифрование русский язык
        информация сообщение обсуждение
        """.split(),
    "pt": """
        que não uma para com mais por mas como foi ele isso seu sua são
        está você nós eles também já muito quando onde português serviço
        segurança anonimato liberdade governo notícias bem-vindo usuário
        senha acesso criptografia informação mensagem fórum comunidade
        rede oculto serviços endereço
        """.split(),
    "es": """
        que de la el en y a los se del las por un para con no una su al
        es lo como más pero sus le ya o este sí porque esta cuando muy
        también hasta español servicio seguridad anonimato libertad
        gobierno noticias bienvenido usuario contraseña acceso cifrado
        información mensaje foro comunidad red oculto señor año
        """.split(),
    "fr": """
        le la les de des du et est une un pour avec dans par sur pas ne
        que qui nous vous ils elle être avoir fait français très où après
        même aussi comme service sécurité anonymat liberté gouvernement
        nouvelles bienvenue utilisateur mot passe accès chiffrement
        information message forum communauté réseau caché château être
        """.split(),
    "pl": """
        nie jest się na do tak jak ale czy już tylko może przez gdzie
        kiedy wszystko bardzo jeszcze został polski usługa bezpieczeństwo
        anonimowość wolność rząd wiadomości witamy użytkownik hasło dostęp
        szyfrowanie informacja wiadomość forum społeczność sieć ukryte
        usługi łączność źródło żaden więcej
        """.split(),
    "ja": """
        これ それ あれ この その ある いる する なる れる られる こと もの
        ため よう です ます した から まで など について 日本語 サービス
        セキュリティ 匿名 自由 政府 ニュース ようこそ ユーザー パスワード
        アクセス 暗号化 情報 メッセージ フォーラム コミュニティ ネットワーク
        秘密 隠し 接続 安全
        """.split(),
    "it": """
        che di la il un una per con non sono del alla più come anche ma
        questo quella essere avere fatto italiano molto quando dove però
        già servizio sicurezza anonimato libertà governo notizie benvenuto
        utente password accesso crittografia informazione messaggio forum
        comunità rete nascosto perché così città
        """.split(),
    "cs": """
        je se na to že by ale jako už jen když kde všechno velmi ještě
        být mít český služba bezpečnost anonymita svoboda vláda zprávy
        vítejte uživatel heslo přístup šifrování informace zpráva fórum
        komunita síť skrytý služby připojení říci žádný člověk může
        """.split(),
    "ar": """
        في من على أن إلى هذا هذه التي الذي كان كانت لكن بعد قبل حيث عند
        كل ما لا نعم غير بين أو ثم حول خدمة أمن إخفاء الهوية حرية حكومة
        أخبار مرحبا مستخدم كلمة مرور وصول تشفير معلومات رسالة منتدى
        مجتمع شبكة مخفي اتصال عربي لغة
        """.split(),
    "nl": """
        het een van en dat niet voor met zijn aan ook als maar wij zij
        hebben worden kunnen moeten nederlands dienst veiligheid
        anonimiteit vrijheid overheid nieuws welkom gebruiker wachtwoord
        toegang versleuteling informatie bericht forum gemeenschap netwerk
        verborgen diensten verbinding geen meer tegen onder tussen
        """.split(),
    "eu": """
        eta bat da ez du dira izan dute egin behar baina ere hori hau
        zen oso baino gehiago non noiz euskara zerbitzu segurtasun
        anonimotasun askatasun gobernu berriak ongi etorri erabiltzaile
        pasahitza sarbide zifratze informazio mezu foro komunitate sare
        ezkutuko zerbitzuak konexio hizkuntza gure zure
        """.split(),
    "zh": """
        的 是 在 了 不 和 有 我 他 这 中 大 来 上 国 个 到 说 们 为 子 和
        你 地 出 道 也 时 年 服务 安全 匿名 自由 政府 新闻 欢迎 用户 密码
        访问 加密 信息 消息 论坛 社区 网络 隐藏 连接 中文 语言 隐私
        """.split(),
    "hu": """
        a az és hogy nem is egy ez de van volt lesz csak már még mint
        minden nagyon magyar szolgáltatás biztonság névtelenség szabadság
        kormány hírek üdvözöljük felhasználó jelszó hozzáférés titkosítás
        információ üzenet fórum közösség hálózat rejtett szolgáltatások
        kapcsolat nyelv több között azért
        """.split(),
    "bnt": """
        na ya wa kwa ni za katika hii hiyo kama lakini pia sana sasa bado
        watu wengi kila baada kabla kiswahili huduma usalama siri uhuru
        serikali habari karibu mtumiaji nenosiri ufikiaji usimbaji taarifa
        ujumbe jukwaa jamii mtandao siri huduma muunganisho lugha yetu
        """.split(),
    "sv": """
        och att det som en på är av för med den till inte om har de ett
        han var men sig från vi så kan när här svenska tjänst säkerhet
        anonymitet frihet regering nyheter välkommen användare lösenord
        åtkomst kryptering information meddelande forum gemenskap nätverk
        dold tjänster anslutning språk våra större
        """.split(),
}

LANGUAGES: List[str] = sorted(LANGUAGE_VOCABULARY)

# Display names used in the paper's Section IV prose.
LANGUAGE_DISPLAY_NAMES: Dict[str, str] = {
    "en": "English",
    "de": "German",
    "ru": "Russian",
    "pt": "Portuguese",
    "es": "Spanish",
    "fr": "French",
    "pl": "Polish",
    "ja": "Japanese",
    "it": "Italian",
    "cs": "Czech",
    "ar": "Arabic",
    "nl": "Dutch",
    "eu": "Basque",
    "zh": "Chinese",
    "hu": "Hungarian",
    "bnt": "Bantu",
    "sv": "Swedish",
}

# The non-English languages, in the order the paper lists them.
NON_ENGLISH_LANGUAGES: List[str] = [
    "de", "ru", "pt", "es", "fr", "pl", "ja", "it", "cs", "ar", "nl",
    "eu", "zh", "hu", "bnt", "sv",
]

# The fixed text of the Torhost.onion free-hosting default page (805 of the
# English destinations in the paper showed this page).
TORHOST_DEFAULT_PAGE: str = (
    "Welcome to your new TorHost site! This page is the default placeholder "
    "served by the torhostg5s7pa2sn free anonymous hosting service. Your "
    "account is active but no content has been uploaded yet. Log in to the "
    "hosting panel to upload your files, manage your onion domain and view "
    "quota statistics. TorHost provides free anonymous hosting for static "
    "pages inside the Tor network. Questions and abuse reports go to the "
    "hosting forum."
)

# The stand-in onion hostname of the hosting service (the real 2013 one was
# torhostg5s7pa2sn.onion; addresses cannot be forged offline, so the
# generator derives a fresh onion for it and keeps this label for reports).
TORHOST_LABEL = "Tor Host"

def words_for_topic(topic: str) -> List[str]:
    """Vocabulary of ``topic``; raises KeyError for unknown topics."""
    return TOPIC_VOCABULARY[topic]


def words_for_language(language: str) -> List[str]:
    """Vocabulary of ``language``; raises KeyError for unknown languages."""
    return LANGUAGE_VOCABULARY[language]
