"""Calibration of the synthetic hidden-service population.

Every quantity here is *ground truth at generation time*; the measurement
pipeline recovers the paper's published numbers through the same losses the
authors had:

* The port scanner achieves ~87% coverage (hosts churn across the scan
  days), so true port counts are the Fig 1 counts inflated by 1/0.87.
* The crawl runs two months later; web hosts survive with p≈0.93, SSH with
  p≈0.88, and miscellaneous ports mostly stop answering (p≈0.30 end to
  end), reproducing Table I's funnel (8,153 tried → 7,114 open → 6,579
  connectable).
* Content quotas are the Fig 2 / Section IV numbers inflated by
  1/(0.87·0.93) so the *classified* counts land on the paper's.

The derivation for each constant is in DESIGN.md §4 and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.errors import PopulationError

# Ports with dedicated meanings in the study.
PORT_HTTP = 80
PORT_HTTPS = 443
PORT_SSH = 22
PORT_SKYNET = 55080
PORT_TORCHAT = 11009
PORT_4050 = 4050
PORT_IRC = 6667

# Candidate "other" ports (the paper saw 495 unique port numbers in total;
# beyond the seven named ones the rest spread over ~488 numbers).  A spread
# of well-known-ish and ephemeral ports; the generator draws from these.
OTHER_PORT_CANDIDATES: Tuple[int, ...] = tuple(
    [8080, 8443, 8000, 8888, 3000, 5000, 5222, 5269, 6666, 6668, 6669,
     6697, 7000, 8333, 18333, 9001, 9030, 9050, 9150, 2222, 2200, 21, 25,
     110, 143, 465, 587, 993, 995, 119, 563, 70, 79, 3128, 1080, 4444,
     5900, 5901, 6000, 3306, 5432, 27017, 11371, 64738]
    + list(range(10000, 10222))
    + list(range(20000, 20222))
    + list(range(30000, 30120))
)

# Fig 2 topic shares (percent) — they sum to 100.
TOPIC_SHARES: Dict[str, int] = {
    "adult": 17,
    "drugs": 15,
    "politics": 9,
    "counterfeit": 8,
    "anonymity": 8,
    "software_hardware": 7,
    "security": 5,
    "weapon": 4,
    "faq_tutorials": 4,
    "services": 4,
    "digital_libs": 4,
    "technology": 4,
    "hacking": 3,
    "other": 3,
    "art": 2,
    "games": 1,
    "science": 1,
    "sports": 1,
}

# Table II named head: (label, requests per 2-hour window).  Labels reuse
# the paper's service names; onion addresses are generated (v2 addresses
# cannot be forged offline, see DESIGN.md §2).
NAMED_SERVICE_RATES: Tuple[Tuple[str, int], ...] = (
    ("goldnet-1", 13714),
    ("goldnet-2", 11582),
    ("goldnet-3", 11315),
    ("goldnet-4", 7324),
    ("goldnet-5", 7183),
    ("goldnet-6", 6852),
    ("goldnet-7", 6528),
    ("goldnet-8", 4941),
    ("goldnet-9", 3000),
    ("bcmine-1", 3746),
    ("skynet-cc-1", 3678),
    ("adult-pop-1", 2573),
    ("skynet-cc-2", 1950),
    ("adult-pop-2", 1863),
    ("adult-pop-3", 1665),
    ("adult-pop-4", 1631),
    ("skynet-cc-3", 1481),
    ("skynet-cc-4", 1326),
    ("silkroad", 1175),
    ("adult-pop-5", 1094),
    ("skynet-cc-5", 1021),
    ("skynet-cc-6", 942),
    ("skynet-cc-7", 899),
    ("skynet-cc-8", 898),
    ("adult-pop-6", 889),
    ("skynet-cc-9", 781),
    ("unknown-pop-1", 746),
    ("freedom-hosting", 694),
    ("skynet-cc-10", 667),
    ("adult-pop-7", 585),
    ("adult-pop-8", 542),
    ("silkroad-wiki", 453),
    ("tordir", 255),
    ("blackmarket-reloaded", 172),
    ("duckduckgo", 55),
    ("onion-bookmarks", 30),
    ("torhost-main", 10),
)

# Section IV: there were 15 addresses with a "silkroa" prefix, at least one
# a phishing clone of the real login page (13 clones + the real market and
# the forum = 15).  This is the full-scale default; PopulationSpec scales it.
SILKROAD_PHISHING_CLONES = 13


@dataclass(frozen=True)
class PopulationSpec:
    """Ground-truth quotas for one generated world (full scale by default).

    All ``*_count`` fields are *true* (generation-time) counts; see the
    module docstring for how they map to the paper's observed numbers.
    """

    # Harvest universe -------------------------------------------------- #
    total_onions: int = 39_824  # kept as a consistency target, see below
    dead_by_scan_count: int = 15_313  # harvested 4 Feb, gone by the scans

    # Botnets ------------------------------------------------------------ #
    skynet_bot_count: int = 15_900  # port 55080 only → found ≈ 13,854
    skynet_cc_count: int = 10
    bcmine_count: int = 2
    goldnet_front_count: int = 9
    goldnet_server_split: Tuple[int, ...] = (5, 4)  # two physical machines

    # Web sites (per true composition; see DESIGN.md derivation) --------- #
    torhost_default_count: int = 990  # default hosting page (→ ~805)
    torhost_content_count: int = 350  # real sites on TorHost
    deanon_cert_count: int = 39  # HTTPS cert names a public DNS host (→ 34)
    dual_mismatch_cert_count: int = 65  # self-signed, CN ≠ host, not TorHost
    dual_matching_cert_count: int = 25  # self-signed but CN matches host
    https_only_count: int = 110  # content sites on 443 only
    http_content_count: int = 2_196  # content sites on port 80 only
    error_page_count: int = 80  # "error message embedded in an HTML page"
    short_page_count: int = 990  # < 20 words → excluded by the crawler

    # Non-web services ---------------------------------------------------- #
    ssh_count: int = 1_400  # port 22, banner only (→ found ≈ 1,218)
    torchat_count: int = 440  # port 11009
    port4050_count: int = 158
    irc_count: int = 130
    port8080_count: int = 8  # HTTP-alt services that answer (Table I: 4)
    misc_onion_count: int = 710  # 1–2 random "other" ports each
    misc_ports_per_onion_max: int = 2

    # Content mix --------------------------------------------------------- #
    english_fraction: float = 0.808  # of real-content sites → 84% measured
    # (non-English spread uniformly over the 16 other languages)

    # Popularity ----------------------------------------------------------- #
    named_rates: Tuple[Tuple[str, int], ...] = NAMED_SERVICE_RATES
    silkroad_phishing_count: int = SILKROAD_PHISHING_CLONES
    tail_onion_count: int = 3_104
    tail_request_total: int = 44_000
    ghost_onion_count: int = 11_500
    # Phantom *fetch operations*.  A fetch for a never-published descriptor
    # fails at every responsible directory, so each one is logged ~3× (once
    # per directory tried); 250k phantom fetches therefore produce ≈ 750k
    # logged requests — the ~80% never-published share of the paper's
    # 1,031,176 logged total.
    ghost_request_total: int = 250_000

    # Churn / availability -------------------------------------------------- #
    scan_down_day_probability: float = 0.13  # → ~87% port coverage
    web_crawl_survival: float = 0.929
    https_crawl_survival: float = 0.944
    ssh_crawl_survival: float = 0.884
    misc_crawl_open: float = 0.62  # misc port still open at crawl
    misc_crawl_connect: float = 0.48  # …and answers the HTTP-ish probe

    def __post_init__(self) -> None:
        if not 0 < self.english_fraction <= 1:
            raise PopulationError(
                f"english_fraction out of range: {self.english_fraction}"
            )
        for name, value in (
            ("scan_down_day_probability", self.scan_down_day_probability),
            ("web_crawl_survival", self.web_crawl_survival),
            ("https_crawl_survival", self.https_crawl_survival),
            ("ssh_crawl_survival", self.ssh_crawl_survival),
            ("misc_crawl_open", self.misc_crawl_open),
            ("misc_crawl_connect", self.misc_crawl_connect),
        ):
            if not 0 <= value <= 1:
                raise PopulationError(f"{name} out of range: {value}")
        if sum(self.goldnet_server_split) != self.goldnet_front_count:
            raise PopulationError(
                "goldnet_server_split must sum to goldnet_front_count"
            )

    # ------------------------------------------------------------------ #

    @property
    def alive_at_scan_count(self) -> int:
        """Onions whose descriptors are still published at scan time."""
        return (
            1  # the TorHost hosting service itself
            + self.port8080_count
            + self.silkroad_phishing_count
            + self.skynet_bot_count
            + self.skynet_cc_count
            + self.bcmine_count
            + self.goldnet_front_count
            + self.torhost_default_count
            + self.torhost_content_count
            + self.deanon_cert_count
            + self.dual_mismatch_cert_count
            + self.dual_matching_cert_count
            + self.https_only_count
            + self.http_content_count
            + self.error_page_count
            + self.short_page_count
            + self.ssh_count
            + self.torchat_count
            + self.port4050_count
            + self.irc_count
            + self.misc_onion_count
            + self.no_port_count
        )

    @property
    def no_port_count(self) -> int:
        """Alive onions with no open ports at all (derived residual)."""
        accounted = (
            self.skynet_bot_count
            + self.skynet_cc_count
            + self.bcmine_count
            + self.goldnet_front_count
            + self.torhost_default_count
            + self.torhost_content_count
            + self.deanon_cert_count
            + self.dual_mismatch_cert_count
            + self.dual_matching_cert_count
            + self.https_only_count
            + self.http_content_count
            + self.error_page_count
            + self.short_page_count
            + self.ssh_count
            + self.torchat_count
            + self.port4050_count
            + self.irc_count
            + self.port8080_count
            + self.misc_onion_count
            + self.silkroad_phishing_count
            + 1  # the TorHost hosting service itself
        )
        residual = self.total_onions - self.dead_by_scan_count - accounted
        if residual < 0:
            raise PopulationError(
                "group quotas exceed total_onions - dead_by_scan_count"
            )
        return residual

    @property
    def real_content_count(self) -> int:
        """Content sites excluding TorHost default pages."""
        return (
            self.torhost_content_count
            + self.deanon_cert_count
            + self.dual_mismatch_cert_count
            + self.dual_matching_cert_count
            + self.https_only_count
            + self.http_content_count
        )

    def scaled(self, scale: float) -> "PopulationSpec":
        """A proportionally smaller (or larger) world.

        Counts scale multiplicatively with a floor that keeps every group
        non-degenerate; request totals and named rates scale with volume so
        the popularity *shape* is preserved.  ``scale=1`` is the paper's
        world.
        """
        if scale <= 0:
            raise PopulationError(f"scale must be positive: {scale}")
        if scale == 1.0:
            return self

        def n(value: int, minimum: int = 1) -> int:
            return max(minimum, round(value * scale))

        goldnet = max(2, round(self.goldnet_front_count * scale))
        split_a = max(1, goldnet // 2 + goldnet % 2)
        split_b = goldnet - split_a
        if split_b == 0:
            split_a, split_b = goldnet - 1, 1
        named = tuple(
            (label, max(2, round(rate * scale))) for label, rate in self.named_rates
        )
        scaled_spec = replace(
            self,
            dead_by_scan_count=n(self.dead_by_scan_count),
            skynet_bot_count=n(self.skynet_bot_count),
            skynet_cc_count=n(self.skynet_cc_count, 2),
            bcmine_count=n(self.bcmine_count, 1),
            goldnet_front_count=goldnet,
            goldnet_server_split=(split_a, split_b),
            torhost_default_count=n(self.torhost_default_count),
            torhost_content_count=n(self.torhost_content_count),
            deanon_cert_count=n(self.deanon_cert_count, 2),
            dual_mismatch_cert_count=n(self.dual_mismatch_cert_count, 2),
            dual_matching_cert_count=n(self.dual_matching_cert_count, 1),
            https_only_count=n(self.https_only_count, 2),
            http_content_count=n(self.http_content_count, len(TOPIC_SHARES)),
            error_page_count=n(self.error_page_count, 2),
            short_page_count=n(self.short_page_count, 2),
            ssh_count=n(self.ssh_count, 2),
            torchat_count=n(self.torchat_count, 1),
            port4050_count=n(self.port4050_count, 1),
            irc_count=n(self.irc_count, 1),
            port8080_count=n(self.port8080_count, 1),
            misc_onion_count=n(self.misc_onion_count, 2),
            named_rates=named,
            silkroad_phishing_count=n(self.silkroad_phishing_count, 1),
            tail_onion_count=n(self.tail_onion_count, 10),
            tail_request_total=n(self.tail_request_total, 50),
            ghost_onion_count=n(self.ghost_onion_count, 10),
            ghost_request_total=n(self.ghost_request_total, 100),
        )
        # total_onions is a derived consistency target at non-unit scales.
        accounted = (
            scaled_spec.skynet_bot_count
            + scaled_spec.skynet_cc_count
            + scaled_spec.bcmine_count
            + scaled_spec.goldnet_front_count
            + scaled_spec.torhost_default_count
            + scaled_spec.torhost_content_count
            + scaled_spec.deanon_cert_count
            + scaled_spec.dual_mismatch_cert_count
            + scaled_spec.dual_matching_cert_count
            + scaled_spec.https_only_count
            + scaled_spec.http_content_count
            + scaled_spec.error_page_count
            + scaled_spec.short_page_count
            + scaled_spec.ssh_count
            + scaled_spec.torchat_count
            + scaled_spec.port4050_count
            + scaled_spec.irc_count
            + scaled_spec.port8080_count
            + scaled_spec.misc_onion_count
            + scaled_spec.silkroad_phishing_count
            + 1  # the TorHost hosting service itself
        )
        no_port = max(0, round(919 * scale))
        return replace(
            scaled_spec,
            total_onions=accounted + no_port + scaled_spec.dead_by_scan_count,
        )
