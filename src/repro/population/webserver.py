"""Application-layer behaviour of hidden-service hosts.

The scanner sees ports; the crawler speaks HTTP.  This module provides the
HTTP(S) applications the population attaches to endpoints:

* :class:`StaticSite` — an ordinary page (topic/language content, TorHost
  default pages, short pages, embedded error pages).
* :class:`GoldnetApp` — the probable-botnet signature from Section V: port
  80 only, ``503 Server Error`` on every page *except* a reachable Apache
  ``/server-status`` whose uptime, traffic (~330 kB/s) and request rate
  (~10 req/s, almost all POST) expose that several onion addresses front
  the same physical machine.
* :class:`TlsCertificate` — certificate metadata for HTTPS endpoints; the
  Section III analysis counts self-signed CN mismatches, the 1,168 TorHost
  certificates, and the 34 certificates whose public DNS common names
  deanonymise their operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.clock import Timestamp


@dataclass
class HttpResponse:
    """A minimal HTTP response."""

    status: int
    body: str = ""
    content_type: str = "text/html"
    server: str = "Apache/2.2.22 (Debian)"

    @property
    def ok(self) -> bool:
        """2xx?"""
        return 200 <= self.status < 300


@dataclass(frozen=True)
class TlsCertificate:
    """The certificate fields the Section III analysis inspects."""

    common_name: str
    self_signed: bool
    issuer: str = ""

    def matches_host(self, onion: str) -> bool:
        """Whether the CN matches the requested onion host name."""
        return self.common_name == onion

    @property
    def names_public_dns(self) -> bool:
        """CN is a clearnet DNS name (deanonymises the operator)."""
        return (
            not self.common_name.endswith(".onion")
            and "." in self.common_name
        )


@dataclass
class StaticSite:
    """A static page served on every path."""

    html: str
    title: str = ""
    certificate: Optional[TlsCertificate] = None

    def handle_request(self, path: str, now: Timestamp) -> HttpResponse:
        """Serve the page regardless of ``path``."""
        return HttpResponse(status=200, body=self.html)


@dataclass
class PhysicalServer:
    """A machine that may sit behind several onion addresses.

    The paper grouped the Goldnet front addresses into two physical servers
    by their *identical Apache uptimes* on the server-status pages.
    """

    server_id: int
    booted_at: Timestamp
    traffic_bytes_per_sec: int = 330_000
    requests_per_sec: float = 10.0

    def uptime(self, now: Timestamp) -> int:
        """Seconds since boot — equal across all fronts of this machine."""
        return max(0, int(now) - self.booted_at)


@dataclass
class GoldnetApp:
    """The Goldnet C&C front: 503 everywhere, server-status exposed."""

    server: PhysicalServer
    certificate: Optional[TlsCertificate] = None
    post_fraction: float = 0.98

    def handle_request(self, path: str, now: Timestamp) -> HttpResponse:
        """503 on all paths except the forgotten ``/server-status``."""
        if path.rstrip("/").endswith("server-status"):
            return HttpResponse(status=200, body=self._status_page(now))
        return HttpResponse(
            status=503,
            body="<html><body><h1>503 Service Unavailable</h1></body></html>",
        )

    def _status_page(self, now: Timestamp) -> str:
        uptime = self.server.uptime(now)
        total_accesses = int(self.server.requests_per_sec * uptime)
        total_kbytes = self.server.traffic_bytes_per_sec * uptime // 1024
        post_percent = round(self.post_fraction * 100, 1)
        return (
            "<html><head><title>Apache Status</title></head><body>"
            "<h1>Apache Server Status</h1>"
            f"<dl><dt>Server uptime: {uptime} seconds</dt>"
            f"<dt>Total accesses: {total_accesses} - Total Traffic: "
            f"{total_kbytes} kB</dt>"
            f"<dt>{self.server.requests_per_sec:.3g} requests/sec - "
            f"{self.server.traffic_bytes_per_sec / 1024:.4g} kB/second</dt>"
            f"<dt>Method breakdown: POST {post_percent}% GET "
            f"{round(100 - post_percent, 1)}%</dt>"
            f"<dt>ServerID: srv{self.server.server_id}</dt></dl>"
            "</body></html>"
        )


@dataclass
class SkynetPortBehavior:
    """Marker application attached to Skynet's port 55080 endpoints.

    The endpoint itself is configured with ``abnormal_error=True``; this
    object only exists so forensic code can recognise the planted ground
    truth in tests.  The malware "immediately closes any connection to this
    port unless it has been set up as a connection forwarder".
    """

    bot_id: int = 0
