"""Builds the synthetic hidden-service world.

:func:`generate_population` turns a :class:`~repro.population.spec.PopulationSpec`
into ~40k concrete hidden services — keys, hosts, endpoints, page content,
certificates, botnet behaviours, availability windows — plus the ground-truth
indexes the tests validate against and the workload builder for Section V.

The generator is the *only* component allowed to see everything at once;
measurement code receives just the onion registry (point lookups) and the
network facade.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.client.workload import WorkloadSpec
from repro.crypto.keys import KeyPair
from repro.crypto.onion import OnionAddress, onion_address_from_key
from repro.errors import PopulationError
from repro.hs.service import HiddenService
from repro.net.endpoint import ServiceEndpoint, SimpleHost
from repro.net.transport import OnionRegistry
from repro.population import botnets
from repro.population.content import (
    ssh_banner,
    synth_error_page,
    synth_language_page,
    synth_short_page,
    synth_topic_page,
    wrap_html,
)
from repro.population.corpus import (
    NON_ENGLISH_LANGUAGES,
    TORHOST_DEFAULT_PAGE,
)
from repro.population.spec import (
    OTHER_PORT_CANDIDATES,
    PORT_4050,
    PORT_HTTP,
    PORT_HTTPS,
    PORT_IRC,
    PORT_SSH,
    PORT_TORCHAT,
    TOPIC_SHARES,
    PopulationSpec,
)
from repro.population.webserver import StaticSite, TlsCertificate
from repro.sim.clock import DAY, Timestamp, day_number, parse_date
from repro.sim.rng import derive_rng

# Default timeline (the paper's calendar).
HARVEST_DATE = parse_date("2013-02-04")
SCAN_START = parse_date("2013-02-14")
SCAN_END = parse_date("2013-02-21")  # inclusive: 8 scan days
CRAWL_DATE = parse_date("2013-04-15")


@dataclass
class HiddenServiceRecord:
    """One generated hidden service with its ground-truth annotations."""

    service: HiddenService
    group: str
    label: str = ""
    topic: Optional[str] = None
    language: Optional[str] = None
    content_kind: str = "none"  # topic | default | short | error | banner | goldnet | none

    @property
    def onion(self) -> OnionAddress:
        """The record's onion address."""
        return self.service.onion


@dataclass
class GeneratedPopulation:
    """The generated world plus ground-truth indexes."""

    spec: PopulationSpec
    seed: int
    records: List[HiddenServiceRecord]
    registry: OnionRegistry
    named_onions: Dict[str, OnionAddress]
    ghost_onions: List[OnionAddress]
    tail_onions: List[OnionAddress]
    harvest_date: Timestamp = HARVEST_DATE
    scan_start: Timestamp = SCAN_START
    scan_end: Timestamp = SCAN_END
    crawl_date: Timestamp = CRAWL_DATE
    _by_onion: Dict[OnionAddress, HiddenServiceRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_onion:
            self._by_onion = {record.onion: record for record in self.records}

    @property
    def services(self) -> List[HiddenService]:
        """All generated hidden services."""
        return [record.service for record in self.records]

    @property
    def all_onions(self) -> List[OnionAddress]:
        """Every published onion address (what a full harvest would yield)."""
        return [record.onion for record in self.records]

    def record_for(self, onion: OnionAddress) -> Optional[HiddenServiceRecord]:
        """Ground-truth record behind ``onion`` (tests only)."""
        return self._by_onion.get(onion)

    def descriptor_available(self, onion: OnionAddress, now: Timestamp) -> bool:
        """Whether ``onion``'s descriptor is fetchable at ``now``.

        Availability tracks the publication window: a service that stopped
        publishing has no current descriptor (the 24-hour tail after death
        is below the resolution of the multi-day scan schedule).
        """
        record = self._by_onion.get(onion)
        if record is None:
            return False
        return record.service.is_online(now)

    def records_in_group(self, group: str) -> List[HiddenServiceRecord]:
        """All records with ground-truth group ``group``."""
        return [record for record in self.records if record.group == group]

    def build_workload_spec(
        self,
        window_start: Timestamp,
        window_end: Timestamp,
        client_count: int = 500,
    ) -> WorkloadSpec:
        """The Section V client workload for a harvest window."""
        named_rates = {
            self.named_onions[label]: rate
            for label, rate in self.spec.named_rates
            if label in self.named_onions
        }
        return WorkloadSpec(
            window_start=window_start,
            window_end=window_end,
            named_rates=named_rates,
            tail_onions=list(self.tail_onions),
            tail_total=self.spec.tail_request_total,
            ghost_onions=list(self.ghost_onions),
            ghost_total=self.spec.ghost_request_total,
            client_count=client_count,
        )


class _Builder:
    """Stateful helper that accumulates records while generating."""

    def __init__(self, spec: PopulationSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed
        self.records: List[HiddenServiceRecord] = []
        self.registry = OnionRegistry()
        self.named_onions: Dict[str, OnionAddress] = {}
        self._keys_rng = derive_rng(seed, "population", "keys")
        self._scan_days = [
            day_number(SCAN_START) + offset
            for offset in range((SCAN_END - SCAN_START) // DAY + 1)
        ]

    # -- primitives ---------------------------------------------------- #

    def _new_service(
        self,
        host: SimpleHost,
        online_until: Optional[Timestamp],
        birth_rng: random.Random,
        keypair: Optional[KeyPair] = None,
    ) -> HiddenService:
        if keypair is None:
            keypair = KeyPair.generate(self._keys_rng)
        online_from = HARVEST_DATE - birth_rng.randint(10, 400) * DAY
        host.online_from = online_from
        host.online_until = online_until
        return HiddenService(
            keypair=keypair,
            host=host,
            online_from=online_from,
            online_until=online_until,
        )

    def _add(self, record: HiddenServiceRecord) -> HiddenServiceRecord:
        self.records.append(record)
        self.registry.register(record.onion, record.service.host)
        return record

    def _survival_until(
        self, rng: random.Random, survives_crawl: bool
    ) -> Optional[Timestamp]:
        """Death time for scan-alive hosts: None if alive at crawl."""
        if survives_crawl:
            return None
        # Dies after the scan window but before the crawl.
        span = (CRAWL_DATE - DAY) - (SCAN_END + DAY)
        return SCAN_END + DAY + rng.randrange(max(1, span))

    def _scan_down_days(self, rng: random.Random) -> frozenset:
        p = self.spec.scan_down_day_probability
        return frozenset(day for day in self._scan_days if rng.random() < p)

    def _mint_cert_onion(self) -> OnionAddress:
        """A fresh onion address used only as a certificate CN."""
        return onion_address_from_key(self._keys_rng.randbytes(140))

    # -- groups ---------------------------------------------------------- #

    def build_dead(self) -> None:
        """Services harvested on 4 Feb but gone before the scans."""
        rng = derive_rng(self.seed, "population", "dead")
        for _ in range(self.spec.dead_by_scan_count):
            host = SimpleHost()
            death = HARVEST_DATE + DAY + rng.randrange(8 * DAY)
            service = self._new_service(host, death, rng)
            self._add(HiddenServiceRecord(service=service, group="dead"))

    def build_no_port(self) -> None:
        """Alive services with no open ports at all."""
        rng = derive_rng(self.seed, "population", "no-port")
        for _ in range(self.spec.no_port_count):
            host = SimpleHost(down_days=self._scan_down_days(rng))
            service = self._new_service(host, None, rng)
            self._add(HiddenServiceRecord(service=service, group="no-port"))

    def build_skynet(self) -> None:
        """Skynet bots (port 55080) and the popular C&C / BcMine services."""
        rng = derive_rng(self.seed, "population", "skynet")
        for bot_id in range(self.spec.skynet_bot_count):
            host = botnets.make_skynet_bot_host(bot_id, 0, None)
            host.down_days = self._scan_down_days(rng)
            service = self._new_service(host, None, rng)
            self._add(HiddenServiceRecord(service=service, group="skynet-bot"))
        for index in range(self.spec.skynet_cc_count):
            host = SimpleHost()
            host.add_endpoint(
                ServiceEndpoint(
                    port=PORT_HTTP,
                    protocol="http",
                    application=StaticSite(
                        html=wrap_html("", synth_short_page(rng)), title=""
                    ),
                )
            )
            service = self._new_service(host, None, rng)
            self._add(
                HiddenServiceRecord(
                    service=service,
                    group="skynet-cc",
                    label=f"skynet-cc-{index + 1}",
                    content_kind="short",
                )
            )
            self.named_onions[f"skynet-cc-{index + 1}"] = service.onion
        for index in range(self.spec.bcmine_count):
            host = SimpleHost()
            host.add_endpoint(
                ServiceEndpoint(
                    port=PORT_HTTP,
                    protocol="http",
                    application=StaticSite(
                        html=wrap_html("", synth_short_page(rng)), title=""
                    ),
                )
            )
            service = self._new_service(host, None, rng)
            self._add(
                HiddenServiceRecord(
                    service=service,
                    group="bcmine",
                    label=f"bcmine-{index + 1}",
                    content_kind="short",
                )
            )
            self.named_onions[f"bcmine-{index + 1}"] = service.onion

    def build_goldnet(self) -> None:
        """The nine 503-everywhere fronts on two physical machines."""
        rng = derive_rng(self.seed, "population", "goldnet")
        servers = botnets.make_goldnet_servers(
            self.spec.goldnet_server_split, HARVEST_DATE - 10 * DAY, rng
        )
        front = 0
        for server, count in zip(servers, self.spec.goldnet_server_split):
            for _ in range(count):
                front += 1
                host = botnets.make_goldnet_front_host(server, 0)
                service = self._new_service(host, None, rng)
                label = f"goldnet-{front}"
                self._add(
                    HiddenServiceRecord(
                        service=service,
                        group="goldnet",
                        label=label,
                        content_kind="goldnet",
                    )
                )
                self.named_onions[label] = service.onion

    # -- web content ------------------------------------------------------ #

    def _content_assignments(self, rng: random.Random) -> List[Tuple[str, Optional[str]]]:
        """(language, topic) pairs for every real-content site.

        English sites get Fig 2 topics; non-English sites get a language and
        no topic label (the paper only topic-classified English pages).
        """
        total = self.spec.real_content_count
        english = round(total * self.spec.english_fraction)
        non_english = total - english
        assignments: List[Tuple[str, Optional[str]]] = []
        share_total = sum(TOPIC_SHARES.values())
        allocated = 0
        topics = list(TOPIC_SHARES.items())
        for topic, share in topics[:-1]:
            count = round(english * share / share_total)
            assignments.extend(("en", topic) for _ in range(count))
            allocated += count
        last_topic = topics[-1][0]
        assignments.extend(("en", last_topic) for _ in range(english - allocated))
        for index in range(non_english):
            language = NON_ENGLISH_LANGUAGES[index % len(NON_ENGLISH_LANGUAGES)]
            assignments.append((language, None))
        rng.shuffle(assignments)
        return assignments

    def _make_site(
        self, language: str, topic: Optional[str], rng: random.Random
    ) -> StaticSite:
        words = rng.randint(60, 320)
        if language == "en" and topic is not None:
            body = synth_topic_page(topic, rng, word_count=words)
        else:
            body = synth_language_page(language, rng, word_count=words)
        return StaticSite(html=wrap_html("", body))

    def _web_record(
        self,
        group: str,
        site: StaticSite,
        rng: random.Random,
        https: bool,
        http: bool = True,
        certificate: Optional[TlsCertificate] = None,
        survival: Optional[float] = None,
        topic: Optional[str] = None,
        language: Optional[str] = None,
        content_kind: str = "topic",
    ) -> HiddenServiceRecord:
        if survival is None:
            survival = self.spec.web_crawl_survival
        host = SimpleHost(down_days=self._scan_down_days(rng))
        if http:
            host.add_endpoint(
                ServiceEndpoint(port=PORT_HTTP, protocol="http", application=site)
            )
        if https:
            https_site = StaticSite(html=site.html, certificate=certificate)
            host.add_endpoint(
                ServiceEndpoint(
                    port=PORT_HTTPS, protocol="https", application=https_site
                )
            )
        online_until = self._survival_until(rng, rng.random() < survival)
        service = self._new_service(host, online_until, rng)
        return self._add(
            HiddenServiceRecord(
                service=service,
                group=group,
                topic=topic,
                language=language,
                content_kind=content_kind,
            )
        )

    def build_web(self) -> None:
        """All ordinary web sites: content, TorHost, certs, short, error."""
        spec = self.spec
        rng = derive_rng(self.seed, "population", "web")
        assignments = self._content_assignments(rng)
        cursor = 0

        def next_assignment() -> Tuple[str, Optional[str]]:
            nonlocal cursor
            language, topic = assignments[cursor]
            cursor += 1
            return language, topic

        # The hosting service itself, first: its onion is the cert CN used
        # by every hosted site.
        torhost_site = self._make_site("en", "services", rng)
        torhost_record = self._web_record(
            "torhost-main",
            torhost_site,
            rng,
            https=False,
            survival=1.0,
            topic="services",
            language="en",
        )
        torhost_record.label = "torhost-main"
        self.named_onions["torhost-main"] = torhost_record.onion
        torhost_cn = torhost_record.onion

        for _ in range(spec.torhost_default_count):
            site = StaticSite(html=wrap_html("", TORHOST_DEFAULT_PAGE))
            cert = TlsCertificate(common_name=torhost_cn, self_signed=True)
            self._web_record(
                "torhost-default",
                site,
                rng,
                https=True,
                certificate=cert,
                language="en",
                content_kind="default",
            )
        for _ in range(spec.torhost_content_count):
            language, topic = next_assignment()
            site = self._make_site(language, topic, rng)
            cert = TlsCertificate(common_name=torhost_cn, self_signed=True)
            self._web_record(
                "torhost-content",
                site,
                rng,
                https=True,
                certificate=cert,
                topic=topic,
                language=language,
            )
        for index in range(spec.deanon_cert_count):
            language, topic = next_assignment()
            site = self._make_site(language, topic, rng)
            cert = TlsCertificate(
                common_name=f"shop{index}.example{index % 7}.com",
                self_signed=False,
                issuer="Example CA",
            )
            self._web_record(
                "deanon-cert",
                site,
                rng,
                https=True,
                certificate=cert,
                topic=topic,
                language=language,
            )
        for _ in range(spec.dual_mismatch_cert_count):
            language, topic = next_assignment()
            site = self._make_site(language, topic, rng)
            cert = TlsCertificate(common_name=self._mint_cert_onion(), self_signed=True)
            self._web_record(
                "dual-mismatch-cert",
                site,
                rng,
                https=True,
                certificate=cert,
                topic=topic,
                language=language,
            )
        for _ in range(spec.dual_matching_cert_count):
            language, topic = next_assignment()
            site = self._make_site(language, topic, rng)
            record = self._web_record(
                "dual-matching-cert",
                site,
                rng,
                https=False,  # placeholder; cert needs the record's onion
                topic=topic,
                language=language,
            )
            cert = TlsCertificate(common_name=record.onion, self_signed=True)
            https_site = StaticSite(html=site.html, certificate=cert)
            record.service.host.add_endpoint(
                ServiceEndpoint(port=PORT_HTTPS, protocol="https", application=https_site)
            )
        for _ in range(spec.https_only_count):
            language, topic = next_assignment()
            site = self._make_site(language, topic, rng)
            record = self._web_record(
                "https-only",
                site,
                rng,
                https=False,
                http=False,
                survival=spec.https_crawl_survival,
                topic=topic,
                language=language,
            )
            cert = TlsCertificate(common_name=record.onion, self_signed=True)
            https_site = StaticSite(html=site.html, certificate=cert)
            record.service.host.add_endpoint(
                ServiceEndpoint(port=PORT_HTTPS, protocol="https", application=https_site)
            )
        for _ in range(spec.http_content_count):
            language, topic = next_assignment()
            site = self._make_site(language, topic, rng)
            self._web_record(
                "http-content", site, rng, https=False, topic=topic, language=language
            )
        for _ in range(spec.error_page_count):
            site = StaticSite(html=wrap_html("", synth_error_page(rng)))
            self._web_record(
                "error-page", site, rng, https=False, content_kind="error"
            )
        for _ in range(spec.short_page_count):
            site = StaticSite(html=wrap_html("", synth_short_page(rng)))
            self._web_record(
                "short-page", site, rng, https=False, content_kind="short"
            )

    def build_phishing(self) -> None:
        """Silk Road look-alikes with vanity-ground onion prefixes.

        Section IV: 15 addresses shared the "silkroa" prefix; at least one
        was a phishing clone of the real login page.  A 7-character prefix
        costs ~32⁷ hashes (GPU territory); a 3-character prefix reproduces
        the phenomenon — same grinding loop, same look-alike directory
        entries — at 32³ expected hashes per clone.
        """
        from repro.crypto.vanity import grind_vanity_onion

        rng = derive_rng(self.seed, "population", "phishing")
        for index in range(self.spec.silkroad_phishing_count):
            keypair = grind_vanity_onion("sil", self._keys_rng)
            site = self._make_site("en", "counterfeit", rng)
            host = SimpleHost(down_days=self._scan_down_days(rng))
            host.add_endpoint(
                ServiceEndpoint(port=PORT_HTTP, protocol="http", application=site)
            )
            service = self._new_service(host, None, rng, keypair=keypair)
            label = f"silkroad-phishing-{index + 1}"
            record = self._add(
                HiddenServiceRecord(
                    service=service,
                    group="silkroad-phishing",
                    label=label,
                    topic="counterfeit",
                    language="en",
                    content_kind="topic",
                )
            )
            self.named_onions[label] = record.onion

    def build_non_web(self) -> None:
        """SSH, TorChat, IRC, port 4050, and miscellaneous high ports."""
        spec = self.spec
        rng = derive_rng(self.seed, "population", "non-web")
        for _ in range(spec.ssh_count):
            host = SimpleHost(down_days=self._scan_down_days(rng))
            host.add_endpoint(
                ServiceEndpoint(port=PORT_SSH, protocol="ssh", banner=ssh_banner(rng))
            )
            online_until = self._survival_until(
                rng, rng.random() < spec.ssh_crawl_survival
            )
            service = self._new_service(host, online_until, rng)
            self._add(
                HiddenServiceRecord(
                    service=service, group="ssh", content_kind="banner"
                )
            )
        misc_groups = (
            ("torchat", [PORT_TORCHAT], spec.torchat_count, "TorChat"),
            ("port4050", [PORT_4050], spec.port4050_count, ""),
            ("irc", [PORT_IRC], spec.irc_count, ":irc.onion NOTICE AUTH"),
        )
        for group, ports, count, banner_stem in misc_groups:
            for _ in range(count):
                self._misc_record(group, ports, banner_stem, rng)
        for _ in range(spec.port8080_count):
            # HTTP-alt services that actually answer (Table I's small
            # dedicated "8080" row).
            self._misc_record(
                "port8080", [8080], "HTTP/1.0 200 OK alt-port", rng, speaks=True
            )
        for _ in range(spec.misc_onion_count):
            port_count = rng.randint(1, spec.misc_ports_per_onion_max)
            ports = rng.sample(OTHER_PORT_CANDIDATES, port_count)
            self._misc_record("misc-port", ports, "", rng)

    def _misc_record(
        self,
        group: str,
        ports: List[int],
        banner_stem: str,
        rng: random.Random,
        speaks: Optional[bool] = None,
    ) -> None:
        spec = self.spec
        host = SimpleHost(down_days=self._scan_down_days(rng))
        if speaks is None:
            # Conditional on surviving to the crawl: does the service say
            # anything to an HTTP-ish probe?
            speaks = rng.random() < spec.misc_crawl_connect
        for port in ports:
            banner = ""
            if speaks:
                banner = banner_stem or f"220 service ready on {port}"
            host.add_endpoint(
                ServiceEndpoint(port=port, protocol="other", banner=banner)
            )
        online_until = self._survival_until(
            rng, rng.random() < spec.misc_crawl_open
        )
        service = self._new_service(host, online_until, rng)
        self._add(
            HiddenServiceRecord(
                service=service,
                group=group,
                content_kind="banner" if speaks else "none",
            )
        )

    # -- popularity labels -------------------------------------------------- #

    def assign_named_labels(self) -> None:
        """Bind the remaining Table II labels to suitable content sites."""
        rng = derive_rng(self.seed, "population", "labels")
        wanted: List[Tuple[str, Optional[str]]] = [
            ("silkroad", "drugs"),
            ("silkroad-wiki", "politics"),
            ("blackmarket-reloaded", "counterfeit"),
            ("freedom-hosting", "services"),
            ("tordir", "other"),
            ("duckduckgo", "technology"),
            ("onion-bookmarks", "other"),
            ("unknown-pop-1", None),
        ]
        wanted.extend((f"adult-pop-{i + 1}", "adult") for i in range(8))
        # (phishing clones are generated separately with vanity prefixes;
        # see build_phishing)
        unlabeled = [
            record
            for record in self.records
            if not record.label and record.content_kind == "topic"
        ]
        rng.shuffle(unlabeled)
        by_topic: Dict[str, List[HiddenServiceRecord]] = {}
        for record in unlabeled:
            if record.language == "en" and record.topic:
                by_topic.setdefault(record.topic, []).append(record)
        fallback = [r for r in unlabeled if r.language == "en"]
        for label, topic in wanted:
            pool = by_topic.get(topic, []) if topic else fallback
            record = None
            while pool:
                candidate = pool.pop()
                if not candidate.label:
                    record = candidate
                    break
            if record is None:
                while fallback:
                    candidate = fallback.pop()
                    if not candidate.label:
                        record = candidate
                        break
            if record is None:
                raise PopulationError(
                    f"no unlabeled content site available for {label!r}"
                )
            record.label = label
            # Popular services do not churn away mid-study.
            record.service.online_until = None
            record.service.host.online_until = None
            record.service.host.down_days = frozenset()
            self.named_onions[label] = record.onion


def generate_population(
    spec: Optional[PopulationSpec] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> GeneratedPopulation:
    """Generate a world.

    Args:
        spec: calibration; defaults to the paper's full-scale spec.
        seed: master seed; every sub-stream derives from it.
        scale: convenience shorthand for ``spec.scaled(scale)``.
    """
    spec = spec if spec is not None else PopulationSpec()
    if scale != 1.0:
        spec = spec.scaled(scale)
    builder = _Builder(spec, seed)
    builder.build_dead()
    builder.build_skynet()
    builder.build_goldnet()
    builder.build_web()
    builder.build_phishing()
    builder.build_non_web()
    builder.build_no_port()
    builder.assign_named_labels()

    ghost_rng = derive_rng(seed, "population", "ghosts")
    ghost_onions = [
        onion_address_from_key(ghost_rng.randbytes(140))
        for _ in range(spec.ghost_onion_count)
    ]

    tail_rng = derive_rng(seed, "population", "tail")
    labeled = {record.onion for record in builder.records if record.label}
    candidates = [
        record.onion
        for record in builder.records
        if record.onion not in labeled and record.group != "dead"
    ]
    tail_count = min(spec.tail_onion_count, len(candidates))
    tail_onions = tail_rng.sample(candidates, tail_count)

    return GeneratedPopulation(
        spec=spec,
        seed=seed,
        records=builder.records,
        registry=builder.registry,
        named_onions=builder.named_onions,
        ghost_onions=ghost_onions,
        tail_onions=tail_onions,
    )
