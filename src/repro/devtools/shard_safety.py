"""REP013: static race detection for callables handed to ``pmap``.

The deterministic executor's contract is that the mapped callable is a
pure-ish function of ``(item, its derived RNG)``: shard boundaries and
worker counts then cannot change results.  Four shapes break that
contract without breaking any test on the serial path:

* rebinding enclosing state (``nonlocal``/``global``) — workers mutate
  private copies, serial mutates the real one;
* mutating a shared argument or captured object in place (``item["x"] =``,
  ``acc.append(...)``) — order- and process-visibility-dependent;
* reading a *mutable* module global (a dict/list/set built at import
  time) — any writer anywhere races the map;
* drawing randomness from anything but the per-item stream — module-level
  ``random.*`` draws or a generator captured from an enclosing scope
  interleave across items, so results depend on shard order.

The rule resolves the callable at each ``pmap`` call site (lambda, local
or module-level ``def``, ``self.method``, ``functools.partial``) and
scans its body for those shapes.  Capturing enclosing objects and
*calling* them is deliberately allowed: the executor itself sanctions
closure-over-transport callables by falling back to the serial path, and
flagging every capture would bury the four real hazards in noise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.findings import Finding
from repro.devtools.registry import AstRule, FileContext, register
from repro.devtools.rules import PARALLEL_PACKAGE_FRAGMENT

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
        "write",
        "writelines",
    }
)

#: Calls whose result is a mutable container (for module-global scanning).
_MUTABLE_FACTORIES = frozenset(
    {"Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set"}
)

#: Callables whose result is a live RNG stream (for capture tracking).
_RNG_PRODUCER_NAMES = frozenset(
    {"Random", "derive_rng", "item_rng", "split_rng"}
)


def _param_names(fn: ast.AST) -> Set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs}
    names |= {a.arg for a in args.args}
    names |= {a.arg for a in args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _local_names(fn: ast.AST) -> Set[str]:
    """Names the callable itself binds (assignment/for/with/comprehensions)."""
    locals_: Set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                locals_.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                locals_.add(node.name)
            elif isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        locals_.add(target.id)
    return locals_


def _module_mutable_globals(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable containers at import time."""
    mutable: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        is_mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and (
                (
                    isinstance(value.func, ast.Name)
                    and value.func.id in _MUTABLE_FACTORIES
                )
                or (
                    isinstance(value.func, ast.Attribute)
                    and value.func.attr in _MUTABLE_FACTORIES
                )
            )
        )
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutable.add(target.id)
    return mutable


def _is_rng_producer_call(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in _RNG_PRODUCER_NAMES
    return isinstance(func, ast.Attribute) and func.attr in _RNG_PRODUCER_NAMES


def _enclosing_rng_names(scopes: Sequence[ast.AST]) -> Set[str]:
    """Names the enclosing scopes bind to RNG-producing calls."""
    names: Set[str] = set()
    for scope in scopes:
        body = scope.body if isinstance(scope.body, list) else [scope.body]
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if (
                    isinstance(node, ast.Assign)
                    and _is_rng_producer_call(node.value)
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and _is_rng_producer_call(node.value)
                    and isinstance(node.target, ast.Name)
                ):
                    names.add(node.target.id)
    return names


@register
class ShardSafetyRule(AstRule):
    """REP013: pmap callables must not share mutable state across items."""

    id = "REP013"
    summary = "pmap callable shares mutable state across items"

    def applies_to(self, ctx: FileContext) -> bool:
        # The executor package implements the machinery this rule guards.
        return PARALLEL_PACKAGE_FRAGMENT not in ctx.path

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        pmap_names = self._pmap_aliases(ctx)
        module_mutables = _module_mutable_globals(ctx.tree)
        for call, scopes in self._pmap_calls(ctx, pmap_names):
            fn_expr = self._fn_argument(call)
            if fn_expr is None:
                continue
            resolved = self._resolve_callable(ctx, fn_expr, scopes)
            if resolved is None:
                continue
            fn_node, fn_scopes = resolved
            yield from self._check_callable(
                ctx, call, fn_node, fn_scopes, module_mutables
            )

    # -- locating pmap call sites ------------------------------------------- #

    def _pmap_aliases(self, ctx: FileContext) -> Set[str]:
        """Local spellings of the executor's map: {"pmap", alias, "mod.pmap"}."""
        names: Set[str] = set()
        for node in ctx.nodes:
            if isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if base in ("repro.parallel", "repro.parallel.executor"):
                    for alias in node.names:
                        if alias.name == "pmap":
                            names.add(alias.asname or alias.name)
                        elif alias.name == "executor":
                            names.add(f"{alias.asname or alias.name}.pmap")
                elif base == "repro":
                    for alias in node.names:
                        if alias.name == "parallel":
                            names.add(f"{alias.asname or alias.name}.pmap")
        return names

    def _pmap_calls(
        self, ctx: FileContext, pmap_names: Set[str]
    ) -> Iterator[Tuple[ast.Call, Tuple[ast.AST, ...]]]:
        """(call, enclosing function scopes outermost-first) per pmap call."""
        if not pmap_names:
            return

        def spelling(func: ast.AST) -> Optional[str]:
            if isinstance(func, ast.Name):
                return func.id
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                return f"{func.value.id}.{func.attr}"
            return None

        def visit(node: ast.AST, scopes: Tuple[ast.AST, ...]) -> Iterator:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                scopes = scopes + (node,)
            if isinstance(node, ast.Call) and spelling(node.func) in pmap_names:
                yield node, scopes
            for child in ast.iter_child_nodes(node):
                yield from visit(child, scopes)

        yield from visit(ctx.tree, ())

    def _fn_argument(self, call: ast.Call) -> Optional[ast.AST]:
        for keyword in call.keywords:
            if keyword.arg == "fn":
                return keyword.value
        if call.args and not isinstance(call.args[0], ast.Starred):
            return call.args[0]
        return None

    # -- resolving the mapped callable -------------------------------------- #

    def _resolve_callable(
        self,
        ctx: FileContext,
        fn_expr: ast.AST,
        scopes: Tuple[ast.AST, ...],
    ) -> Optional[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
        """(callable node, its enclosing scopes), or None if unresolvable."""
        if isinstance(fn_expr, ast.Lambda):
            return fn_expr, scopes
        if (
            isinstance(fn_expr, ast.Call)
            and isinstance(fn_expr.func, (ast.Name, ast.Attribute))
            and (
                (isinstance(fn_expr.func, ast.Name) and fn_expr.func.id == "partial")
                or (
                    isinstance(fn_expr.func, ast.Attribute)
                    and fn_expr.func.attr == "partial"
                )
            )
            and fn_expr.args
        ):
            return self._resolve_callable(ctx, fn_expr.args[0], scopes)
        if isinstance(fn_expr, ast.Name):
            # Innermost enclosing scope defining the name wins, then module.
            for depth in range(len(scopes), -1, -1):
                container = scopes[depth - 1] if depth else ctx.tree
                body = (
                    container.body
                    if isinstance(container.body, list)
                    else [container.body]
                )
                for stmt in body:
                    if (
                        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name == fn_expr.id
                    ):
                        return stmt, scopes[:depth] if depth else ()
            return None
        if (
            isinstance(fn_expr, ast.Attribute)
            and isinstance(fn_expr.value, ast.Name)
            and fn_expr.value.id == "self"
        ):
            for node in ctx.nodes:
                if isinstance(node, ast.ClassDef):
                    for stmt in node.body:
                        if (
                            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                            and stmt.name == fn_expr.attr
                        ):
                            return stmt, ()
        return None

    # -- the checks ---------------------------------------------------------- #

    def _check_callable(
        self,
        ctx: FileContext,
        call: ast.Call,
        fn: ast.AST,
        scopes: Tuple[ast.AST, ...],
        module_mutables: Set[str],
    ) -> Iterator[Finding]:
        params = _param_names(fn)
        locals_ = _local_names(fn) | params
        rng_captures = _enclosing_rng_names(scopes)
        body = fn.body if isinstance(fn.body, list) else [fn.body]
        emitted: Set[Tuple[int, str]] = set()

        def finding(node: ast.AST, message: str) -> Optional[Finding]:
            line = getattr(node, "lineno", call.lineno)
            key = (line, message)
            if key in emitted:
                return None
            emitted.add(key)
            return Finding(
                rule=self.id,
                file=ctx.path,
                line=line,
                message=message,
                snippet=ctx.line_text(line),
            )

        for stmt in body:
            for node in ast.walk(stmt):
                result = self._check_node(
                    node, params, locals_, rng_captures, module_mutables, finding
                )
                for item in result:
                    if item is not None:
                        yield item

    def _check_node(
        self,
        node: ast.AST,
        params: Set[str],
        locals_: Set[str],
        rng_captures: Set[str],
        module_mutables: Set[str],
        finding,
    ) -> List[Optional[Finding]]:
        out: List[Optional[Finding]] = []
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(node, ast.Global) else "nonlocal"
            out.append(
                finding(
                    node,
                    f"pmap callable rebinds enclosing state via {kind} "
                    f"{', '.join(node.names)}; workers mutate private "
                    "copies while the serial path mutates the original — "
                    "return per-item results and merge after",
                )
            )
            return out
        base = self._mutation_base(node)
        if base is not None:
            name, how = base
            if name in params:
                out.append(
                    finding(
                        node,
                        f"pmap callable mutates its argument {name!r} "
                        f"({how}); in-process shards share the object while "
                        "worker processes copy it — build and return a new "
                        "value instead",
                    )
                )
            elif name not in locals_:
                out.append(
                    finding(
                        node,
                        f"pmap callable mutates captured state {name!r} "
                        f"({how}); shard execution order then changes the "
                        "result — return per-item results and merge after "
                        "the map",
                    )
                )
            return out
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in module_mutables and node.id not in locals_:
                out.append(
                    finding(
                        node,
                        f"pmap callable reads mutable module global "
                        f"{node.id!r}; any writer races the map — pass the "
                        "data in through the item or a frozen snapshot",
                    )
                )
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                out.append(
                    finding(
                        node,
                        f"pmap callable draws random.{func.attr}() from the "
                        "global stream; draws interleave across shards — "
                        "derive per-item randomness with item_rng",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in rng_captures
                and func.value.id not in locals_
            ):
                out.append(
                    finding(
                        node,
                        f"pmap callable draws from RNG {func.value.id!r} "
                        "captured from an enclosing scope; every item "
                        "advances one shared stream, so shard order changes "
                        "the draws — derive per-item streams with item_rng",
                    )
                )
        return out

    def _mutation_base(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """(root name, description) when ``node`` mutates through a name."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _root_name(target)
                    if root is not None:
                        kind = (
                            "item assignment"
                            if isinstance(target, ast.Subscript)
                            else "attribute assignment"
                        )
                        return root, kind
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS and isinstance(
                node.func.value, ast.Name
            ):
                return node.func.value.id, f".{node.func.attr}(...)"
        return None


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None
