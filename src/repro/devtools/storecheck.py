"""Fingerprint-drift cross-check between a store and the source tree.

``repro store verify`` already proves the store's *bytes* are intact.
This module proves the store's *keys* are still meaningful: each cached
stage artifact records the code fingerprint it was computed under, and
REP012's static resolution of the source tree yields the module tuple
each stage declares *today*.  Re-hashing the declared tuple and
comparing it against what the artifact recorded tells you exactly which
cached stages the current code can no longer reproduce — before a warm
run quietly recomputes (or worse, a stale-keyed store silently replays)
them.

Drift is not corruption: an artifact whose fingerprint drifted is still
byte-perfect, it just belongs to an older code state.  The check
therefore reports informational lines and does not affect ``verify``'s
exit code; corruption still does.

Layering note: this lives in devtools, not store, because it parses the
source tree — the store itself must stay payload- and source-agnostic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.devtools.astcache import AstCache
from repro.devtools.callgraph import ProjectContext
from repro.devtools.engine import iter_python_files
from repro.devtools.fingerprints import iter_stage_wirings
from repro.errors import ConfigError, ReproError, StoreError


def stage_declarations(paths: Tuple[str, ...]) -> Dict[str, Tuple[str, ...]]:
    """Stage name → declared modules tuple, statically resolved.

    Parses every Python file under ``paths`` and resolves each
    ``Stage(...)`` wiring exactly as REP012 does.  A stage wired more
    than once with *different* tuples maps to the first in scan order —
    REP012 itself polices consistency.
    """
    cache = AstCache()
    project = ProjectContext(cache.contexts(iter_python_files(paths)))
    declarations: Dict[str, Tuple[str, ...]] = {}
    for _, _, _, declared, stage_name in iter_stage_wirings(project):
        declarations.setdefault(stage_name, declared)
    return declarations


def fingerprint_drift(store, src_paths: Tuple[str, ...]) -> List[str]:
    """Informational drift lines for ``repro store verify``.

    For every index entry, compares the fingerprint recorded inside the
    cached payload against the fingerprint of the stage's *currently
    declared* module tuple.  Lines come out sorted (stage, key) so the
    report is deterministic.
    """
    from repro.store.admin import iter_index
    from repro.store.keys import code_fingerprint

    try:
        declarations = stage_declarations(src_paths)
    except ConfigError as exc:
        return [f"drift check skipped: {exc}"]

    current: Dict[str, str] = {}
    for stage_name, declared in declarations.items():
        try:
            current[stage_name] = code_fingerprint(declared)
        except ReproError:
            # A declared module that does not import (renamed, deleted)
            # is itself drift: every cached entry for the stage reports.
            current[stage_name] = "<unresolvable-declaration>"

    lines: List[str] = []
    try:
        entries = list(iter_index(store))
    except StoreError as exc:
        return [str(exc)]
    for entry in entries:
        expected = current.get(entry.stage)
        if expected is None:
            lines.append(
                f"drift {entry.stage} key={entry.key_digest[:12]}: stage has "
                "no statically resolvable declaration in the source tree"
            )
            continue
        try:
            payload = store.cas.get(entry.object_digest)
            recorded = payload["key"]["fingerprint"]
        except (ReproError, ValueError, KeyError, TypeError):
            # Unreadable objects are verify()'s corruption problem, not
            # a drift line.
            continue
        if recorded != expected:
            lines.append(
                f"drift {entry.stage} key={entry.key_digest[:12]}: artifact "
                f"fingerprint {str(recorded)[:12]} != current declared-tuple "
                f"fingerprint {expected[:12]} — the cached artifact predates "
                "the current code and will recompute on the next run"
            )
    return lines
