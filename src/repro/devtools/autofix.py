"""``repro lint --fix``: apply the mechanical rewrites findings carry.

Two rules know their fix today: REP005 rewrites ``list(set(...))`` /
``tuple(set(...))`` materialisations to ``sorted(...)``, and REP012
rewrites an under-declared stage module tuple to the sorted union of the
declaration and the computed import closure.

Fixes are source-span replacements (ast coordinates).  Per file they are
applied bottom-up so earlier spans stay valid, overlapping fixes are
skipped (first in document order wins), and byte-identical duplicate
edits collapse — several stages declaring their modules through one
shared tuple produce one rewrite, not a conflict.  Applying the same
fixes twice is a no-op by construction: the second lint run no longer
yields the findings, so there is nothing left to apply.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.devtools.findings import Finding, Fix


@dataclass
class FixResult:
    """What one ``--fix`` pass did."""

    applied: int = 0
    skipped_overlaps: int = 0
    files: List[str] = field(default_factory=list)


def _span_key(fix: Fix) -> Tuple[int, int, int, int]:
    return (fix.start_line, fix.start_col, fix.end_line, fix.end_col)


def _overlaps(a: Fix, b: Fix) -> bool:
    return not (
        (a.end_line, a.end_col) <= (b.start_line, b.start_col)
        or (b.end_line, b.end_col) <= (a.start_line, a.start_col)
    )


def _apply_to_text(text: str, fixes: Sequence[Fix]) -> str:
    """Apply non-overlapping fixes to one file's text, bottom-up."""
    lines = text.split("\n")
    for fix in sorted(fixes, key=_span_key, reverse=True):
        start = fix.start_line - 1
        end = fix.end_line - 1
        prefix = lines[start][: fix.start_col]
        suffix = lines[end][fix.end_col :]
        replacement_lines = (prefix + fix.replacement + suffix).split("\n")
        lines[start : end + 1] = replacement_lines
    return "\n".join(lines)


def apply_fixes(findings: Sequence[Finding]) -> FixResult:
    """Apply every finding's fix to disk and report what changed.

    Duplicate (same span, same replacement) fixes collapse to one;
    overlapping fixes keep the first in document order and count the
    rest as skipped — a re-run after the first application picks those
    up if their findings persist.
    """
    by_file: Dict[str, List[Fix]] = {}
    seen: Set[Tuple[str, Tuple[int, int, int, int], str]] = set()
    result = FixResult()
    for finding in sorted(findings, key=Finding.sort_key):
        fix = finding.fix
        if fix is None:
            continue
        identity = (fix.file, _span_key(fix), fix.replacement)
        if identity in seen:
            continue
        seen.add(identity)
        by_file.setdefault(fix.file, []).append(fix)

    for path in sorted(by_file):
        accepted: List[Fix] = []
        for fix in sorted(by_file[path], key=_span_key):
            if any(_overlaps(fix, kept) for kept in accepted):
                result.skipped_overlaps += 1
                continue
            accepted.append(fix)
        if not accepted:
            continue
        ospath = path.replace("/", os.sep)
        with open(ospath, "r", encoding="utf-8") as handle:
            text = handle.read()
        patched = _apply_to_text(text, accepted)
        if patched != text:
            with open(ospath, "w", encoding="utf-8") as handle:
                handle.write(patched)
            result.applied += len(accepted)
            result.files.append(path)
    return result
