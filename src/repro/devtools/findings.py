"""The unit of lint output: one finding at one source location."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Fix:
    """One mechanical rewrite: replace a source span with new text.

    Spans use ast's coordinates — 1-based lines, 0-based columns — and may
    live in a *different* file than the finding (a fingerprint-coverage
    finding anchors at the ``Stage(...)`` wiring call but fixes the module
    tuple where it is declared).  ``repro lint --fix`` applies these.
    """

    file: str
    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``snippet`` is the stripped source line the finding anchors to; it feeds
    the baseline fingerprint so recorded findings survive unrelated edits
    that only shift line numbers.  ``fix`` carries the autofix when the
    rule knows the mechanical rewrite.
    """

    rule: str
    file: str
    line: int
    message: str
    snippet: str = field(default="", compare=False)
    fix: Optional[Fix] = field(default=None, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + file + source text."""
        digest = hashlib.sha256()
        digest.update(self.rule.encode("ascii"))
        digest.update(b"\x00")
        digest.update(self.file.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.snippet.encode("utf-8"))
        return digest.hexdigest()[:16]

    def format(self) -> str:
        """``file:line: RULE message`` — the human output line."""
        return f"{self.file}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-output record (one per finding)."""
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.rule, self.message)
