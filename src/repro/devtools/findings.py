"""The unit of lint output: one finding at one source location."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``snippet`` is the stripped source line the finding anchors to; it feeds
    the baseline fingerprint so recorded findings survive unrelated edits
    that only shift line numbers.
    """

    rule: str
    file: str
    line: int
    message: str
    snippet: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + file + source text."""
        digest = hashlib.sha256()
        digest.update(self.rule.encode("ascii"))
        digest.update(b"\x00")
        digest.update(self.file.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.snippet.encode("utf-8"))
        return digest.hexdigest()[:16]

    def format(self) -> str:
        """``file:line: RULE message`` — the human output line."""
        return f"{self.file}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-output record (one per finding)."""
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.rule, self.message)
