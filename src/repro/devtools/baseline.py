"""Finding baselines: adopt the linter without fixing everything first.

A baseline is a JSON file of finding fingerprints (rule + file + source
text, so unrelated edits that shift line numbers don't invalidate it).
``repro lint --write-baseline`` records the current findings; subsequent
runs with ``--baseline`` report only findings not in the file, which lets a
codebase ratchet down to zero instead of gating on a big-bang cleanup.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Set

from repro.devtools.findings import Finding
from repro.errors import ConfigError

_VERSION = 1


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Record ``findings`` at ``path``; returns the number recorded."""
    records = sorted(
        (
            {
                "rule": finding.rule,
                "file": finding.file,
                "line": finding.line,
                "fingerprint": finding.fingerprint,
            }
            for finding in findings
        ),
        key=lambda record: (record["file"], record["line"], record["rule"]),
    )
    payload = {"version": _VERSION, "findings": records}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(records)


def load_baseline(path: str) -> Set[str]:
    """The fingerprint set recorded at ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ConfigError(f"baseline {path} has an unsupported format")
    records = payload.get("findings", [])
    try:
        return {record["fingerprint"] for record in records}
    except (TypeError, KeyError) as exc:
        raise ConfigError(f"baseline {path} has malformed findings") from exc


def apply_baseline(
    findings: Iterable[Finding], fingerprints: Set[str]
) -> List[Finding]:
    """Findings not covered by the baseline (new debt)."""
    return [f for f in findings if f.fingerprint not in fingerprints]
