"""REP006: import-graph layering and cycle checking.

Measurement code sits *above* the substrates it measures: the crypto, sim,
and net layers must never import the trawl/experiments/analysis layers that
drive them, and the module graph must stay acyclic (module-level imports
only — ``TYPE_CHECKING`` blocks and function-local imports are runtime
no-ops and are excluded, matching how Python actually executes the code).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.devtools.findings import Finding
from repro.devtools.registry import FileContext, ProjectRule, register

#: Measurement-side subpackages that the low substrate layers may not import.
_MEASUREMENT_LAYERS = frozenset(
    {
        "analysis",
        "classify",
        "client",
        "crawl",
        "detection",
        "experiments",
        "popularity",
        "tracking",
        "trawl",
    }
)

#: subpackage -> subpackages it must not (transitively directly) import.
FORBIDDEN_IMPORTS: Dict[str, frozenset] = {
    "crypto": _MEASUREMENT_LAYERS,
    "sim": _MEASUREMENT_LAYERS,
    "net": _MEASUREMENT_LAYERS,
    # The executor is a substrate too: measurement layers call it, never
    # the other way around.
    "parallel": _MEASUREMENT_LAYERS,
    # The fault plane wraps net and is consumed by measurement layers; it
    # must never reach up into them.
    "faults": _MEASUREMENT_LAYERS,
    # The observability plane is threaded through every layer; if it
    # imported measurement code the dependency arrows would invert.
    "obs": _MEASUREMENT_LAYERS,
    # The artifact store checkpoints measurement stages but must stay
    # payload-agnostic: stages hand it encode/decode callables, so it
    # never needs (and must never take) a measurement-layer import.
    "store": _MEASUREMENT_LAYERS,
}


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def iter_runtime_imports(
    tree: ast.Module, module: str
) -> Iterator[Tuple[str, int]]:
    """Yield ``(imported_module, lineno)`` for imports that run at import time.

    Descends into class bodies and plain ``if``/``try`` blocks (those execute
    on import) but not into function bodies or ``if TYPE_CHECKING:`` guards.
    Relative imports are resolved against ``module``.
    """
    package_parts = module.split(".")[:-1]

    def resolve_from(node: ast.ImportFrom) -> List[Tuple[str, int]]:
        if node.level == 0:
            base = node.module or ""
        else:
            anchor = package_parts[: len(package_parts) - (node.level - 1)]
            base = ".".join(anchor)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        if not base:
            return []
        # ``from pkg import name`` may bind either pkg.name (a submodule) or
        # an attribute of pkg; record both candidates — the graph builder
        # keeps whichever actually exists in the scanned set.
        out = [(base, node.lineno)]
        out.extend((f"{base}.{alias.name}", node.lineno) for alias in node.names)
        return out

    def walk(body: Sequence[ast.stmt]) -> Iterator[Tuple[str, int]]:
        for stmt in body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    yield alias.name, stmt.lineno
            elif isinstance(stmt, ast.ImportFrom):
                yield from resolve_from(stmt)
            elif isinstance(stmt, ast.If):
                if not _is_type_checking_test(stmt.test):
                    yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from walk(stmt.body)

    yield from walk(tree.body)


def _subpackage_of(module: str) -> str:
    """The layer name: second dotted component (``repro.net.geoip`` → ``net``)."""
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC, iterative; returns components of size > 1 plus self-loops."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for succ in edges:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph[node]:
                    components.append(sorted(component))
    return components


@register
class LayeringRule(ProjectRule):
    """REP006: layer violations and import cycles across the scanned files."""

    id = "REP006"
    summary = "import-layer violation or cycle"

    def check_project(self, files: Sequence[FileContext]) -> Iterator[Finding]:
        by_module = {ctx.module: ctx for ctx in files}
        graph: Dict[str, Set[str]] = {module: set() for module in by_module}
        edge_lines: Dict[Tuple[str, str], int] = {}

        for ctx in files:
            for target, lineno in iter_runtime_imports(ctx.tree, ctx.module):
                resolved = target
                if resolved not in by_module:
                    # ``import pkg.sub`` also names every ancestor package.
                    while "." in resolved and resolved not in by_module:
                        resolved = resolved.rsplit(".", 1)[0]
                if resolved not in by_module or resolved == ctx.module:
                    continue
                if ctx.module.startswith(resolved + "."):
                    # Importing an ancestor package (``from repro.population
                    # import botnets`` inside that package) is inherent to
                    # Python's import machinery, not a layering edge.
                    continue
                graph[ctx.module].add(resolved)
                edge_lines.setdefault((ctx.module, resolved), lineno)

        reported: Set[Tuple[str, int, str]] = set()
        for source in sorted(graph):
            source_layer = _subpackage_of(source)
            forbidden = FORBIDDEN_IMPORTS.get(source_layer)
            if not forbidden:
                continue
            for target in sorted(graph[source]):
                target_layer = _subpackage_of(target)
                if target_layer in forbidden:
                    lineno = edge_lines[(source, target)]
                    # One ``from pkg.x import y`` line edges to both pkg.x
                    # and pkg.x.y; report the layer breach once.
                    key = (source, lineno, target_layer)
                    if key in reported:
                        continue
                    reported.add(key)
                    ctx = by_module[source]
                    yield Finding(
                        rule=self.id,
                        file=ctx.path,
                        line=lineno,
                        message=(
                            f"layer violation: {source_layer} module {source} "
                            f"imports {target} from the measurement layer "
                            f"{target_layer}"
                        ),
                        snippet=ctx.line_text(lineno),
                    )

        for component in _strongly_connected(graph):
            anchor = component[0]
            successor = next(
                (m for m in sorted(graph[anchor]) if m in component), anchor
            )
            lineno = edge_lines.get((anchor, successor), 1)
            ctx = by_module[anchor]
            cycle = " -> ".join(component + [component[0]])
            yield Finding(
                rule=self.id,
                file=ctx.path,
                line=lineno,
                message=f"import cycle: {cycle}",
                snippet=ctx.line_text(lineno),
            )
