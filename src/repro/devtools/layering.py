"""REP006: import-graph layering and cycle checking.

Measurement code sits *above* the substrates it measures: the crypto, sim,
and net layers must never import the trawl/experiments/analysis layers that
drive them, and the module graph must stay acyclic (module-level imports
only — ``TYPE_CHECKING`` blocks and function-local imports are runtime
no-ops and are excluded, matching how Python actually executes the code).
The graph itself comes from the shared
:class:`~repro.devtools.callgraph.ProjectContext`, so this rule and the
whole-program determinism rules walk each file's imports once between them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.devtools.callgraph import ProjectContext
from repro.devtools.findings import Finding
from repro.devtools.registry import ProjectRule, register

#: Measurement-side subpackages that the low substrate layers may not import.
#: ``bench`` sits above even the measurement layers (it drives their
#: kernels), so a substrate importing it would invert the graph twice over.
_MEASUREMENT_LAYERS = frozenset(
    {
        "analysis",
        "bench",
        "classify",
        "client",
        "crawl",
        "detection",
        "experiments",
        "popularity",
        # The service plane orchestrates experiments and serves their
        # views; it sits at the top of the graph like the experiments
        # layer, so every substrate below is forbidden from importing it.
        "service",
        "tracking",
        "trawl",
    }
)

#: subpackage -> subpackages it must not (transitively directly) import.
FORBIDDEN_IMPORTS: Dict[str, frozenset] = {
    "crypto": _MEASUREMENT_LAYERS,
    "sim": _MEASUREMENT_LAYERS,
    "net": _MEASUREMENT_LAYERS,
    # The executor is a substrate too: measurement layers call it, never
    # the other way around.
    "parallel": _MEASUREMENT_LAYERS,
    # The fault plane wraps net and is consumed by measurement layers; it
    # must never reach up into them.
    "faults": _MEASUREMENT_LAYERS,
    # The observability plane is threaded through every layer; if it
    # imported measurement code the dependency arrows would invert.
    "obs": _MEASUREMENT_LAYERS,
    # The artifact store checkpoints measurement stages but must stay
    # payload-agnostic: stages hand it encode/decode callables, so it
    # never needs (and must never take) a measurement-layer import.
    "store": _MEASUREMENT_LAYERS,
    # The supervision plane restarts pipelines it is handed as opaque
    # factories; lower layers receive its crash hook as a plain callable.
    # Neither direction justifies a measurement import.
    "supervise": _MEASUREMENT_LAYERS,
}


def _subpackage_of(module: str) -> str:
    """The layer name: second dotted component (``repro.net.geoip`` → ``net``)."""
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC, iterative; returns components of size > 1 plus self-loops."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for succ in edges:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph[node]:
                    components.append(sorted(component))
    return components


@register
class LayeringRule(ProjectRule):
    """REP006: layer violations and import cycles across the scanned files."""

    id = "REP006"
    summary = "import-layer violation or cycle"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        by_module = project.by_module
        graph, edge_lines = project.runtime_import_graph()

        reported: Set[Tuple[str, int, str]] = set()
        for source in sorted(graph):
            source_layer = _subpackage_of(source)
            forbidden = FORBIDDEN_IMPORTS.get(source_layer)
            if not forbidden:
                continue
            for target in sorted(graph[source]):
                target_layer = _subpackage_of(target)
                if target_layer in forbidden:
                    lineno = edge_lines[(source, target)]
                    # One ``from pkg.x import y`` line edges to both pkg.x
                    # and pkg.x.y; report the layer breach once.
                    key = (source, lineno, target_layer)
                    if key in reported:
                        continue
                    reported.add(key)
                    ctx = by_module[source]
                    yield Finding(
                        rule=self.id,
                        file=ctx.path,
                        line=lineno,
                        message=(
                            f"layer violation: {source_layer} module {source} "
                            f"imports {target} from the measurement layer "
                            f"{target_layer}"
                        ),
                        snippet=ctx.line_text(lineno),
                    )

        for component in _strongly_connected(graph):
            anchor = component[0]
            successor = next(
                (m for m in sorted(graph[anchor]) if m in component), anchor
            )
            lineno = edge_lines.get((anchor, successor), 1)
            ctx = by_module[anchor]
            cycle = " -> ".join(component + [component[0]])
            yield Finding(
                rule=self.id,
                file=ctx.path,
                line=lineno,
                message=f"import cycle: {cycle}",
                snippet=ctx.line_text(lineno),
            )
