"""Per-file AST rules REP001–REP005, REP007–REP010, REP014 and REP015.

Each rule walks the file's AST and yields :class:`Finding` objects.  The
rules are deliberately syntactic — no type inference — so every pattern
they flag has a sanctioned rewrite documented in the finding message.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.findings import Finding, Fix
from repro.devtools.registry import AstRule, FileContext, register

#: The one module allowed to construct random.Random / reseed streams raw:
#: it *implements* derive_rng and split_rng.
RNG_MODULE_SUFFIXES = ("sim/rng.py",)


def _finding(
    rule: "AstRule",
    ctx: FileContext,
    node: ast.AST,
    message: str,
    fix: Optional[Fix] = None,
) -> Finding:
    line = getattr(node, "lineno", 1)
    return Finding(
        rule=rule.id,
        file=ctx.path,
        line=line,
        message=message,
        snippet=ctx.line_text(line),
        fix=fix,
    )


def _source_segment(ctx: FileContext, node: ast.AST) -> Optional[str]:
    """The exact source text a node spans, or None without end positions."""
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    if end_line == node.lineno:
        return ctx.lines[node.lineno - 1][node.col_offset : end_col]
    parts = [ctx.lines[node.lineno - 1][node.col_offset :]]
    parts.extend(ctx.lines[node.lineno : end_line - 1])
    parts.append(ctx.lines[end_line - 1][:end_col])
    return "\n".join(parts)


def _replace_with(ctx: FileContext, node: ast.AST, replacement: str) -> Optional[Fix]:
    """A fix replacing exactly the node's span, when the span is known."""
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    return Fix(
        file=ctx.path,
        start_line=node.lineno,
        start_col=node.col_offset,
        end_line=end_line,
        end_col=end_col,
        replacement=replacement,
    )


def _wrap_sorted(ctx: FileContext, node: ast.AST) -> Optional[Fix]:
    """A fix wrapping the node's source in ``sorted(...)``."""
    segment = _source_segment(ctx, node)
    if segment is None:
        return None
    return _replace_with(ctx, node, f"sorted({segment})")


def _is_random_random(func: ast.AST, ctx: FileContext) -> bool:
    """Whether a call's ``func`` resolves to :class:`random.Random`."""
    if isinstance(func, ast.Attribute) and func.attr == "Random":
        return isinstance(func.value, ast.Name) and func.value.id == "random"
    if isinstance(func, ast.Name):
        return func.id in ctx.random_aliases
    return False


def _is_getrandbits_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "getrandbits"
    )


@register
class RawSeedRule(AstRule):
    """REP001: raw ``random.Random(...)`` construction outside sim/rng.py.

    Every stream must come from ``derive_rng(seed, *path)`` (or
    ``split_rng`` for mid-flight forks) so that the (seed, path) → stream
    mapping is stable across processes and code growth.
    """

    id = "REP001"
    summary = "raw random.Random construction (use derive_rng(seed, *path))"
    allowed_path_suffixes = RNG_MODULE_SUFFIXES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.nodes:
            if not isinstance(node, ast.Call):
                continue
            if not _is_random_random(node.func, ctx):
                continue
            if any(_is_getrandbits_call(arg) for arg in node.args):
                continue  # that shape is REP002's to report
            yield _finding(
                self,
                ctx,
                node,
                "raw RNG construction; derive streams with "
                "repro.sim.rng.derive_rng(seed, *path)",
            )


@register
class AdHocSplitRule(AstRule):
    """REP002: stream splitting via ``random.Random(rng.getrandbits(n))``.

    Re-seeding from raw draws couples the child stream to the parent's
    draw position without any path separation; ``split_rng(rng, *path)``
    hashes in an explicit path so sibling splits stay uncorrelated.
    """

    id = "REP002"
    summary = "ad-hoc getrandbits re-seeding (use split_rng(rng, *path))"
    allowed_path_suffixes = RNG_MODULE_SUFFIXES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.nodes:
            if not isinstance(node, ast.Call):
                continue
            if not _is_random_random(node.func, ctx):
                continue
            if any(_is_getrandbits_call(arg) for arg in node.args):
                yield _finding(
                    self,
                    ctx,
                    node,
                    "ad-hoc stream split via getrandbits re-seeding; use "
                    "repro.sim.rng.split_rng(rng, *path)",
                )


#: (object name, attribute) pairs whose call reads the wall clock.
_WALL_CLOCK_ATTRS = {
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


@register
class WallClockRule(AstRule):
    """REP003: wall-clock reads in library code.

    Simulated time comes from ``repro.sim.clock.SimClock``; elapsed-runtime
    measurement (benchmarks, progress lines) should use the monotonic
    ``time.perf_counter()``, which this rule deliberately does not flag.
    """

    id = "REP003"
    summary = "wall-clock call (use the sim clock, or time.perf_counter())"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from_time_aliases = {
            name.asname or name.name
            for node in ctx.nodes
            if isinstance(node, ast.ImportFrom) and node.module == "time"
            for name in node.names
            if name.name == "time"
        }
        for node in ctx.nodes:
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            matched = None
            if isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name):
                    if (base.id, func.attr) in _WALL_CLOCK_ATTRS:
                        matched = f"{base.id}.{func.attr}()"
                elif (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "datetime"
                    and (base.attr, func.attr) in _WALL_CLOCK_ATTRS
                ):
                    matched = f"datetime.{base.attr}.{func.attr}()"
            elif isinstance(func, ast.Name) and func.id in from_time_aliases:
                matched = f"{func.id}()"
            if matched:
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"wall-clock read {matched}; simulated time must come from "
                    "repro.sim.clock (use time.perf_counter() for elapsed "
                    "runtime)",
                )


#: Builtin exception types that must not be raised from library code.
_FORBIDDEN_RAISES = {"ValueError", "RuntimeError", "TypeError", "KeyError"}


@register
class BuiltinRaiseRule(AstRule):
    """REP004: builtin exceptions raised where a repro.errors subclass fits.

    Callers catch :class:`repro.errors.ReproError` to distinguish library
    failures from genuine bugs; builtin raises silently escape that net.
    """

    id = "REP004"
    summary = "builtin exception raised (use the repro.errors hierarchy)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.nodes:
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _FORBIDDEN_RAISES:
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"raise {name} bypasses the repro.errors hierarchy; raise "
                    "a ReproError subclass",
                )


def _is_set_expr(node: ast.AST) -> bool:
    """A set literal, set comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register
class SetOrderingRule(AstRule):
    """REP005: order-sensitive consumption of an unordered set.

    ``list(set(x))`` and ``for item in set(x)`` iterate in hash order,
    which PYTHONHASHSEED perturbs for str/bytes elements; wrap the set in
    ``sorted(...)`` before anything order-sensitive consumes it.
    """

    id = "REP005"
    summary = "nondeterministic set ordering (wrap in sorted(...))"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and _is_set_expr(node.args[0])
            ):
                # list(set(x)) → sorted(set(x)) keeps the dedup and returns
                # a list; tuple(...) keeps its wrapper, sorting the inner.
                if node.func.id == "list":
                    segment = _source_segment(ctx, node.args[0])
                    fix = (
                        _replace_with(ctx, node, f"sorted({segment})")
                        if segment is not None
                        else None
                    )
                else:
                    fix = _wrap_sorted(ctx, node.args[0])
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"{node.func.id}(set(...)) materialises hash order; use "
                    "sorted(...) for a stable ordering",
                    fix=fix,
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(
                node.iter
            ):
                yield _finding(
                    self,
                    ctx,
                    node,
                    "iterating a set expression in hash order; wrap it in "
                    "sorted(...)",
                    fix=_wrap_sorted(ctx, node.iter),
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                # SetComp is exempt: its result is unordered regardless.
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        yield _finding(
                            self,
                            ctx,
                            comp.iter,
                            "comprehension over a set expression iterates in "
                            "hash order; wrap it in sorted(...)",
                            fix=_wrap_sorted(ctx, comp.iter),
                        )


#: Top-level modules whose direct use is concurrency outside the
#: deterministic executor.
_CONCURRENCY_MODULES = ("multiprocessing", "concurrent")

#: The one package allowed to touch process pools raw: it *implements*
#: the deterministic shard-map executor.
PARALLEL_PACKAGE_FRAGMENT = "repro/parallel/"


@register
class RawConcurrencyRule(AstRule):
    """REP007: raw ``multiprocessing``/``concurrent.futures`` outside repro/parallel.

    Ad-hoc pools reintroduce completion-order nondeterminism and unshared
    RNG discipline; all fan-out goes through ``repro.parallel.pmap``,
    whose sharding, per-item RNG derivation, and merge order are
    worker-count-invariant.
    """

    id = "REP007"
    summary = "raw concurrency primitive (use repro.parallel.pmap)"

    def applies_to(self, ctx: FileContext) -> bool:
        # Directory allowlist, not a suffix: every module of the executor
        # package may use the primitives it wraps.
        return PARALLEL_PACKAGE_FRAGMENT not in ctx.path

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.nodes:
            flagged = None
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _CONCURRENCY_MODULES:
                        flagged = alias.name
                        break
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in _CONCURRENCY_MODULES:
                    flagged = node.module
            if flagged:
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"raw concurrency import {flagged!r}; fan work out "
                    "through repro.parallel.pmap so shard order, RNG "
                    "streams, and merges stay worker-count-invariant",
                )


#: Packages whose job is absorbing failure: the fault/retry plane and the
#: executor may catch broadly by design.
_SWALLOW_EXEMPT_FRAGMENTS = ("repro/faults/", "repro/parallel/")

#: Catch-all exception names a handler must not use outside exempt packages.
_CATCH_ALL_NAMES = {"Exception", "BaseException"}


def _caught_names(handler: ast.ExceptHandler) -> Iterator[str]:
    """The exception type names a handler catches (tuples flattened)."""
    node = handler.type
    if node is None:
        return
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if isinstance(element, ast.Name):
            yield element.id
        elif isinstance(element, ast.Attribute):
            yield element.attr


def _swallows_silently(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body discards the exception without acting.

    A body that is nothing but ``pass`` / ``...`` statements neither
    re-raises, nor logs, nor substitutes a value — the failure vanishes.
    """
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            if stmt.value.value is Ellipsis:
                continue
        return False
    return True


@register
class ExceptionSwallowRule(AstRule):
    """REP008: catch-all handlers / silent swallowing outside the fault plane.

    A bare ``except``, ``except Exception`` or ``except BaseException``
    erases the distinction the fault taxonomy exists to draw — transient vs
    permanent failure — and a handler whose body is only ``pass`` erases
    the failure entirely.  Catch a specific :class:`repro.errors.ReproError`
    subclass and account the failure, or let it propagate.
    """

    id = "REP008"
    summary = "catch-all or silently swallowed exception"

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(
            fragment in ctx.path for fragment in _SWALLOW_EXEMPT_FRAGMENTS
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.nodes:
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield _finding(
                    self,
                    ctx,
                    node,
                    "bare except catches everything, including "
                    "KeyboardInterrupt; name the exception type",
                )
                continue
            caught = set(_caught_names(node))
            if caught & _CATCH_ALL_NAMES:
                wide = ", ".join(sorted(caught & _CATCH_ALL_NAMES))
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"except {wide} hides which failure occurred; catch a "
                    "specific repro.errors subclass",
                )
            elif _swallows_silently(node):
                yield _finding(
                    self,
                    ctx,
                    node,
                    "exception swallowed without action; account the "
                    "failure (e.g. in a FailureTaxonomy) or let it "
                    "propagate",
                )


#: Places allowed ad-hoc output/timing: the observability plane itself,
#: the bench plane (wall-clock timing is its product), benchmarks (whose
#: job is timing), the test tree, and runnable examples (whose job is
#: showing output).
_INSTRUMENTATION_EXEMPT_FRAGMENTS = (
    "repro/obs/",
    "repro/bench/",
    "benchmarks/",
    "tests/",
    "examples/",
)

#: File-level exemptions: the CLI is the user-facing surface — printing
#: reports and elapsed runtimes is its job.
_INSTRUMENTATION_EXEMPT_SUFFIXES = ("repro/cli.py",)


@register
class AdHocInstrumentationRule(AstRule):
    """REP009: ad-hoc ``print`` / ``time.perf_counter`` instrumentation.

    Scattered prints and timers are write-only telemetry: they bypass the
    deterministic snapshot (so CI can't diff them) and tempt wall-clock
    reasoning into library code.  Record counters, gauges and histograms on
    an explicit :class:`repro.obs.scope.Observer` and time stages with its
    sim-clock ``span``; only the obs plane itself, the CLI, benchmarks,
    tests and examples may emit raw output.
    """

    id = "REP009"
    summary = "ad-hoc print/perf_counter instrumentation (use repro.obs)"

    def applies_to(self, ctx: FileContext) -> bool:
        if any(
            fragment in ctx.path
            for fragment in _INSTRUMENTATION_EXEMPT_FRAGMENTS
        ):
            return False
        return not ctx.path_endswith(*_INSTRUMENTATION_EXEMPT_SUFFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        perf_counter_aliases = {
            name.asname or name.name
            for node in ctx.nodes
            if isinstance(node, ast.ImportFrom) and node.module == "time"
            for name in node.names
            if name.name == "perf_counter"
        }
        for node in ctx.nodes:
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield _finding(
                    self,
                    ctx,
                    node,
                    "print() in library code is write-only telemetry; record "
                    "the fact on a repro.obs Observer (counter, gauge, or "
                    "event) so it lands in the deterministic snapshot",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "perf_counter"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ) or (
                isinstance(func, ast.Name) and func.id in perf_counter_aliases
            ):
                yield _finding(
                    self,
                    ctx,
                    node,
                    "ad-hoc perf_counter timing in library code; wrap the "
                    "stage in Observer.span(...) so the duration lands in "
                    "the deterministic snapshot",
                )


#: Places allowed to write files directly: the serialisation layer, the
#: artifact store (atomic writes are its job), the metrics exporter, the
#: lint tooling (baselines), the bench plane (BENCH_*.json trajectories
#: and report views are its artifacts), benchmarks, tests and examples.
_ARTIFACT_WRITE_EXEMPT_FRAGMENTS = (
    "repro/io",
    "repro/store/",
    "repro/obs/export",
    "repro/devtools/",
    "repro/bench/",
    "benchmarks/",
    "tests/",
    "examples/",
)

#: The CLI prints and archives reports on request — writing is its job.
_ARTIFACT_WRITE_EXEMPT_SUFFIXES = ("repro/cli.py",)

#: Characters in an ``open`` mode string that imply writing.
_WRITE_MODE_CHARS = set("wax+")


def _write_mode(node: ast.Call, position: int = 1) -> str:
    """The call's constant mode string when it implies writing, else ''.

    ``position`` is where the positional mode argument sits: 1 for the
    ``open(path, mode)`` builtin, 0 for the ``path.open(mode)`` method.
    """
    mode = None
    if len(node.args) > position:
        mode = node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and _WRITE_MODE_CHARS & set(mode.value)
    ):
        return mode.value
    return ""


@register
class ArtifactWriteRule(AstRule):
    """REP010: direct artifact writes outside the sanctioned layers.

    Ad-hoc ``open(path, "w")`` / ``json.dump`` / ``.write_text`` calls
    scatter artifact formats across the tree, skip schema versioning, and
    are not atomic — a killed process leaves a torn file the next run
    trusts.  Serialise through :mod:`repro.io` (schema-checked loaders,
    one format per artifact) or checkpoint through :mod:`repro.store`
    (content-addressed, write-then-rename); only the io/store/obs-export
    planes, devtools, the CLI, benchmarks, tests and examples write raw.
    """

    id = "REP010"
    summary = "direct artifact write (use repro.io or repro.store)"

    def applies_to(self, ctx: FileContext) -> bool:
        if any(
            fragment in ctx.path
            for fragment in _ARTIFACT_WRITE_EXEMPT_FRAGMENTS
        ):
            return False
        return not ctx.path_endswith(*_ARTIFACT_WRITE_EXEMPT_SUFFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.nodes:
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _write_mode(node)
                if mode:
                    yield _finding(
                        self,
                        ctx,
                        node,
                        f"open(..., {mode!r}) writes an artifact ad hoc; "
                        "serialise through repro.io or checkpoint through "
                        "repro.store",
                    )
            elif isinstance(func, ast.Attribute):
                if func.attr in ("write_text", "write_bytes"):
                    yield _finding(
                        self,
                        ctx,
                        node,
                        f".{func.attr}(...) writes an artifact ad hoc; "
                        "serialise through repro.io or checkpoint through "
                        "repro.store",
                    )
                elif func.attr == "open" and _write_mode(node, position=0):
                    yield _finding(
                        self,
                        ctx,
                        node,
                        ".open(...) in write mode writes an artifact ad "
                        "hoc; serialise through repro.io or checkpoint "
                        "through repro.store",
                    )
                elif (
                    func.attr == "dump"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "json"
                ):
                    yield _finding(
                        self,
                        ctx,
                        node,
                        "json.dump(...) writes an artifact ad hoc; "
                        "serialise through repro.io (save_json) or "
                        "checkpoint through repro.store",
                    )


#: The supervision plane is the one place allowed to intercept process
#: teardown: it alone may catch SimulatedCrashError (a BaseException
#: modelling SIGKILL) so crash-resume stays a single, auditable code path.
#: Tests and examples exercise teardown on purpose.
_SUPERVISION_EXEMPT_FRAGMENTS = (
    "repro/supervise/",
    "tests/",
    "examples/",
)

#: Exception names whose interception outside the supervision plane breaks
#: crash containment: a handler catching any of these would absorb a
#: simulated (or real) process death mid-layer, so the crashtest invariant
#: — resumed run byte-identical to a clean run — could no longer be argued
#: from the supervisor alone.
_TEARDOWN_NAMES = frozenset(
    {"BaseException", "KeyboardInterrupt", "SystemExit", "SimulatedCrashError"}
)

#: ``signal`` module entry points that install process-wide handlers.
_SIGNAL_INSTALLERS = frozenset(
    {"signal", "setitimer", "siginterrupt", "set_wakeup_fd"}
)


@register
class SupervisionContainmentRule(AstRule):
    """REP014: teardown interception outside the supervision plane.

    Crash-safety rests on one invariant: process death — real or the
    simulated :class:`repro.errors.SimulatedCrashError` — propagates
    untouched from wherever it strikes up to :mod:`repro.supervise`,
    which alone restarts, budgets, and accounts for it.  A handler
    anywhere else catching ``BaseException``, ``KeyboardInterrupt``,
    ``SystemExit`` or ``SimulatedCrashError`` (or a bare ``except``, or a
    process-wide ``signal.signal(...)`` install) would absorb the death
    mid-layer and leave the run in a state no restart policy reasons
    about.  Catch :class:`repro.errors.ReproError` subclasses for real
    failures; leave teardown to the supervisor.
    """

    id = "REP014"
    summary = "teardown interception outside repro.supervise"

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(
            fragment in ctx.path for fragment in _SUPERVISION_EXEMPT_FRAGMENTS
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        signal_aliases = {
            name.asname or name.name
            for node in ctx.nodes
            if isinstance(node, ast.ImportFrom) and node.module == "signal"
            for name in node.names
            if name.name in _SIGNAL_INSTALLERS
        }
        for node in ctx.nodes:
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_signal_install(ctx, node, signal_aliases)

    def _check_handler(
        self, ctx: FileContext, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield _finding(
                self,
                ctx,
                node,
                "bare except intercepts process teardown "
                "(KeyboardInterrupt, SystemExit, SimulatedCrashError); "
                "only repro.supervise may contain a crash — name a "
                "repro.errors exception type",
            )
            return
        caught = set(_caught_names(node)) & _TEARDOWN_NAMES
        if caught:
            names = ", ".join(sorted(caught))
            yield _finding(
                self,
                ctx,
                node,
                f"except {names} intercepts process teardown outside the "
                "supervision plane; crash containment belongs to "
                "repro.supervise alone — catch a repro.errors subclass "
                "or let it propagate",
            )

    def _check_signal_install(
        self, ctx: FileContext, node: ast.Call, signal_aliases: set
    ) -> Iterator[Finding]:
        func = node.func
        installed = ""
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SIGNAL_INSTALLERS
            and isinstance(func.value, ast.Name)
            and func.value.id == "signal"
        ):
            installed = f"signal.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in signal_aliases:
            installed = func.id
        if installed:
            yield _finding(
                self,
                ctx,
                node,
                f"{installed}(...) installs a process-wide signal handler "
                "outside the supervision plane; handler installs belong "
                "to repro.supervise so teardown has a single owner",
            )


#: Top-level modules whose direct use is socket/HTTP plumbing outside the
#: service front-end.
_NETWORK_MODULES = (
    "asyncio",
    "http",
    "selectors",
    "socket",
    "socketserver",
    "wsgiref",
)

#: Where raw socket/HTTP handling is sanctioned: the service front-end
#: owns the one listener, and tests/examples may drive it as clients.
_NETWORK_EXEMPT_FRAGMENTS = ("repro/service/", "tests/", "examples/")


@register
class RawNetworkRule(AstRule):
    """REP015: raw socket/HTTP handling outside ``repro/service``.

    The HTTP front-end is the project's single network boundary — one
    place that binds ports, frames requests, and maps errors onto the
    4xx/5xx taxonomy.  A second ad-hoc listener (or a stray ``socket``
    import in a measurement layer) would fork that boundary and bypass
    the bounded handler pool, the digest-ETag caching, and the
    observer's request accounting.
    """

    id = "REP015"
    summary = "raw socket/HTTP handling (route it through repro.service)"

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(
            fragment in ctx.path for fragment in _NETWORK_EXEMPT_FRAGMENTS
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.nodes:
            flagged = None
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _NETWORK_MODULES:
                        flagged = alias.name
                        break
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in _NETWORK_MODULES:
                    flagged = node.module
            if flagged:
                yield _finding(
                    self,
                    ctx,
                    node,
                    f"raw network import {flagged!r}; socket/HTTP handling "
                    "belongs to repro.service, which owns the project's "
                    "single listener, response framing, and error taxonomy",
                )
