"""REP011: whole-program RNG stream lineage.

Every random stream in the reproduction is ``derive_rng(seed, *path)`` —
a pure function of the experiment seed and a string path — so stream
independence is exactly label uniqueness: two call sites that derive the
same fully-resolved path from the same seed expression share one stream,
and every draw in one silently correlates the other.  That is invisible
at runtime (both sites still "work") and unfindable after the fact at
crawl scale, so this rule proves label uniqueness statically.

The rule walks every ``derive_rng`` call site through the shared call
graph: constant path elements fold directly; a path element that is a
parameter of the enclosing function resolves through the constants bound
at *its* call sites (so a helper taking ``rng_label`` forks into one
lineage entry per caller, anchored at the caller).  Unresolvable paths
are skipped — the analysis never guesses.

It also flags RNG objects *escaping* their derivation scope: a generator
bound to a module/class attribute at import time or baked into a default
argument is shared mutable state — draw order then depends on call
order across the whole program, which is exactly what stream derivation
exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.devtools.callgraph import CallRecord, ProjectContext
from repro.devtools.findings import Finding
from repro.devtools.registry import ProjectRule, register
from repro.devtools.rules import RNG_MODULE_SUFFIXES

#: Fully dotted callables whose return value is a live RNG stream.
_RNG_PRODUCERS = frozenset(
    {
        "repro.sim.rng.derive_rng",
        "repro.sim.rng.split_rng",
        "repro.parallel.executor.item_rng",
        "repro.parallel.item_rng",
        "random.Random",
    }
)

#: The derivation entry point whose label paths must be unique.
_DERIVE = "repro.sim.rng.derive_rng"


def _param_names(node: ast.AST) -> frozenset:
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return frozenset(names)


def _seed_text(expr: ast.AST) -> str:
    """A textual identity for the seed argument (hash-order-free)."""
    return ast.dump(expr)


def _format_label(label: Tuple[Any, ...]) -> str:
    return "(" + ", ".join(repr(element) for element in label) + ")"


@register
class RngLineageRule(ProjectRule):
    """REP011: colliding derive_rng stream labels and escaping RNG objects."""

    id = "REP011"
    summary = "RNG stream label collision or escaping RNG object"
    allowed_path_suffixes = RNG_MODULE_SUFFIXES

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        yield from self._check_collisions(project)
        yield from self._check_escapes(project)

    # -- label collisions --------------------------------------------------- #

    def _check_collisions(self, project: ProjectContext) -> Iterator[Finding]:
        # (seed identity, resolved label) -> anchor sites, insertion-ordered.
        lineage: Dict[Tuple[str, Tuple[Any, ...]], List[Tuple[str, int, str]]] = {}
        for record in project.call_records:
            if record.target != _DERIVE:
                continue
            resolved = self._resolve_sites(project, record)
            if resolved is None:
                continue
            for file, line, snippet, label in resolved:
                seed_id = _seed_text(record.node.args[0]) if record.node.args else ""
                sites = lineage.setdefault((seed_id, label), [])
                if (file, line, snippet) not in sites:
                    sites.append((file, line, snippet))

        for (_, label), sites in lineage.items():
            if len(sites) < 2:
                continue
            first_file, first_line, _ = sites[0]
            for file, line, snippet in sites[1:]:
                yield Finding(
                    rule=self.id,
                    file=file,
                    line=line,
                    message=(
                        f"RNG stream label {_format_label(label)} is also "
                        f"derived at {first_file}:{first_line}; identical "
                        "labels from one seed yield one shared stream — add "
                        "a distinguishing path element"
                    ),
                    snippet=snippet,
                )

    def _resolve_sites(
        self, project: ProjectContext, record: CallRecord
    ) -> Optional[List[Tuple[str, int, str, Tuple[Any, ...]]]]:
        """Every (file, line, snippet, resolved label) this call derives.

        A direct constant path yields one entry at the call itself; path
        elements that are parameters of the enclosing function yield one
        entry per *binding* call site.  ``None`` when any element cannot
        be resolved.
        """
        path_exprs = record.node.args[1:]
        if not path_exprs or record.node.keywords:
            return None
        if any(isinstance(expr, ast.Starred) for expr in path_exprs):
            return None
        info = project.functions.get(record.caller) if record.caller else None
        params = _param_names(info.node) if info is not None else frozenset()

        elements: List[Tuple[str, Any]] = []
        for expr in path_exprs:
            folded, value = project.resolve_constant(record.ctx, expr)
            if folded:
                elements.append(("const", value))
            elif isinstance(expr, ast.Name) and expr.id in params:
                elements.append(("param", expr.id))
            else:
                return None

        param_elements = sorted({name for kind, name in elements if kind == "param"})
        if not param_elements:
            label = tuple(value for _, value in elements)
            line = record.node.lineno
            return [(record.ctx.path, line, record.ctx.line_text(line), label)]

        bindings = {
            name: project.param_bindings(record.caller, name)
            for name in param_elements
        }
        if any(bound is None for bound in bindings.values()):
            return None
        sites = project.calls_to.get(record.caller, [])
        out: List[Tuple[str, int, str, Tuple[Any, ...]]] = []
        for index, site in enumerate(sites):
            label = tuple(
                value if kind == "const" else bindings[value][index][1]
                for kind, value in elements
            )
            line = site.node.lineno
            out.append((site.ctx.path, line, site.ctx.line_text(line), label))
        return out

    # -- escaping RNG objects ----------------------------------------------- #

    def _check_escapes(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.files:
            for scope, stmt in _import_time_statements(ctx.tree):
                value = _assigned_value(stmt)
                if value is None:
                    continue
                producer = _rng_producer(project, ctx, value)
                if producer is not None:
                    line = stmt.lineno
                    yield Finding(
                        rule=self.id,
                        file=ctx.path,
                        line=line,
                        message=(
                            f"RNG from {producer} escapes into a {scope} "
                            "binding; a generator shared at import time "
                            "makes draw order depend on call order — derive "
                            "streams where they are consumed"
                        ),
                        snippet=ctx.line_text(line),
                    )
            for node in _function_defs(ctx.tree):
                defaults = list(node.args.defaults) + [
                    default
                    for default in node.args.kw_defaults
                    if default is not None
                ]
                for default in defaults:
                    producer = _rng_producer(project, ctx, default)
                    if producer is not None:
                        line = default.lineno
                        yield Finding(
                            rule=self.id,
                            file=ctx.path,
                            line=line,
                            message=(
                                f"RNG from {producer} escapes into a default "
                                "argument; defaults evaluate once at def "
                                "time, so every call shares one stream — "
                                "default to None and derive inside"
                            ),
                            snippet=ctx.line_text(line),
                        )


def _import_time_statements(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.stmt]]:
    """(scope, stmt) for module- and class-level assignment statements."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            yield "module-global", stmt
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    yield "class-attribute", sub


def _function_defs(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def _assigned_value(stmt: ast.stmt) -> Optional[ast.AST]:
    if isinstance(stmt, ast.Assign):
        return stmt.value
    if isinstance(stmt, ast.AnnAssign):
        return stmt.value
    return None


def _rng_producer(
    project: ProjectContext, ctx, value: Optional[ast.AST]
) -> Optional[str]:
    """The producer's dotted name when ``value`` constructs a live RNG."""
    if not isinstance(value, ast.Call):
        return None
    target = project.dotted_target(ctx, value.func)
    if target in _RNG_PRODUCERS:
        return target
    return None
