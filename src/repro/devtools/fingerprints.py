"""REP012: stage code-fingerprint coverage.

The artifact store keys each checkpoint on a *code fingerprint* — the
hash of the source of the modules a :class:`~repro.store.checkpoint.Stage`
declares — so a warm run can trust cached artifacts.  That trust has one
unchecked assumption: the declared module tuple must actually cover the
code the stage executes.  A module the compute path imports but the tuple
omits can change without changing the fingerprint, and the store then
replays a stale artifact as if it were current — the one cache bug no
runtime check can catch, because the cached result still *looks* valid.

This rule closes the gap statically.  For every ``Stage(...)`` wiring
site it resolves the declared ``modules`` tuple (directly, or through the
constants bound at call sites when the tuple arrives as a parameter, as
in the pipeline's ``_run_stage`` helper), computes the transitive import
closure of the wiring module over the project import graph — function-
local imports included, since they run on the compute path — and fails if
the closure is not covered.  Infrastructure layers that are deliberately
fingerprint-exempt (the store itself, observability, devtools, errors,
the CLI) are excluded from the requirement: hashing the cache machinery
into every key would invalidate all caches on infra-only changes without
adding protection, because those layers never shape artifact bytes.

Findings carry an autofix: the declared tuple's source is replaced with
the flat, sorted union of declaration and closure.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.devtools.callgraph import CallRecord, CallSite, ProjectContext
from repro.devtools.findings import Finding, Fix
from repro.devtools.registry import FileContext, ProjectRule, register

#: Dotted names a Stage wiring call can resolve to.
_STAGE_TARGETS = frozenset(
    {"repro.store.Stage", "repro.store.checkpoint.Stage"}
)

#: Second-level subpackages exempt from fingerprint coverage: they carry
#: artifacts and telemetry but never shape artifact *content*, so hashing
#: them would churn every cache key on infra-only changes.  ``supervise``
#: qualifies by the crashtest invariant itself: a crashed-and-resumed run
#: is byte-identical to a clean one, so supervision can never shape bytes.
EXEMPT_LAYERS = frozenset({"cli", "devtools", "errors", "obs", "store", "supervise"})

#: How many missing modules a finding message names before eliding.
_MESSAGE_CAP = 5


def _layer_of(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


def _keyword(node: ast.Call, name: str) -> Optional[ast.AST]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _stage_name(project: ProjectContext, ctx: FileContext, node: ast.Call) -> str:
    expr = _keyword(node, "name")
    if expr is None and node.args:
        expr = node.args[0]
    if expr is not None:
        folded, value = project.resolve_constant(ctx, expr)
        if folded and isinstance(value, str):
            return value
    return "<dynamic>"


def iter_stage_wirings(
    project: ProjectContext,
) -> Iterator[Tuple[FileContext, ast.AST, ast.AST, Tuple[str, ...], str]]:
    """Every resolvable Stage wiring in the project.

    Yields ``(ctx, anchor node, declared expr, declared tuple, stage
    name)`` — the anchor is where a finding points; the declared expr is
    what an autofix rewrites.  A ``modules`` argument that is a parameter
    of the enclosing function forks into one wiring per binding call
    site, anchored and named there.  Shared between the REP012 rule and
    the ``repro store verify`` drift check, so both see the exact same
    declarations.
    """
    for record in project.call_records:
        if record.target not in _STAGE_TARGETS:
            continue
        modules_expr = _keyword(record.node, "modules")
        if modules_expr is None and len(record.node.args) > 1:
            modules_expr = record.node.args[1]
        if modules_expr is None:
            continue
        yield from _resolve_declarations(project, record, modules_expr)


def _resolve_declarations(
    project: ProjectContext,
    record: CallRecord,
    modules_expr: ast.AST,
) -> Iterator[Tuple[FileContext, ast.AST, ast.AST, Tuple[str, ...], str]]:
    folded, value = project.resolve_constant(record.ctx, modules_expr)
    if folded:
        if not _all_strings(value):
            return
        stage_name = _stage_name(project, record.ctx, record.node)
        yield record.ctx, record.node, modules_expr, value, stage_name
        return
    if not isinstance(modules_expr, ast.Name) or record.caller is None:
        return
    info = project.functions.get(record.caller)
    if info is None:
        return
    bindings = project.param_bindings(record.caller, modules_expr.id)
    if bindings is None:
        return
    for site, value in bindings:
        if not _all_strings(value):
            continue
        declared_expr = _binding_expr(project, site, info, modules_expr.id)
        if declared_expr is None:
            continue
        stage_name = _site_stage_name(project, site, info)
        yield site.ctx, site.node, declared_expr, value, stage_name


def _binding_expr(
    project: ProjectContext,
    site: CallSite,
    info,
    param: str,
) -> Optional[ast.AST]:
    """The argument expression a call site binds to ``param``."""
    positional = [a.arg for a in info.node.args.posonlyargs] + [
        a.arg for a in info.node.args.args
    ]
    try:
        index = positional.index(param)
    except ValueError:
        index = -1
    expr = project.argument_expr(site, index, param)
    if isinstance(expr, ast.Starred):
        return None
    return expr


@register
class FingerprintCoverageRule(ProjectRule):
    """REP012: declared Stage module tuples must cover the import closure."""

    id = "REP012"
    summary = "stage code fingerprint misses imported modules (stale-cache hazard)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for wiring in iter_stage_wirings(project):
            ctx, anchor, declared_expr, declared, stage_name = wiring
            finding = self._check_coverage(
                project, ctx, anchor, declared_expr, declared, stage_name
            )
            if finding is not None:
                yield finding

    def _check_coverage(
        self,
        project: ProjectContext,
        ctx: FileContext,
        anchor: ast.AST,
        declared_expr: ast.AST,
        declared: Tuple[str, ...],
        stage_name: str,
    ) -> Optional[Finding]:
        closure = project.import_closure(ctx.module)
        required = {
            module
            for module in closure
            if _layer_of(module) not in EXEMPT_LAYERS
        }
        missing = sorted(required - set(declared))
        if not missing:
            return None
        line = getattr(anchor, "lineno", 1)
        shown = ", ".join(missing[:_MESSAGE_CAP])
        if len(missing) > _MESSAGE_CAP:
            shown += f", … ({len(missing) - _MESSAGE_CAP} more)"
        return Finding(
            rule=self.id,
            file=ctx.path,
            line=line,
            message=(
                f"stage {stage_name!r} code fingerprint misses {shown}: these "
                "modules are in the compute path's import closure, so edits "
                "to them replay stale cached artifacts — add them to the "
                "modules tuple"
            ),
            snippet=ctx.line_text(line),
            fix=self._fix_for(project, ctx, declared_expr, declared, missing),
        )

    def _fix_for(
        self,
        project: ProjectContext,
        ctx: FileContext,
        declared_expr: ast.AST,
        declared: Tuple[str, ...],
        missing: List[str],
    ) -> Optional[Fix]:
        target_ctx, target_expr = ctx, declared_expr
        if isinstance(declared_expr, ast.Name):
            definition = project.constant_definition(ctx, declared_expr.id)
            if definition is None:
                return None
            target_ctx, target_expr = definition
        if not isinstance(target_expr, (ast.Tuple, ast.List, ast.BinOp, ast.Name)):
            return None
        end_line = getattr(target_expr, "end_lineno", None)
        end_col = getattr(target_expr, "end_col_offset", None)
        if end_line is None or end_col is None:
            return None
        covered = sorted(set(declared) | set(missing))
        replacement = "(\n" + "".join(
            f'    "{module}",\n' for module in covered
        ) + ")"
        return Fix(
            file=target_ctx.path,
            start_line=target_expr.lineno,
            start_col=target_expr.col_offset,
            end_line=end_line,
            end_col=end_col,
            replacement=replacement,
        )


def _all_strings(value) -> bool:
    return isinstance(value, tuple) and all(
        isinstance(element, str) for element in value
    )


def _site_stage_name(project: ProjectContext, site: CallSite, info) -> str:
    """Best-effort stage name for a forked wiring: the site's name arg."""
    positional = [a.arg for a in info.node.args.posonlyargs] + [
        a.arg for a in info.node.args.args
    ]
    try:
        index = positional.index("name")
    except ValueError:
        return "<dynamic>"
    expr = project.argument_expr(site, index, "name")
    if expr is None or isinstance(expr, ast.Starred):
        return "<dynamic>"
    folded, value = project.resolve_constant(site.ctx, expr)
    if folded and isinstance(value, str):
        return value
    return "<dynamic>"
