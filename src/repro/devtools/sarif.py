"""SARIF 2.1.0 rendering of a lint report.

SARIF is the interchange format CI annotation uploads understand; one
``repro lint --format sarif`` artifact per run lets the findings land as
inline review annotations without any bespoke glue.  The output is
*byte-stable*: rules and results are emitted in sorted order, the JSON
is dumped with fixed separators and indentation, and nothing
environment-dependent (timestamps, absolute paths, tool versions beyond
the schema constant) enters the document — the same tree lints to the
same bytes on any machine, so the artifact itself can be diffed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.devtools.findings import Finding
from repro.devtools.registry import all_rules

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"


def _rule_descriptor(rule) -> Dict[str, object]:
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
    }


def _result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.file},
                    "region": {"startLine": finding.line},
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """The findings as a deterministic SARIF 2.1.0 document (one run).

    The driver lists every registered rule — not just the violated ones —
    so consumers can tell "rule passed" from "rule absent"; both lists are
    sorted, making the document a pure function of the findings.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    rules: List[Dict[str, object]] = [
        _rule_descriptor(rule) for rule in all_rules()
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": [_result(finding) for finding in ordered],
            }
        ],
    }
    return json.dumps(
        document, indent=2, sort_keys=True, separators=(",", ": ")
    ) + "\n"
