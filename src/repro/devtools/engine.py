"""Lint engine: file discovery, suppression comments, rule dispatch.

Suppressions are inline comments on the flagged line::

    started = time.time()  # repro-lint: disable=REP003

or file-wide, anywhere in the file::

    # repro-lint: disable-file=REP005

A bare ``disable`` (no ``=RULES``) silences every rule for that line.
Suppression is deliberate and visible in the diff — unlike a baseline
entry, which marks *inherited* debt — so reviewers can veto it.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.baseline import apply_baseline, load_baseline
from repro.devtools.findings import Finding
from repro.devtools.registry import (
    AstRule,
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
)
from repro.errors import ConfigError

_INLINE_RE = re.compile(r"#\s*repro-lint:\s*disable(?:=([A-Z0-9,\s]+))?")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9,\s]+)")


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    out: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__" and not d.startswith(".")
                )
                for name in names:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        else:
            raise ConfigError(f"no such file or directory: {path}")
    return sorted(out)


def module_name_for(path: str) -> str:
    """Dotted module name by walking up the ``__init__.py`` package chain."""
    abspath = os.path.abspath(path)
    directory, filename = os.path.split(abspath)
    parts = [os.path.splitext(filename)[0]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


def parse_file(path: str) -> FileContext:
    """Parse one file into a :class:`FileContext` (posix-normalised path)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        raise ConfigError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ConfigError(f"syntax error in {path}:{exc.lineno}: {exc.msg}") from exc
    return FileContext(
        path=path.replace(os.sep, "/"),
        module=module_name_for(path),
        tree=tree,
        lines=source.splitlines(),
    )


def _parse_rule_list(text: str) -> Set[str]:
    return {token.strip() for token in text.split(",") if token.strip()}


def _suppressions(ctx: FileContext) -> Tuple[Dict[int, Optional[Set[str]]], Set[str]]:
    """Per-line and file-wide suppressed rule ids.

    The per-line map holds ``None`` for a bare ``disable`` (all rules).
    """
    by_line: Dict[int, Optional[Set[str]]] = {}
    file_wide: Set[str] = set()
    for lineno, text in enumerate(ctx.lines, start=1):
        if "#" not in text:
            continue
        file_match = _FILE_RE.search(text)
        if file_match:
            file_wide |= _parse_rule_list(file_match.group(1))
            continue
        inline_match = _INLINE_RE.search(text)
        if inline_match:
            rules_text = inline_match.group(1)
            by_line[lineno] = (
                _parse_rule_list(rules_text) if rules_text else None
            )
    return by_line, file_wide


def _is_suppressed(
    finding: Finding,
    by_line: Dict[int, Optional[Set[str]]],
    file_wide: Set[str],
) -> bool:
    if finding.rule in file_wide:
        return True
    if finding.line in by_line:
        rules = by_line[finding.line]
        return rules is None or finding.rule in rules
    return False


def run_lint(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and return the report.

    ``rule_ids`` restricts the run to a subset of rules; ``baseline_path``
    filters out findings recorded in that baseline file.
    """
    if rule_ids is not None:
        rules: List[Rule] = [get_rule(rule_id) for rule_id in sorted(set(rule_ids))]
    else:
        rules = all_rules()
    ast_rules = [rule for rule in rules if isinstance(rule, AstRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]

    contexts = [parse_file(path) for path in iter_python_files(paths)]
    report = LintReport(files_scanned=len(contexts))

    raw: List[Tuple[Finding, FileContext]] = []
    by_path = {ctx.path: ctx for ctx in contexts}
    for ctx in contexts:
        for rule in ast_rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                raw.append((finding, ctx))
    for rule in project_rules:
        scoped = [ctx for ctx in contexts if rule.applies_to(ctx)]
        for finding in rule.check_project(scoped):
            raw.append((finding, by_path[finding.file]))

    kept: List[Finding] = []
    suppression_cache: Dict[str, Tuple[Dict, Set[str]]] = {}
    for finding, ctx in raw:
        if ctx.path not in suppression_cache:
            suppression_cache[ctx.path] = _suppressions(ctx)
        by_line, file_wide = suppression_cache[ctx.path]
        if _is_suppressed(finding, by_line, file_wide):
            report.suppressed += 1
        else:
            kept.append(finding)

    if baseline_path is not None:
        fingerprints = load_baseline(baseline_path)
        before = len(kept)
        kept = apply_baseline(kept, fingerprints)
        report.baselined = before - len(kept)

    report.findings = sorted(kept, key=Finding.sort_key)
    return report
