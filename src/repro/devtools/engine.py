"""Lint engine: file discovery, suppression comments, rule dispatch.

Suppressions are inline comments on the flagged line::

    started = time.time()  # repro-lint: disable=REP003

or file-wide, anywhere in the file::

    # repro-lint: disable-file=REP005

A bare ``disable`` (no ``=RULES``) silences every rule for that line.
Suppression is deliberate and visible in the diff — unlike a baseline
entry, which marks *inherited* debt — so reviewers can veto it.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.astcache import AstCache, module_name_for, parse_file
from repro.devtools.baseline import apply_baseline, load_baseline
from repro.devtools.callgraph import ProjectContext
from repro.devtools.findings import Finding
from repro.devtools.registry import (
    AstRule,
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
)
from repro.errors import ConfigError

__all__ = [
    "LintReport",
    "iter_python_files",
    "module_name_for",
    "parse_file",
    "run_lint",
]

_INLINE_RE = re.compile(r"#\s*repro-lint:\s*disable(?:=([A-Z0-9,\s]+))?")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9,\s]+)")


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    out: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__" and not d.startswith(".")
                )
                for name in names:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        else:
            raise ConfigError(f"no such file or directory: {path}")
    return sorted(out)


def _parse_rule_list(text: str) -> Set[str]:
    return {token.strip() for token in text.split(",") if token.strip()}


def _suppressions(ctx: FileContext) -> Tuple[Dict[int, Optional[Set[str]]], Set[str]]:
    """Per-line and file-wide suppressed rule ids.

    The per-line map holds ``None`` for a bare ``disable`` (all rules).
    """
    by_line: Dict[int, Optional[Set[str]]] = {}
    file_wide: Set[str] = set()
    for lineno, text in enumerate(ctx.lines, start=1):
        if "#" not in text:
            continue
        file_match = _FILE_RE.search(text)
        if file_match:
            file_wide |= _parse_rule_list(file_match.group(1))
            continue
        inline_match = _INLINE_RE.search(text)
        if inline_match:
            rules_text = inline_match.group(1)
            by_line[lineno] = (
                _parse_rule_list(rules_text) if rules_text else None
            )
    return by_line, file_wide


def _is_suppressed(
    finding: Finding,
    by_line: Dict[int, Optional[Set[str]]],
    file_wide: Set[str],
) -> bool:
    if finding.rule in file_wide:
        return True
    if finding.line in by_line:
        rules = by_line[finding.line]
        return rules is None or finding.rule in rules
    return False


def run_lint(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
    baseline_path: Optional[str] = None,
    cache: Optional[AstCache] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and return the report.

    ``rule_ids`` restricts the run to a subset of rules; ``baseline_path``
    filters out findings recorded in that baseline file.  ``cache`` lets a
    caller reuse parses across runs (``--fix`` re-lints through the same
    cache after invalidating only the rewritten files); without one a
    fresh cache still guarantees each file parses exactly once within the
    run, shared by every per-file and whole-program rule.
    """
    if rule_ids is not None:
        rules: List[Rule] = [get_rule(rule_id) for rule_id in sorted(set(rule_ids))]
    else:
        rules = all_rules()
    ast_rules = [rule for rule in rules if isinstance(rule, AstRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]

    if cache is None:
        cache = AstCache()
    contexts = cache.contexts(iter_python_files(paths))
    report = LintReport(files_scanned=len(contexts))

    raw: List[Tuple[Finding, FileContext]] = []
    by_path = {ctx.path: ctx for ctx in contexts}
    for ctx in contexts:
        for rule in ast_rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                raw.append((finding, ctx))
    if project_rules:
        project = ProjectContext(contexts)
        for rule in project_rules:
            for finding in rule.check_project(project):
                ctx = by_path[finding.file]
                if rule.applies_to(ctx):
                    raw.append((finding, ctx))

    kept: List[Finding] = []
    suppression_cache: Dict[str, Tuple[Dict, Set[str]]] = {}
    for finding, ctx in raw:
        if ctx.path not in suppression_cache:
            suppression_cache[ctx.path] = _suppressions(ctx)
        by_line, file_wide = suppression_cache[ctx.path]
        if _is_suppressed(finding, by_line, file_wide):
            report.suppressed += 1
        else:
            kept.append(finding)

    if baseline_path is not None:
        fingerprints = load_baseline(baseline_path)
        before = len(kept)
        kept = apply_baseline(kept, fingerprints)
        report.baselined = before - len(kept)

    report.findings = sorted(kept, key=Finding.sort_key)
    return report
