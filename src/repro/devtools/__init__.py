"""Static-analysis devtools: the ``repro lint`` determinism checker.

The whole value of this reproduction is that one integer seed replays the
paper's February-2013 measurements bit-for-bit.  That property is easy to
lose — a stray ``random.Random(0)``, a ``time.time()`` leaking wall-clock
into simulated time — so the conventions are machine-enforced:

* :mod:`repro.devtools.registry` — rule registry and base classes;
* :mod:`repro.devtools.rules` — per-file AST rules REP001–REP005, REP007
  (raw concurrency) and REP008 (exception swallowing);
* :mod:`repro.devtools.layering` — import-graph rule REP006;
* :mod:`repro.devtools.baseline` — fingerprint baseline for adopting the
  linter on a codebase with pre-existing findings;
* :mod:`repro.devtools.engine` — file walking, suppression comments, and
  the ``run_lint`` entry point used by ``repro lint``.

Everything is stdlib-``ast``; there are no third-party dependencies.
"""

from repro.devtools.findings import Finding
from repro.devtools.registry import all_rules, get_rule
from repro.devtools.engine import LintReport, run_lint

__all__ = ["Finding", "LintReport", "all_rules", "get_rule", "run_lint"]
