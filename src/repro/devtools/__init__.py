"""Static-analysis devtools: the ``repro lint`` determinism checker.

The whole value of this reproduction is that one integer seed replays the
paper's February-2013 measurements bit-for-bit.  That property is easy to
lose — a stray ``random.Random(0)``, a ``time.time()`` leaking wall-clock
into simulated time, a stage fingerprint that silently stops covering the
code it caches — so the conventions are machine-enforced:

* :mod:`repro.devtools.registry` — rule registry and base classes;
* :mod:`repro.devtools.astcache` — parse-once AST cache every pass shares;
* :mod:`repro.devtools.callgraph` — the whole-program analysis engine:
  import graphs, a conservative call graph, constant folding, and
  parameter-binding resolution, built once per lint run;
* :mod:`repro.devtools.rules` — per-file AST rules REP001–REP005, REP007
  (raw concurrency), REP008 (exception swallowing), REP009, REP010, and
  REP014 (teardown interception outside ``repro.supervise``);
* :mod:`repro.devtools.layering` — import-graph rule REP006;
* :mod:`repro.devtools.rng_lineage` — whole-program rule REP011: RNG
  stream-label collisions and escaping RNG objects;
* :mod:`repro.devtools.fingerprints` — whole-program rule REP012: stage
  code-fingerprint coverage of the compute import closure;
* :mod:`repro.devtools.shard_safety` — rule REP013: static race detection
  for callables handed to the deterministic ``pmap`` executor;
* :mod:`repro.devtools.sarif` — byte-stable SARIF 2.1.0 rendering for CI
  annotation upload (``repro lint --format sarif``);
* :mod:`repro.devtools.autofix` — span-edit application for the
  mechanical fixes findings carry (``repro lint --fix``);
* :mod:`repro.devtools.storecheck` — fingerprint-drift cross-check
  between a store's ledger/index and the statically declared tuples
  (``repro store verify``);
* :mod:`repro.devtools.baseline` — fingerprint baseline for adopting the
  linter on a codebase with pre-existing findings;
* :mod:`repro.devtools.engine` — file walking, suppression comments, and
  the ``run_lint`` entry point used by ``repro lint``.

Everything is stdlib-``ast``; there are no third-party dependencies.
"""

from repro.devtools.findings import Finding, Fix
from repro.devtools.registry import all_rules, get_rule
from repro.devtools.engine import LintReport, run_lint

__all__ = [
    "Finding",
    "Fix",
    "LintReport",
    "all_rules",
    "get_rule",
    "run_lint",
]
