"""Rule registry: rules self-register at import time via a decorator.

Two rule shapes exist.  :class:`AstRule` sees one file at a time (a parsed
:class:`FileContext`); :class:`ProjectRule` sees the whole scanned project
at once through a :class:`~repro.devtools.callgraph.ProjectContext`, which
is what the import-graph, RNG-lineage, and fingerprint-coverage analyses
need.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.errors import ConfigError


@dataclass
class FileContext:
    """One parsed source file handed to every rule.

    ``module`` is the dotted module name (``repro.net.geoip``) when the file
    sits inside a package (``__init__.py`` chain), else the bare stem.
    ``path`` is always posix-style, relative to the lint invocation's cwd
    when possible, so findings and baselines are machine-independent.
    """

    path: str
    module: str
    tree: ast.Module
    lines: List[str]
    _random_aliases: frozenset = field(default=None, repr=False)  # type: ignore[assignment]
    _nodes: Optional[List[ast.AST]] = field(default=None, repr=False)

    def path_endswith(self, *suffixes: str) -> bool:
        """Whether the file path matches any posix suffix (allowlists)."""
        return any(self.path.endswith(suffix) for suffix in suffixes)

    def line_text(self, lineno: int) -> str:
        """Stripped source text of a 1-based line (empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    @property
    def nodes(self) -> List[ast.AST]:
        """Every AST node, materialised once and shared by all rules.

        Ten per-file rules each doing their own ``ast.walk`` costs more
        than the parse itself; walking once and iterating a list keeps
        whole-file rules O(nodes), not O(rules × nodes).
        """
        if self._nodes is None:
            self._nodes = list(ast.walk(self.tree))
        return self._nodes

    @property
    def random_aliases(self) -> frozenset:
        """Local names bound to ``random.Random`` via ``from random import``."""
        if self._random_aliases is None:
            aliases = set()
            for node in self.nodes:
                if isinstance(node, ast.ImportFrom) and node.module == "random":
                    for name in node.names:
                        if name.name == "Random":
                            aliases.add(name.asname or name.name)
            self._random_aliases = frozenset(aliases)
        return self._random_aliases


class Rule:
    """Base rule: an id (``REPnnn``), a one-line summary, and allowlists.

    ``allowed_path_suffixes`` names files exempt from the rule — e.g. the
    raw-RNG rules do not apply inside ``sim/rng.py``, which is the one
    module allowed to construct :class:`random.Random` directly.
    """

    id: str = ""
    summary: str = ""
    allowed_path_suffixes: Tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.path_endswith(*self.allowed_path_suffixes)


class AstRule(Rule):
    """A rule evaluated per file over its AST."""

    def check(self, ctx: FileContext) -> Iterator:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once over the whole project (cross-file analysis).

    ``project`` is a :class:`~repro.devtools.callgraph.ProjectContext`;
    its import graphs, call graph, and constant folder are shared across
    every project rule in the run, so each is computed at most once.
    """

    def check_project(self, project) -> Iterator:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index the rule by its id."""
    rule = rule_cls()
    if not rule.id:
        raise ConfigError(f"rule has no id: {rule_cls.__name__}")
    if rule.id in _REGISTRY:
        raise ConfigError(f"duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule; raises :class:`ConfigError` for unknown ids."""
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown rule {rule_id!r} (known: {known})") from exc


def _ensure_loaded() -> None:
    # Importing the rule modules triggers their @register decorators.
    from repro.devtools import (  # noqa: F401
        fingerprints,
        layering,
        rng_lineage,
        rules,
        shard_safety,
    )
