"""Parse-once AST cache shared by every lint rule and analysis pass.

``repro lint`` grew from per-file AST rules into whole-program analyses
(import graph, call graph, RNG lineage).  Each of those passes needs the
same parsed trees, so parsing is centralised here: an :class:`AstCache`
maps absolute paths to :class:`~repro.devtools.registry.FileContext`
objects and guarantees each file is read and parsed exactly once per
process, however many rules or passes consume it.

The cache is also what ``repro lint --fix`` invalidates after rewriting a
file, so the verification re-lint sees the patched source without paying
a full re-parse of the untouched files.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Sequence

from repro.devtools.registry import FileContext
from repro.errors import ConfigError


def module_name_for(path: str) -> str:
    """Dotted module name by walking up the ``__init__.py`` package chain."""
    abspath = os.path.abspath(path)
    directory, filename = os.path.split(abspath)
    parts = [os.path.splitext(filename)[0]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


def parse_file(path: str) -> FileContext:
    """Parse one file into a :class:`FileContext` (posix-normalised path)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        raise ConfigError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ConfigError(f"syntax error in {path}:{exc.lineno}: {exc.msg}") from exc
    return FileContext(
        path=path.replace(os.sep, "/"),
        module=module_name_for(path),
        tree=tree,
        lines=source.splitlines(),
    )


class AstCache:
    """Path → parsed :class:`FileContext`, each file parsed exactly once.

    Keys are absolute paths, so the same file reached through different
    relative spellings still parses once.  ``parses`` counts actual parse
    work (not cache hits); the lint bench asserts it equals the file
    count, which is how "parse each file exactly once" stays a tested
    property rather than an intention.
    """

    def __init__(self) -> None:
        self._by_path: Dict[str, FileContext] = {}
        #: Number of real (non-cached) parses performed.
        self.parses = 0

    def get(self, path: str) -> FileContext:
        """The parsed context for ``path``, parsing on first request."""
        key = os.path.abspath(path)
        ctx = self._by_path.get(key)
        if ctx is None:
            ctx = parse_file(path)
            self._by_path[key] = ctx
            self.parses += 1
        return ctx

    def contexts(self, paths: Sequence[str]) -> List[FileContext]:
        """Parsed contexts for every path, in the given order."""
        return [self.get(path) for path in paths]

    def invalidate(self, path: str) -> None:
        """Drop the cached parse for ``path`` (after a --fix rewrite)."""
        self._by_path.pop(os.path.abspath(path), None)

    def __len__(self) -> int:
        return len(self._by_path)
