"""Whole-program analysis engine: import graph, call graph, constants.

One :class:`ProjectContext` is built per lint run over the parsed
:class:`~repro.devtools.registry.FileContext` set and shared by every
project rule, so each structure — the runtime import graph (REP006), the
all-imports closure graph (REP012), the function index and conservative
call graph (REP011/REP012), and module-level constant folding — is
computed at most once however many rules consume it.

Everything here is deliberately *conservative*: a name or call that
cannot be resolved syntactically resolves to ``None`` and the consuming
rule stays silent, so the analyses never guess.  The call graph is
intra-project only — edges exist for plain-name calls, ``self.method``
calls, imported functions, and ``module.function`` attribute calls; a
dynamic dispatch the resolver cannot see simply contributes no edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.registry import FileContext

#: Sentinel distinguishing "resolved to None" from "could not resolve".
_UNRESOLVED = object()


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def iter_imports(
    tree: ast.Module,
    module: str,
    include_function_bodies: bool = False,
) -> Iterator[Tuple[str, int]]:
    """Yield ``(imported_module_candidate, lineno)`` for a module's imports.

    With ``include_function_bodies=False`` this walks only statements that
    execute at import time — class bodies and plain ``if``/``try`` blocks,
    but not function bodies or ``if TYPE_CHECKING:`` guards — which is
    what the layering rule (REP006) wants.  With it ``True``, function
    bodies are walked too (``TYPE_CHECKING`` stays excluded): any module a
    function can import can shape behaviour, which is what fingerprint
    closure (REP012) wants.

    ``from pkg import name`` yields both ``pkg`` and ``pkg.name`` — the
    name may bind a submodule or an attribute; the graph builders keep
    whichever actually exists in the scanned set.  Relative imports are
    resolved against ``module``.
    """
    package_parts = module.split(".")[:-1]

    def resolve_from(node: ast.ImportFrom) -> List[Tuple[str, int]]:
        if node.level == 0:
            base = node.module or ""
        else:
            anchor = package_parts[: len(package_parts) - (node.level - 1)]
            base = ".".join(anchor)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        if not base:
            return []
        out = [(base, node.lineno)]
        out.extend((f"{base}.{alias.name}", node.lineno) for alias in node.names)
        return out

    def walk(body: Sequence[ast.stmt]) -> Iterator[Tuple[str, int]]:
        for stmt in body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    yield alias.name, stmt.lineno
            elif isinstance(stmt, ast.ImportFrom):
                yield from resolve_from(stmt)
            elif isinstance(stmt, ast.If):
                if not _is_type_checking_test(stmt.test):
                    yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from walk(stmt.body)
            elif include_function_bodies and isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield from walk(stmt.body)
            elif include_function_bodies and isinstance(
                stmt, (ast.For, ast.AsyncFor, ast.While)
            ):
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)

    yield from walk(tree.body)


@dataclass(frozen=True)
class FunctionInfo:
    """One indexed function or method.

    ``qualname`` is ``module:name`` for top-level functions and
    ``module:Class.name`` for methods; nested (function-local) defs are
    deliberately not indexed — the call graph stays conservative.
    """

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    node: ast.AST
    ctx: FileContext

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass(frozen=True)
class CallSite:
    """One call expression, with enough context to map arguments back.

    ``param_offset`` is 1 when the call implicitly binds ``self`` (a
    ``self.method(...)`` call or a class instantiation), so positional
    argument *i* feeds parameter ``i + param_offset`` of the callee.
    """

    ctx: FileContext
    node: ast.Call
    caller: Optional[str]
    param_offset: int = 0


@dataclass(frozen=True)
class CallRecord:
    """Every call in the project, annotated with what could be resolved.

    ``callee`` is the project-internal qualname when the call graph
    resolved the target; ``target`` is the fully dotted import-level name
    of the called object when the *binding* resolved (e.g. a call through
    ``from repro.sim.rng import derive_rng`` has target
    ``repro.sim.rng.derive_rng`` whether or not that module was scanned).
    """

    ctx: FileContext
    node: ast.Call
    caller: Optional[str]
    callee: Optional[str]
    target: Optional[str]


class ProjectContext:
    """All whole-program structures for one lint run, built lazily."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files: List[FileContext] = list(files)
        self.by_module: Dict[str, FileContext] = {
            ctx.module: ctx for ctx in self.files
        }
        self.by_path: Dict[str, FileContext] = {ctx.path: ctx for ctx in self.files}
        self._runtime_graph: Optional[
            Tuple[Dict[str, Set[str]], Dict[Tuple[str, str], int]]
        ] = None
        self._closure_graph: Optional[Dict[str, Set[str]]] = None
        self._functions: Optional[Dict[str, FunctionInfo]] = None
        self._calls_to: Optional[Dict[str, List[CallSite]]] = None
        self._call_records: Optional[List[CallRecord]] = None
        self._bindings: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        self._const_cache: Dict[Tuple[str, str], Any] = {}

    # -- import graphs ----------------------------------------------------- #

    def runtime_import_graph(
        self,
    ) -> Tuple[Dict[str, Set[str]], Dict[Tuple[str, str], int]]:
        """Module → imported project modules, import-time edges only.

        Resolution matches Python's runtime behaviour for layering
        purposes: ``from pkg import name`` edges to both ``pkg`` and
        ``pkg.name`` when both are scanned, ``import pkg.sub`` walks up
        to the deepest scanned prefix, and importing one's own ancestor
        package is not an edge.
        """
        if self._runtime_graph is None:
            graph: Dict[str, Set[str]] = {module: set() for module in self.by_module}
            edge_lines: Dict[Tuple[str, str], int] = {}
            for ctx in self.files:
                for target, lineno in iter_imports(ctx.tree, ctx.module):
                    resolved = target
                    if resolved not in self.by_module:
                        while "." in resolved and resolved not in self.by_module:
                            resolved = resolved.rsplit(".", 1)[0]
                    if resolved not in self.by_module or resolved == ctx.module:
                        continue
                    if ctx.module.startswith(resolved + "."):
                        continue
                    graph[ctx.module].add(resolved)
                    edge_lines.setdefault((ctx.module, resolved), lineno)
            self._runtime_graph = (graph, edge_lines)
        return self._runtime_graph

    def closure_graph(self) -> Dict[str, Set[str]]:
        """Module → imported project modules, *all* imports, deepest-only.

        Unlike the runtime graph this walks function bodies too (a
        function-local import still makes behaviour depend on the imported
        module) and records only the deepest scanned module per import —
        ``from repro import io`` edges to ``repro.io``, not to the
        ``repro`` package whose ``__init__`` would otherwise drag the
        whole tree into every closure.
        """
        if self._closure_graph is None:
            graph: Dict[str, Set[str]] = {module: set() for module in self.by_module}
            for ctx in self.files:
                seen_lines: Dict[int, List[str]] = {}
                for target, lineno in iter_imports(
                    ctx.tree, ctx.module, include_function_bodies=True
                ):
                    seen_lines.setdefault(lineno, []).append(target)
                for lineno in seen_lines:
                    candidates = seen_lines[lineno]
                    resolved: Set[str] = set()
                    for candidate in candidates:
                        probe = candidate
                        while "." in probe and probe not in self.by_module:
                            probe = probe.rsplit(".", 1)[0]
                        if probe in self.by_module:
                            resolved.add(probe)
                    # ``from pkg import a, b`` resolves pkg, pkg.a, pkg.b;
                    # keep the deepest modules and drop any ancestor of a
                    # kept module (the package __init__ edge).
                    for module in resolved:
                        if module == ctx.module or ctx.module.startswith(
                            module + "."
                        ):
                            continue
                        if any(
                            other != module and other.startswith(module + ".")
                            for other in resolved
                        ):
                            continue
                        graph[ctx.module].add(module)
            self._closure_graph = graph
        return self._closure_graph

    def import_closure(self, root: str) -> Set[str]:
        """Transitive closure of ``root`` over :meth:`closure_graph`.

        Includes ``root`` itself when scanned; unknown roots close to
        the empty set.
        """
        graph = self.closure_graph()
        if root not in graph:
            return set()
        closure: Set[str] = {root}
        frontier = [root]
        while frontier:
            module = frontier.pop()
            for successor in graph[module]:
                if successor not in closure:
                    closure.add(successor)
                    frontier.append(successor)
        return closure

    # -- name bindings ----------------------------------------------------- #

    def _module_bindings(self, ctx: FileContext) -> Dict[str, Tuple[str, ...]]:
        """Local name → binding tuple for one module's top-level scope.

        Binding shapes: ``("def", qualname)`` for a top-level function,
        ``("class", "module:Class")``, ``("module", dotted)`` for an
        imported module, and ``("name", base_module, attr)`` for a name
        imported from elsewhere (function, class, or constant — resolved
        on demand).
        """
        if ctx.module in self._bindings:
            return self._bindings[ctx.module]
        bindings: Dict[str, Tuple[str, ...]] = {}
        package_parts = ctx.module.split(".")[:-1]
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bindings[stmt.name] = ("def", f"{ctx.module}:{stmt.name}")
            elif isinstance(stmt, ast.ClassDef):
                bindings[stmt.name] = ("class", f"{ctx.module}:{stmt.name}")
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.asname:
                        bindings[alias.asname] = ("module", alias.name)
                    elif "." not in alias.name:
                        bindings[alias.name] = ("module", alias.name)
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.level == 0:
                    base = stmt.module or ""
                else:
                    anchor = package_parts[: len(package_parts) - (stmt.level - 1)]
                    base = ".".join(anchor)
                    if stmt.module:
                        base = f"{base}.{stmt.module}" if base else stmt.module
                if not base:
                    continue
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    submodule = f"{base}.{alias.name}"
                    if submodule in self.by_module:
                        bindings[local] = ("module", submodule)
                    else:
                        bindings[local] = ("name", base, alias.name)
        self._bindings[ctx.module] = bindings
        return bindings

    def dotted_target(self, ctx: FileContext, func: ast.AST) -> Optional[str]:
        """The fully dotted name a call expression resolves to, if any.

        ``derive_rng(...)`` under ``from repro.sim.rng import derive_rng``
        resolves to ``"repro.sim.rng.derive_rng"``; ``rng.derive_rng(...)``
        under ``from repro.sim import rng`` resolves the same.  Names the
        binding map cannot see resolve to ``None``.
        """
        if isinstance(func, ast.Name):
            binding = self._module_bindings(ctx).get(func.id)
            if binding is None:
                return None
            if binding[0] == "name":
                return f"{binding[1]}.{binding[2]}"
            if binding[0] in ("def", "class"):
                return binding[1].replace(":", ".")
            if binding[0] == "module":
                return binding[1]
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            binding = self._module_bindings(ctx).get(func.value.id)
            if binding is not None and binding[0] == "module":
                return f"{binding[1]}.{func.attr}"
            return None
        return None

    # -- function index and call graph ------------------------------------- #

    @property
    def functions(self) -> Dict[str, FunctionInfo]:
        """Qualname → info for every top-level function and method."""
        if self._functions is None:
            self._build_call_index()
        return self._functions  # type: ignore[return-value]

    @property
    def calls_to(self) -> Dict[str, List[CallSite]]:
        """Callee qualname → every resolved call site, in scan order."""
        if self._calls_to is None:
            self._build_call_index()
        return self._calls_to  # type: ignore[return-value]

    @property
    def call_records(self) -> List[CallRecord]:
        """Every call expression in the project, annotated."""
        if self._call_records is None:
            self._build_call_index()
        return self._call_records  # type: ignore[return-value]

    def _index_functions(self) -> None:
        functions: Dict[str, FunctionInfo] = {}
        for ctx in self.files:
            for stmt in ctx.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{ctx.module}:{stmt.name}"
                    functions[qualname] = FunctionInfo(
                        qualname, ctx.module, stmt.name, None, stmt, ctx
                    )
                elif isinstance(stmt, ast.ClassDef):
                    for sub in stmt.body:
                        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            qualname = f"{ctx.module}:{stmt.name}.{sub.name}"
                            functions[qualname] = FunctionInfo(
                                qualname, ctx.module, sub.name, stmt.name, sub, ctx
                            )
        self._functions = functions

    def _build_call_index(self) -> None:
        self._index_functions()
        functions = self._functions or {}
        calls_to: Dict[str, List[CallSite]] = {}
        records: List[CallRecord] = []

        def resolve_call(
            ctx: FileContext, node: ast.Call, class_name: Optional[str]
        ) -> Tuple[Optional[str], int]:
            func = node.func
            if isinstance(func, ast.Name):
                binding = self._module_bindings(ctx).get(func.id)
                if binding is None:
                    return None, 0
                if binding[0] == "def":
                    return binding[1], 0
                if binding[0] == "class":
                    init = binding[1] + ".__init__"
                    return (init, 1) if init in functions else (None, 0)
                if binding[0] == "name":
                    candidate = f"{binding[1]}:{binding[2]}"
                    if candidate in functions:
                        return candidate, 0
                    init = candidate + ".__init__"
                    if init in functions:
                        return init, 1
                return None, 0
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if func.value.id == "self" and class_name is not None:
                    candidate = f"{ctx.module}:{class_name}.{func.attr}"
                    if candidate in functions:
                        return candidate, 1
                    return None, 0
                binding = self._module_bindings(ctx).get(func.value.id)
                if binding is not None and binding[0] == "module":
                    candidate = f"{binding[1]}:{func.attr}"
                    if candidate in functions:
                        return candidate, 0
            return None, 0

        def visit(
            node: ast.AST,
            ctx: FileContext,
            caller: Optional[str],
            class_name: Optional[str],
        ) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if caller is None:
                    name = (
                        f"{ctx.module}:{class_name}.{node.name}"
                        if class_name
                        else f"{ctx.module}:{node.name}"
                    )
                else:
                    name = caller  # nested defs attribute to the enclosing
                for child in ast.iter_child_nodes(node):
                    visit(child, ctx, name, class_name)
                return
            if isinstance(node, ast.ClassDef):
                inner_class = node.name if caller is None else class_name
                for child in ast.iter_child_nodes(node):
                    visit(child, ctx, caller, inner_class)
                return
            if isinstance(node, ast.Call):
                callee, offset = resolve_call(ctx, node, class_name)
                if callee is not None:
                    calls_to.setdefault(callee, []).append(
                        CallSite(ctx, node, caller, offset)
                    )
                records.append(
                    CallRecord(
                        ctx,
                        node,
                        caller,
                        callee,
                        self.dotted_target(ctx, node.func),
                    )
                )
            for child in ast.iter_child_nodes(node):
                visit(child, ctx, caller, class_name)

        for ctx in self.files:
            visit(ctx.tree, ctx, None, None)
        self._calls_to = calls_to
        self._call_records = records

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Function qualnames reachable from ``roots`` over the call graph."""
        edges: Dict[str, Set[str]] = {}
        for callee, sites in self.calls_to.items():
            for site in sites:
                if site.caller is not None:
                    edges.setdefault(site.caller, set()).add(callee)
        seen: Set[str] = set()
        frontier = [root for root in roots if root in self.functions]
        seen.update(frontier)
        while frontier:
            qualname = frontier.pop()
            for successor in edges.get(qualname, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    # -- constant folding --------------------------------------------------- #

    def resolve_constant(self, ctx: FileContext, expr: ast.AST) -> Tuple[bool, Any]:
        """Fold ``expr`` to a constant using module-level assignments.

        Returns ``(True, value)`` when the expression reduces to a
        constant — literals, tuples of constants, ``+`` concatenation,
        names bound exactly once at module level to a foldable value
        (including names imported from another scanned module).  Anything
        else returns ``(False, None)`` and the caller stays silent.
        """
        value = self._fold(ctx, expr, depth=0)
        if value is _UNRESOLVED:
            return False, None
        return True, value

    def _fold(self, ctx: FileContext, expr: ast.AST, depth: int) -> Any:
        if depth > 12:
            return _UNRESOLVED
        if isinstance(expr, ast.Constant):
            return expr.value
        if isinstance(expr, (ast.Tuple, ast.List)):
            items = [self._fold(ctx, item, depth + 1) for item in expr.elts]
            if any(item is _UNRESOLVED for item in items):
                return _UNRESOLVED
            return tuple(items)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left = self._fold(ctx, expr.left, depth + 1)
            right = self._fold(ctx, expr.right, depth + 1)
            if left is _UNRESOLVED or right is _UNRESOLVED:
                return _UNRESOLVED
            if isinstance(left, tuple) and isinstance(right, tuple):
                return left + right
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            return _UNRESOLVED
        if isinstance(expr, ast.Name):
            return self._fold_name(ctx, expr.id, depth)
        return _UNRESOLVED

    def constant_definition(
        self, ctx: FileContext, name: str
    ) -> Optional[Tuple[FileContext, ast.AST]]:
        """Where a module-level constant name is defined: (ctx, value expr).

        Follows a single unambiguous module-level assignment, chasing the
        name through ``from module import name`` into the defining scanned
        module.  Returns ``None`` when the definition is absent, multiple,
        or outside the scanned set — autofixes must then stay away.
        """
        seen: Set[Tuple[str, str]] = set()
        while True:
            key = (ctx.module, name)
            if key in seen:
                return None
            seen.add(key)
            assignments = [
                stmt
                for stmt in ctx.tree.body
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == name
                )
                or (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == name
                    and stmt.value is not None
                )
            ]
            if len(assignments) == 1:
                return ctx, assignments[0].value
            if assignments:
                return None
            binding = self._module_bindings(ctx).get(name)
            if binding is None or binding[0] != "name":
                return None
            other = self.by_module.get(binding[1])
            if other is None:
                return None
            ctx, name = other, binding[2]

    def _fold_name(self, ctx: FileContext, name: str, depth: int) -> Any:
        cache_key = (ctx.module, name)
        if cache_key in self._const_cache:
            return self._const_cache[cache_key]
        self._const_cache[cache_key] = _UNRESOLVED  # cycle guard
        value: Any = _UNRESOLVED
        assignments = [
            stmt.value
            for stmt in ctx.tree.body
            if isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
        ] + [
            stmt.value
            for stmt in ctx.tree.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == name
            and stmt.value is not None
        ]
        if len(assignments) == 1:
            value = self._fold(ctx, assignments[0], depth + 1)
        elif not assignments:
            binding = self._module_bindings(ctx).get(name)
            if binding is not None and binding[0] == "name":
                other = self.by_module.get(binding[1])
                if other is not None:
                    value = self._fold_name(other, binding[2], depth + 1)
        self._const_cache[cache_key] = value
        return value

    # -- parameter bindings -------------------------------------------------- #

    def param_bindings(
        self, qualname: str, param: str
    ) -> Optional[List[Tuple[CallSite, Any]]]:
        """Constant values bound to ``param`` at every known call site.

        Returns one ``(call_site, value)`` per call site when *every* call
        site of ``qualname`` binds the parameter to a foldable constant
        (explicitly or through the declared default); returns ``None`` as
        soon as any site is unresolvable or no call site is known — the
        consuming rule must then stay silent.
        """
        info = self.functions.get(qualname)
        if info is None:
            return None
        args = info.node.args
        positional = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        try:
            index = positional.index(param)
        except ValueError:
            if param not in [a.arg for a in args.kwonlyargs]:
                return None
            index = -1
        default = self._param_default(info, param)
        sites = self.calls_to.get(qualname, [])
        if not sites:
            return None
        out: List[Tuple[CallSite, Any]] = []
        for site in sites:
            expr = self.argument_expr(site, index, param)
            if expr is None:
                if default is None:
                    return None
                folded = self._fold(info.ctx, default, depth=0)
            else:
                if isinstance(expr, ast.Starred):
                    return None
                folded = self._fold(site.ctx, expr, depth=0)
            if folded is _UNRESOLVED:
                return None
            out.append((site, folded))
        return out

    def _param_default(self, info: FunctionInfo, param: str) -> Optional[ast.AST]:
        args = info.node.args
        positional = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        if param in positional:
            index = positional.index(param)
            offset = len(positional) - len(args.defaults)
            if index >= offset:
                return args.defaults[index - offset]
            return None
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == param and default is not None:
                return default
        return None

    def argument_expr(
        self, site: CallSite, index: int, param: str
    ) -> Optional[ast.AST]:
        for keyword in site.node.keywords:
            if keyword.arg == param:
                return keyword.value
            if keyword.arg is None:
                # A **kwargs splat can bind anything; treat the call as
                # unresolvable rather than guessing.
                return ast.Starred(value=keyword.value)
        if index < 0:
            return None
        call_index = index - site.param_offset
        if 0 <= call_index < len(site.node.args):
            expr = site.node.args[call_index]
            if isinstance(expr, ast.Starred):
                return expr
            if any(isinstance(arg, ast.Starred) for arg in site.node.args[:call_index]):
                return ast.Starred(value=expr)
            return expr
        return None

