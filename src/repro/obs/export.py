"""Stable snapshot rendering for observer state.

The text format is Prometheus-style exposition lines followed by the span
tree and the event log; everything is sorted or sequence-ordered by
construction, so the same run renders the same bytes at any worker count —
which is what lets the small-pipeline snapshot live under
``tests/goldens/``.  ``REPRO_METRICS`` / ``--metrics-out`` choose where a
CLI run writes its snapshot; a ``.json`` suffix selects the JSON form.
"""

from __future__ import annotations

import json
import math
import os
from typing import List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, LabelItems
from repro.obs.scope import Observer
from repro.obs.trace import Span

#: Environment variable consulted when no explicit ``--metrics-out`` is given.
METRICS_ENV = "REPRO_METRICS"


def resolve_metrics_out(explicit: Optional[str] = None) -> Optional[str]:
    """Snapshot path: explicit argument, else ``$REPRO_METRICS``, else None."""
    if explicit:
        return explicit
    return os.environ.get(METRICS_ENV, "").strip() or None


def _fmt_number(value) -> str:
    """Integral floats print as ints; everything else as repr."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _fmt_labels(labels: LabelItems, extra: Optional[str] = None) -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra is not None:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _metric_lines(observer: Observer) -> List[str]:
    lines: List[str] = []
    for name, labels, metric in observer.registry.items():
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{name}{_fmt_labels(labels)} {_fmt_number(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            for bound, cumulative in metric.cumulative():
                le = f'le="{_fmt_number(bound)}"'
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, le)} {cumulative}"
                )
            lines.append(
                f"{name}_sum{_fmt_labels(labels)} {_fmt_number(metric.sum)}"
            )
            lines.append(f"{name}_count{_fmt_labels(labels)} {metric.count}")
    return lines


def _span_lines(spans: List[Span], depth: int = 0) -> List[str]:
    lines: List[str] = []
    for span in spans:
        lines.append(
            f"{'  ' * depth}{span.name}{_fmt_labels(span.attrs)} "
            f"duration={span.duration}s own={span.own_seconds}s"
        )
        lines.extend(_span_lines(span.children, depth + 1))
    return lines


def render_spans(observer: Observer) -> str:
    """Just the span-timing tree (benchmark per-phase reports)."""
    lines = ["# spans (simulated seconds)"]
    lines.extend(_span_lines(observer.spans) or ["(none)"])
    return "\n".join(lines)


def render_text(observer: Observer) -> str:
    """The full text snapshot: metrics, then spans, then events."""
    lines = ["# metrics"]
    lines.extend(_metric_lines(observer) or ["(none)"])
    lines.append("")
    lines.append(render_spans(observer))
    lines.append("")
    lines.append(f"# events (dropped={observer.events.dropped})")
    event_lines = [
        f"{event.name}{_fmt_labels(event.fields)}"
        for event in observer.events.events
    ]
    lines.extend(event_lines or ["(none)"])
    return "\n".join(lines)


def _span_dict(span: Span) -> dict:
    return {
        "name": span.name,
        "attrs": {key: value for key, value in span.attrs},
        "own_seconds": span.own_seconds,
        "duration": span.duration,
        "children": [_span_dict(child) for child in span.children],
    }


def render_json(observer: Observer) -> str:
    """The snapshot as a stable (sorted-key) JSON document."""
    metrics: List[dict] = []
    for name, labels, metric in observer.registry.items():
        entry: dict = {"name": name, "labels": {k: v for k, v in labels}}
        if isinstance(metric, Counter):
            entry["type"] = "counter"
            entry["value"] = metric.value
        elif isinstance(metric, Gauge):
            entry["type"] = "gauge"
            entry["value"] = metric.value
        else:
            entry["type"] = "histogram"
            entry["buckets"] = [
                {"le": _fmt_number(bound), "cumulative": cumulative}
                for bound, cumulative in metric.cumulative()
            ]
            entry["sum"] = metric.sum
            entry["count"] = metric.count
        metrics.append(entry)
    document = {
        "metrics": metrics,
        "spans": [_span_dict(span) for span in observer.spans],
        "events": [
            {"name": event.name, "fields": {k: v for k, v in event.fields}}
            for event in observer.events.events
        ],
        "dropped_events": observer.events.dropped,
    }
    return json.dumps(document, indent=2, sort_keys=True)


def write_snapshot(observer: Observer, path: str) -> str:
    """Write the snapshot to ``path`` (JSON when it ends in ``.json``)."""
    text = render_json(observer) if path.endswith(".json") else render_text(observer)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path
