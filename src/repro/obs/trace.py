"""Sim-clock spans and a bounded structured event log.

Spans answer "where did the simulated time go": each records its own
sim-seconds (credited via :meth:`repro.obs.scope.Observer.add_time`) plus
its children, so a pipeline run renders as a tree of stage timings — the
scan's eight days, the crawl two months later — with no wall-clock
anywhere.  The event log captures discrete occurrences (a retry burst, a
descriptor flap) with a hard size bound so a pathological run cannot grow
the snapshot without bound; overflow is counted, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ObservabilityError

#: Structured attributes in canonical form: name-sorted (key, value) pairs.
AttrItems = Tuple[Tuple[str, str], ...]


def canonical_attrs(attrs: dict) -> AttrItems:
    """Sorted ``(key, str(value))`` pairs — one spelling per attr set."""
    return tuple((key, str(attrs[key])) for key in sorted(attrs))


@dataclass
class Span:
    """One named region of simulated time, possibly with children."""

    name: str
    attrs: AttrItems = ()
    #: Simulated seconds credited directly to this span (not children).
    own_seconds: int = 0
    children: List["Span"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ObservabilityError("span name must be non-empty")

    @property
    def duration(self) -> int:
        """Total simulated seconds: own time plus every descendant's."""
        return self.own_seconds + sum(child.duration for child in self.children)

    def add_time(self, seconds: int) -> None:
        """Credit ``seconds`` of simulated time directly to this span."""
        if seconds < 0:
            raise ObservabilityError(f"span time must be >= 0: {seconds}")
        self.own_seconds += seconds


@dataclass
class Event:
    """One structured occurrence."""

    name: str
    fields: AttrItems = ()


class EventLog:
    """An append-only event list with a hard size bound.

    Once ``max_events`` entries exist, further events increment
    :attr:`dropped` instead of growing the list — the snapshot stays
    bounded and the overflow stays visible.
    """

    def __init__(self, max_events: int = 256) -> None:
        if max_events < 0:
            raise ObservabilityError(f"max_events must be >= 0: {max_events}")
        self.max_events = max_events
        self.events: List[Event] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def add(self, name: str, **fields: object) -> None:
        """Record one event (or count it dropped past the bound)."""
        if not name:
            raise ObservabilityError("event name must be non-empty")
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(Event(name=name, fields=canonical_attrs(fields)))

    def extend(self, other: "EventLog") -> None:
        """Append a shard log's events, respecting this log's bound."""
        for event in other.events:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                continue
            self.events.append(event)
        self.dropped += other.dropped
