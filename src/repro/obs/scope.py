"""The explicit observability scope threaded through the pipeline.

An :class:`Observer` bundles a :class:`~repro.obs.metrics.MetricsRegistry`,
a span stack, and a bounded event log behind one object that components
receive as an argument — **never** global mutable state.  A component that
is handed no observer gets :data:`NULL_OBSERVER`, whose every method is a
no-op, so instrumentation costs nothing when nobody is watching and the
instrumented code never branches on "is telemetry on".

For parallel stages, :meth:`child` mints a fresh observer per shard and
:meth:`absorb` folds it back in; done in shard order (as
:func:`repro.parallel.pmap` does), the merged snapshot is byte-identical
at every worker count, because counters and histograms are additive and
shard-order concatenation of events equals global item order.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import EventLog, Span, canonical_attrs


class Observer:
    """Metrics + spans + events for one measurement run (or one shard)."""

    def __init__(
        self,
        name: str = "root",
        enabled: bool = True,
        max_events: int = 256,
    ) -> None:
        self.name = name
        self.enabled = enabled
        self.registry = MetricsRegistry(name)
        self.events = EventLog(max_events)
        #: Completed/open top-level spans, in creation order.
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    @classmethod
    def disabled(cls) -> "Observer":
        """An observer whose every method is a no-op."""
        return cls(name="disabled", enabled=False)

    # -- metrics ---------------------------------------------------------- #

    def count(self, name: str, amount: int = 1, **labels: object) -> None:
        """Increment the counter ``(name, labels)`` by ``amount``."""
        if self.enabled:
            self.registry.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value, **labels: object) -> None:
        """Set the gauge ``(name, labels)`` to ``value``."""
        if self.enabled:
            self.registry.gauge(name, **labels).set(value)

    def observe(
        self, name: str, value, buckets=DEFAULT_BUCKETS, **labels: object
    ) -> None:
        """Record ``value`` into the histogram ``(name, labels)``."""
        if self.enabled:
            self.registry.histogram(name, buckets=buckets, **labels).observe(value)

    # -- events ----------------------------------------------------------- #

    def event(self, name: str, **fields: object) -> None:
        """Append a structured event (bounded; overflow is counted)."""
        if self.enabled:
            self.events.add(name, **fields)

    # -- spans ------------------------------------------------------------ #

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a nested span; sim-time is credited via :meth:`add_time`."""
        opened = Span(name=name, attrs=canonical_attrs(attrs))
        if not self.enabled:
            yield opened
            return
        if self._stack:
            self._stack[-1].children.append(opened)
        else:
            self.spans.append(opened)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            self._stack.pop()

    def add_time(self, seconds: int) -> None:
        """Credit simulated seconds to the innermost open span (if any)."""
        if self.enabled and self._stack and seconds:
            self._stack[-1].add_time(seconds)

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    # -- shard fan-out ---------------------------------------------------- #

    def child(self, name: str) -> "Observer":
        """A fresh observer for one shard of a parallel stage."""
        return Observer(
            name=name, enabled=self.enabled, max_events=self.events.max_events
        )

    def absorb(self, child: "Observer") -> None:
        """Fold a shard observer back in (call in shard order).

        Counters and histograms add; gauges take the child's write; events
        append; the child's top-level spans graft under the currently open
        span (or become top-level here).
        """
        if not self.enabled:
            return
        self.registry.merge(child.registry)
        self.events.extend(child.events)
        if self._stack:
            self._stack[-1].children.extend(child.spans)
        else:
            self.spans.extend(child.spans)


#: The shared no-op observer components default to.  Its methods mutate
#: nothing, so sharing one instance is safe.
NULL_OBSERVER = Observer.disabled()


def ensure_observer(observer: Optional[Observer]) -> Observer:
    """``observer`` itself, or the no-op observer for ``None``."""
    return observer if observer is not None else NULL_OBSERVER
