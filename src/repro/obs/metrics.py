"""Deterministic metric primitives: counters, gauges, histograms.

The paper's headline numbers — 24,511 resolvable descriptors, 22,007 open
ports, 1,031,176 client requests — are all *counts from instrumentation*.
This module provides the counting machinery with the discipline the rest of
the repo demands: no wall-clock anywhere (histograms observe **simulated**
seconds), fixed bucket bounds declared up front, and a merge operation whose
result depends only on the sequence of merges — never on scheduling — so
per-shard registries recombine byte-identically at any worker count.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple, Union

from repro.errors import ObservabilityError

Number = Union[int, float]

#: Label set in canonical form: name-sorted (key, value) pairs.
LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram bounds, in simulated seconds: probe latencies up
#: through retry backoffs (minutes) and whole scan days.  ``+Inf`` is
#: implicit — every histogram gets an unbounded final bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
    3600.0, 86400.0,
)


def canonical_labels(labels: Dict[str, object]) -> LabelItems:
    """Sorted ``(key, str(value))`` pairs — one spelling per label set."""
    return tuple((key, str(labels[key])) for key in sorted(labels))


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(f"counter increment must be >= 0: {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Counters are additive across shards."""
        self.value += other.value


@dataclass
class Gauge:
    """A point-in-time value; merging keeps the most recent write."""

    value: Number = 0
    #: Whether :meth:`set` has ever been called (empty gauges merge away).
    written: bool = False

    def set(self, value: Number) -> None:
        """Record the current value."""
        self.value = value
        self.written = True

    def merge(self, other: "Gauge") -> None:
        """Last write wins, in merge order (shard order, by contract)."""
        if other.written:
            self.value = other.value
            self.written = True


@dataclass
class Histogram:
    """Observation counts in fixed, ascending buckets (``le`` semantics).

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; a final
    unbounded bucket catches everything larger.  Bounds are fixed at
    construction so shard histograms merge by plain vector addition.
    """

    bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    sum: Number = 0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ObservabilityError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(self.bounds):
            raise ObservabilityError(
                f"histogram bounds must be ascending: {self.bounds}"
            )
        if len(set(self.bounds)) != len(self.bounds):
            raise ObservabilityError(
                f"histogram bounds must be distinct: {self.bounds}"
            )
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: Number) -> None:
        """Account one observation (a simulated-seconds duration, usually)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Vector-add a shard histogram with identical bounds."""
        if other.bounds != self.bounds:
            raise ObservabilityError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` rows, ``+Inf`` last."""
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            rows.append((bound, running))
        rows.append((float("inf"), running + self.counts[-1]))
        return rows


Metric = Union[Counter, Gauge, Histogram]

#: Exposition-order kind tags (also used for type-conflict messages).
_KINDS = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsRegistry:
    """A named collection of metrics, keyed by (metric name, label set).

    ``counter`` / ``gauge`` / ``histogram`` get-or-create; asking for the
    same (name, labels) with a different type — or a histogram with
    different bounds — is a programming error and raises
    :class:`ObservabilityError` rather than silently forking the series.
    """

    def __init__(self, name: str = "root") -> None:
        if not name:
            raise ObservabilityError("registry name must be non-empty")
        self.name = name
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(
        self, name: str, labels: Dict[str, object], factory
    ) -> Metric:
        if not name:
            raise ObservabilityError("metric name must be non-empty")
        key = (name, canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        metric = self._get_or_create(name, labels, Counter)
        if not isinstance(metric, Counter):
            raise ObservabilityError(
                f"metric {name!r} is a {_KINDS[type(metric)]}, not a counter"
            )
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        metric = self._get_or_create(name, labels, Gauge)
        if not isinstance(metric, Gauge):
            raise ObservabilityError(
                f"metric {name!r} is a {_KINDS[type(metric)]}, not a gauge"
            )
        return metric

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        bounds = tuple(float(bound) for bound in buckets)
        metric = self._get_or_create(
            name, labels, lambda: Histogram(bounds=bounds)
        )
        if not isinstance(metric, Histogram):
            raise ObservabilityError(
                f"metric {name!r} is a {_KINDS[type(metric)]}, not a histogram"
            )
        if metric.bounds != bounds:
            raise ObservabilityError(
                f"histogram {name!r} already registered with bounds "
                f"{metric.bounds}, not {bounds}"
            )
        return metric

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold a shard registry in: counters/histograms add, gauges take
        the incoming write.  Walks ``other`` in its own insertion order, so
        a sequence of merges in shard order reproduces the serial run's
        write order exactly.
        """
        for (name, labels), incoming in other._metrics.items():
            key = (name, labels)
            existing = self._metrics.get(key)
            if existing is None:
                if isinstance(incoming, Counter):
                    existing = self._metrics[key] = Counter()
                elif isinstance(incoming, Gauge):
                    existing = self._metrics[key] = Gauge()
                else:
                    existing = self._metrics[key] = Histogram(
                        bounds=incoming.bounds
                    )
            if type(existing) is not type(incoming):
                raise ObservabilityError(
                    f"cannot merge {_KINDS[type(incoming)]} {name!r} into "
                    f"{_KINDS[type(existing)]} of the same name"
                )
            existing.merge(incoming)

    def items(self) -> List[Tuple[str, LabelItems, Metric]]:
        """Every metric as ``(name, labels, metric)``, in sorted order."""
        return [
            (name, labels, self._metrics[(name, labels)])
            for name, labels in sorted(self._metrics)
        ]
