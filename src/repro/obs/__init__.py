"""repro.obs — the deterministic observability plane.

Counters, gauges and fixed-bucket histograms (:mod:`repro.obs.metrics`),
sim-clock spans and a bounded event log (:mod:`repro.obs.trace`), stable
text/JSON snapshots (:mod:`repro.obs.export`), all carried by an explicit
:class:`~repro.obs.scope.Observer` threaded through the pipeline
(:mod:`repro.obs.scope`) — never global mutable state.  Snapshots are
byte-identical at any worker count; lint rule REP009 keeps ad-hoc
``print``/``perf_counter`` instrumentation out of library code.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.scope import NULL_OBSERVER, Observer, ensure_observer
from repro.obs.trace import Event, EventLog, Span
from repro.obs.export import (
    METRICS_ENV,
    render_json,
    render_spans,
    render_text,
    resolve_metrics_out,
    write_snapshot,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observer",
    "ensure_observer",
    "Event",
    "EventLog",
    "Span",
    "METRICS_ENV",
    "render_json",
    "render_spans",
    "render_text",
    "resolve_metrics_out",
    "write_snapshot",
]
