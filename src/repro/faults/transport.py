"""Transport wrapper that injects planned faults.

:class:`FaultInjectingTransport` sits between the measurement pipeline and
the real :class:`~repro.net.transport.TorTransport`, exposing the same
``connect`` / ``scan_ports`` / ``has_descriptor`` interface.  Consumers
cannot tell the difference — which is the point: the scanner, crawler and
resolver exercise their retry paths against faults exactly as they would
against a misbehaving live network.

Every injected fault is decided by the :class:`~repro.faults.plan.FaultPlan`
from an RNG stream keyed on ``(onion, port, attempt)``.  The wrapper's only
mutable state is the per-endpoint attempt counters that feed those keys;
because the pipeline probes endpoints in a deterministic order (and retries
are sequenced by the retry layer), the counters — and therefore every fault
draw — replay identically at any worker count.
"""

from __future__ import annotations

import dataclasses
from typing import Collection, Dict, Optional, Tuple

from repro.crypto.onion import OnionAddress
from repro.faults.plan import FaultPlan
from repro.net.endpoint import ConnectOutcome, ConnectResult
from repro.obs.scope import Observer, ensure_observer
from repro.sim.clock import Timestamp


class FaultInjectingTransport:
    """Wraps a transport, injecting faults per a :class:`FaultPlan`.

    Args:
        inner: the transport doing the real (simulated) work.
        plan: which faults fire, keyed by (onion, port, attempt).
        observer: optional :class:`~repro.obs.scope.Observer`; every
            injected fault is counted under ``faults_injected_total``.
    """

    def __init__(
        self, inner, plan: FaultPlan, observer: Optional[Observer] = None
    ) -> None:
        self._inner = inner
        self._plan = plan
        self._observer = ensure_observer(observer)
        #: Probes answered by an injected fault instead of the inner transport.
        self.injected = 0
        self._probe_attempts: Dict[Tuple[OnionAddress, int], int] = {}
        self._fetch_attempts: Dict[OnionAddress, int] = {}

    @property
    def plan(self) -> FaultPlan:
        """The fault plan in force."""
        return self._plan

    @property
    def attempts(self) -> int:
        """Connection attempts observed, including fault-answered ones."""
        return self._inner.attempts + self.injected

    def _next_probe(self, onion: OnionAddress, port: int) -> int:
        key = (onion, port)
        attempt = self._probe_attempts.get(key, 0) + 1
        self._probe_attempts[key] = attempt
        return attempt

    def _next_fetch(self, onion: OnionAddress) -> int:
        attempt = self._fetch_attempts.get(onion, 0) + 1
        self._fetch_attempts[onion] = attempt
        return attempt

    def stream_state(self) -> Dict[str, object]:
        """JSON-compatible snapshot: inner stream plus attempt counters.

        Counters are emitted in sorted key order so the snapshot is
        canonical — two transports in the same state serialise to the same
        bytes, which is what lets :mod:`repro.store` hash cursors into
        cache keys.
        """
        return {
            "inner": self._inner.stream_state(),
            "injected": self.injected,
            "probe_attempts": [
                [onion, port, count]
                for (onion, port), count in sorted(self._probe_attempts.items())
            ],
            "fetch_attempts": [
                [onion, count]
                for onion, count in sorted(self._fetch_attempts.items())
            ],
        }

    def restore_stream_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`stream_state`."""
        self._inner.restore_stream_state(state["inner"])  # type: ignore[arg-type]
        self.injected = int(state["injected"])  # type: ignore[arg-type]
        self._probe_attempts = {
            (onion, port): count
            for onion, port, count in state["probe_attempts"]  # type: ignore[union-attr]
        }
        self._fetch_attempts = {
            onion: count
            for onion, count in state["fetch_attempts"]  # type: ignore[union-attr]
        }

    def has_descriptor(self, onion: OnionAddress, now: Timestamp) -> bool:
        """Like the inner transport, but a planned flap/outage hides it."""
        attempt = self._next_fetch(onion)
        if self._plan.descriptor_unavailable(onion, attempt, now):
            return False
        return self._inner.has_descriptor(onion, now)

    def _post_process(
        self,
        result: ConnectResult,
        onion: OnionAddress,
        port: int,
        attempt: int,
        now: Timestamp,
    ) -> ConnectResult:
        """Apply conversation-layer faults to a delegated result."""
        extra = self._plan.extra_latency(onion, port, attempt, now)
        truncate = result.outcome is ConnectOutcome.OPEN and self._plan.truncates(
            onion, port, attempt, now
        )
        if not extra and not truncate:
            return result
        if extra:
            self._observer.count("faults_injected_total", kind="slow_circuit")
        if truncate:
            self._observer.count("faults_injected_total", kind="truncation")
            return dataclasses.replace(
                result,
                truncated=True,
                banner=result.banner[: len(result.banner) // 2],
                error_message="connection reset mid-transfer (injected)",
                latency=result.latency + extra,
            )
        return dataclasses.replace(result, latency=result.latency + extra)

    def connect(self, onion: OnionAddress, port: int, now: Timestamp) -> ConnectResult:
        """Attempt a connection, subject to the fault plan."""
        attempt = self._next_probe(onion, port)
        # A connect implies a descriptor fetch; a flap or outage window makes
        # the service look gone even though the inner host may be fine.
        if self._plan.descriptor_unavailable(onion, self._next_fetch(onion), now):
            self.injected += 1
            self._observer.count(
                "faults_injected_total", kind="descriptor_unavailable"
            )
            return ConnectResult(
                outcome=ConnectOutcome.UNREACHABLE,
                port=port,
                error_message="descriptor fetch failed (injected)",
            )
        if self._plan.circuit_timeout(onion, port, attempt, now):
            self.injected += 1
            self._observer.count("faults_injected_total", kind="circuit_timeout")
            return ConnectResult(
                outcome=ConnectOutcome.TIMEOUT,
                port=port,
                error_message="circuit build timeout (injected)",
            )
        result = self._inner.connect(onion, port, now)
        return self._post_process(result, onion, port, attempt, now)

    def scan_ports(
        self, onion: OnionAddress, ports: Collection[int], now: Timestamp
    ) -> Dict[int, ConnectResult]:
        """Batch-scan with per-probe faults applied to each answered port.

        A descriptor fault makes the whole host invisible — ``{}``, the same
        ambiguous answer an offline host gives.  Ports the inner scan
        answered are then individually subject to circuit-timeout,
        truncation and latency faults, in sorted port order so the keyed
        attempt counters advance identically on every run.
        """
        if self._plan.descriptor_unavailable(onion, self._next_fetch(onion), now):
            self._observer.count(
                "faults_injected_total", kind="descriptor_unavailable"
            )
            return {}
        inner_results = self._inner.scan_ports(onion, ports, now)
        results: Dict[int, ConnectResult] = {}
        for port in sorted(inner_results):
            attempt = self._next_probe(onion, port)
            if self._plan.circuit_timeout(onion, port, attempt, now):
                self._observer.count(
                    "faults_injected_total", kind="circuit_timeout"
                )
                results[port] = ConnectResult(
                    outcome=ConnectOutcome.TIMEOUT,
                    port=port,
                    error_message="circuit build timeout (injected)",
                )
                continue
            results[port] = self._post_process(
                inner_results[port], onion, port, attempt, now
            )
        return results


def wrap_transport(inner, plan: FaultPlan, observer: Optional[Observer] = None):
    """Wrap ``inner`` when ``plan`` has active rules; pass through otherwise."""
    if not plan.active:
        return inner
    return FaultInjectingTransport(inner, plan, observer=observer)
