"""Bounded, deterministic retry with exponential backoff.

The paper's measurement treated every failed probe as final, which is why
transient circuit timeouts translate directly into under-counted open
ports.  :class:`RetryPolicy` encodes the obvious fix — retry what can
recover, give up on what cannot — with the discipline this repo demands:

* **Per-outcome retryability.**  TIMEOUT retries (circuits are rebuilt all
  the time); a truncated-but-open conversation retries (the port is known
  good, only the transfer died); REFUSED never retries (the host answered:
  nothing is listening); UNREACHABLE earns exactly one descriptor re-fetch
  before it is declared permanent churn.
* **Deterministic jitter.**  Backoff jitter is drawn from
  ``derive_rng(seed, "retry", "jitter", onion, port, attempt)`` — a pure
  function of the probe's identity, never a shared stream — so retry
  schedules replay byte-identically at any worker count.
* **Sim-clock deadlines.**  Delays and injected latency advance the
  simulated clock; an optional deadline bounds the total time a probe may
  consume, exactly like the wall-clock budget of a week-long scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.onion import OnionAddress
from repro.errors import FaultConfigError, RetryExhaustedError
from repro.faults.taxonomy import FailureCategory
from repro.net.endpoint import ConnectOutcome, ConnectResult
from repro.obs.scope import Observer, ensure_observer
from repro.sim.clock import Timestamp
from repro.sim.rng import derive_rng

#: Jitter-stream label for descriptor re-fetches.  Distinct from every
#: integer port, so a descriptor re-fetch schedule can never collide with
#: the retry stream of a genuine port-0 probe on the same onion.
DESCRIPTOR_STREAM = "descriptor"


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how long) to retry a failed network operation.

    ``delay_before(n)`` is the pause taken before attempt ``n`` (n >= 2):
    ``base_delay * backoff_factor ** (n - 2)``, capped at ``max_delay``,
    then jittered by up to ``±jitter`` (a fraction).  With the default
    ``jitter=0.25 < (backoff_factor - 1) / (backoff_factor + 1)`` the
    jittered delays stay strictly increasing.
    """

    max_attempts: int = 3
    base_delay: Timestamp = 2
    backoff_factor: float = 2.0
    max_delay: Timestamp = 600
    jitter: float = 0.25
    seed: int = 0
    #: How many times an UNREACHABLE result may trigger a descriptor re-fetch.
    descriptor_refetches: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay <= 0:
            raise FaultConfigError(f"base_delay must be > 0, got {self.base_delay}")
        if self.backoff_factor < 1.0:
            raise FaultConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_delay < self.base_delay:
            raise FaultConfigError(
                f"max_delay ({self.max_delay}) must be >= base_delay ({self.base_delay})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise FaultConfigError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.descriptor_refetches < 0:
            raise FaultConfigError(
                f"descriptor_refetches must be >= 0, got {self.descriptor_refetches}"
            )

    def base_backoff(self, attempt: int) -> float:
        """Un-jittered delay before attempt ``attempt`` (>= 2)."""
        if attempt < 2:
            raise FaultConfigError(f"no delay precedes attempt {attempt}")
        return min(
            float(self.base_delay) * self.backoff_factor ** (attempt - 2),
            float(self.max_delay),
        )

    def delay_before(
        self, attempt: int, onion: OnionAddress, port: "int | str"
    ) -> Timestamp:
        """Jittered, whole-second delay before attempt ``attempt``.

        Deterministic: the jitter draw is keyed on (onion, port, attempt),
        so the same probe always waits the same amount.  ``port`` may be a
        stream label such as :data:`DESCRIPTOR_STREAM` for operations that
        are not port probes.
        """
        base = self.base_backoff(attempt)
        if self.jitter:
            rng = derive_rng(
                self.seed, "retry", "jitter", str(onion), str(port), str(attempt)
            )
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(1, int(round(base)))

    def retryable(self, result: ConnectResult) -> bool:
        """Whether an immediate re-attempt of the same probe can help."""
        if result.outcome is ConnectOutcome.TIMEOUT:
            return True
        return result.outcome is ConnectOutcome.OPEN and result.truncated


@dataclass
class RetryOutcome:
    """What a retried operation ultimately produced."""

    result: ConnectResult
    attempts: int
    #: None for a clean first-attempt success; a category otherwise.
    category: Optional[FailureCategory]
    #: Simulated time when the operation settled (delays + latency included).
    finished_at: Timestamp

    @property
    def recovered(self) -> bool:
        """True when retries turned a transient failure into a success."""
        return self.category is FailureCategory.TRANSIENT_RECOVERED


def connect_with_retry(
    transport,
    onion: OnionAddress,
    port: int,
    when: Timestamp,
    policy: RetryPolicy,
    deadline: Optional[Timestamp] = None,
    require_success: bool = False,
    initial: Optional[ConnectResult] = None,
    require_conversation: bool = True,
    observer: Optional[Observer] = None,
) -> RetryOutcome:
    """Connect to ``onion:port``, retrying per ``policy``.

    ``initial`` lets a caller who already holds a failed first-attempt
    result (e.g. from a batched port scan) enter the loop without probing
    again; it counts as attempt 1, and its latency does **not** advance the
    clock here — it already elapsed inside the caller's batch, so charging
    it again would double-count it in ``finished_at``.
    ``require_success=True`` raises :class:`RetryExhaustedError` instead of
    returning an exhausted outcome.  ``require_conversation=False`` accepts
    a truncated-but-open result (SYN scan semantics: the port is proven
    open, nothing more is needed).
    """
    obs = ensure_observer(observer)
    try:
        outcome = _retry_loop(
            transport,
            onion,
            port,
            when,
            policy,
            deadline,
            require_success,
            initial,
            require_conversation,
        )
    except RetryExhaustedError as exc:
        obs.count("retry_attempts_total", amount=max(0, exc.attempts - 1))
        obs.count("retry_outcomes_total", category="retries_exhausted")
        raise
    obs.count("retry_attempts_total", amount=outcome.attempts - 1)
    if outcome.category is not None:
        obs.count("retry_outcomes_total", category=outcome.category.value)
    obs.observe("retry_settle_seconds", outcome.finished_at - when)
    return outcome


def _retry_loop(
    transport,
    onion: OnionAddress,
    port: int,
    when: Timestamp,
    policy: RetryPolicy,
    deadline: Optional[Timestamp],
    require_success: bool,
    initial: Optional[ConnectResult],
    require_conversation: bool,
) -> RetryOutcome:
    now = when
    attempts = 1
    if initial is not None:
        result = initial
    else:
        result = transport.connect(onion, port, now)
        now += result.latency
    refetches = 0
    while True:
        if result.outcome.counts_as_open and (
            not result.truncated or not require_conversation
        ):
            category = FailureCategory.TRANSIENT_RECOVERED if attempts > 1 else None
            return RetryOutcome(result, attempts, category, now)
        if result.outcome is ConnectOutcome.UNREACHABLE:
            # One descriptor re-fetch window: if the descriptor reappears,
            # the failure was a flap; if not, it is permanent churn.
            if refetches >= policy.descriptor_refetches or attempts >= policy.max_attempts:
                return RetryOutcome(result, attempts, FailureCategory.PERMANENT, now)
            refetches += 1
            delay = policy.delay_before(attempts + 1, onion, port)
            if deadline is not None and now + delay > deadline:
                return RetryOutcome(result, attempts, FailureCategory.PERMANENT, now)
            now += delay
            if not transport.has_descriptor(onion, now):
                return RetryOutcome(result, attempts, FailureCategory.PERMANENT, now)
            result = transport.connect(onion, port, now)
            now += result.latency
            attempts += 1
            continue
        if not policy.retryable(result):
            # REFUSED (or anything else definitive): the host answered.
            return RetryOutcome(result, attempts, FailureCategory.PERMANENT, now)
        if attempts >= policy.max_attempts:
            if require_success:
                raise RetryExhaustedError(
                    f"{onion}:{port} failed after {attempts} attempts",
                    attempts=attempts,
                    last_outcome=result.outcome.value,
                )
            return RetryOutcome(result, attempts, FailureCategory.RETRIES_EXHAUSTED, now)
        delay = policy.delay_before(attempts + 1, onion, port)
        if deadline is not None and now + delay > deadline:
            if require_success:
                raise RetryExhaustedError(
                    f"{onion}:{port} deadline exceeded after {attempts} attempts",
                    attempts=attempts,
                    last_outcome=result.outcome.value,
                )
            return RetryOutcome(result, attempts, FailureCategory.RETRIES_EXHAUSTED, now)
        now += delay
        result = transport.connect(onion, port, now)
        now += result.latency
        attempts += 1


def fetch_descriptor_with_retry(
    transport,
    onion: OnionAddress,
    when: Timestamp,
    policy: RetryPolicy,
    observer: Optional[Observer] = None,
) -> Tuple[bool, int]:
    """Fetch ``onion``'s descriptor, re-fetching per the policy budget.

    Returns ``(found, attempts)``.  A descriptor that stays gone after the
    re-fetch budget is permanent churn — the paper's 39,824 → 24,511
    shrinkage — and the caller should not keep asking.  Re-fetch delays are
    jittered on the :data:`DESCRIPTOR_STREAM` label, a stream no port probe
    can share.
    """
    obs = ensure_observer(observer)
    attempts = 1
    now = when
    if transport.has_descriptor(onion, now):
        return True, attempts
    while attempts <= policy.descriptor_refetches:
        now += policy.delay_before(attempts + 1, onion, DESCRIPTOR_STREAM)
        attempts += 1
        obs.count("descriptor_refetches_total")
        if transport.has_descriptor(onion, now):
            return True, attempts
    return False, attempts
