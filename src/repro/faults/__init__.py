"""Deterministic fault injection and retry for the measurement pipeline.

A :class:`~repro.faults.plan.FaultPlan` decides — purely from ``(seed,
onion, port, attempt)`` — which probes fail and how;
:class:`~repro.faults.transport.FaultInjectingTransport` applies those
decisions behind the ordinary transport interface; and
:class:`~repro.faults.retry.RetryPolicy` gives consumers a bounded,
seed-replayable way to recover.  Failures are accounted in a
:class:`~repro.faults.taxonomy.FailureTaxonomy` so reports can show what
was transient, what was exhausted, and what was truly gone.
"""

from repro.faults.plan import (
    CircuitTimeoutFault,
    DescriptorFlapFault,
    FaultPlan,
    FaultRule,
    HSDirOutageFault,
    SlowCircuitFault,
    TruncationFault,
)
from repro.faults.profiles import (
    FAULTS_ENV,
    build_fault_plan,
    default_retry_policy,
    fault_profile_names,
    resolve_fault_profile,
)
from repro.faults.retry import (
    RetryOutcome,
    RetryPolicy,
    connect_with_retry,
    fetch_descriptor_with_retry,
)
from repro.faults.taxonomy import FailureCategory, FailureTaxonomy
from repro.faults.transport import FaultInjectingTransport, wrap_transport

__all__ = [
    "CircuitTimeoutFault",
    "DescriptorFlapFault",
    "FAULTS_ENV",
    "FailureCategory",
    "FailureTaxonomy",
    "FaultInjectingTransport",
    "FaultPlan",
    "FaultRule",
    "HSDirOutageFault",
    "RetryOutcome",
    "RetryPolicy",
    "SlowCircuitFault",
    "TruncationFault",
    "build_fault_plan",
    "connect_with_retry",
    "default_retry_policy",
    "fault_profile_names",
    "fetch_descriptor_with_retry",
    "resolve_fault_profile",
    "wrap_transport",
]
