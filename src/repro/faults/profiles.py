"""Named fault profiles and the ``REPRO_FAULTS`` environment switch.

A *profile* is a named bundle of fault rules at calibrated severities, so
experiments and CI can say "run under moderate faults" without spelling out
rates.  Resolution order mirrors the worker count: explicit argument, then
``$REPRO_FAULTS``, then ``"none"``.

* ``none`` — no rules; the plan is inert and the raw transport is used.
* ``light`` — the background failure level any week-long Tor measurement
  rides through: ~1% circuit timeouts, rare descriptor flaps.
* ``moderate`` — the paper's bad days: 5% timeouts with half-hour burst
  storms every six hours, 2% flaps, occasional truncation.
* ``heavy`` — hostile weather: 15% timeouts with hour-long 50% bursts,
  flaky HSDirs taking 10% of onions out for two hours a day.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.errors import FaultConfigError
from repro.faults.plan import (
    CircuitTimeoutFault,
    DescriptorFlapFault,
    FaultPlan,
    FaultRule,
    HSDirOutageFault,
    SlowCircuitFault,
    TruncationFault,
)
from repro.faults.retry import RetryPolicy

#: Environment variable consulted when no explicit profile is given.
FAULTS_ENV = "REPRO_FAULTS"

_PROFILES: Dict[str, Tuple[FaultRule, ...]] = {
    "none": (),
    "light": (
        CircuitTimeoutFault(rate=0.01),
        DescriptorFlapFault(rate=0.005),
        SlowCircuitFault(rate=0.01, extra_latency=15),
    ),
    "moderate": (
        CircuitTimeoutFault(
            rate=0.05, burst_rate=0.25, burst_period=6 * 3600, burst_length=1800
        ),
        DescriptorFlapFault(rate=0.02),
        TruncationFault(rate=0.02),
        SlowCircuitFault(rate=0.05, extra_latency=30),
    ),
    "heavy": (
        CircuitTimeoutFault(
            rate=0.15, burst_rate=0.5, burst_period=4 * 3600, burst_length=3600
        ),
        DescriptorFlapFault(rate=0.08),
        HSDirOutageFault(affected_fraction=0.1, period=24 * 3600, duration=2 * 3600),
        TruncationFault(rate=0.08),
        SlowCircuitFault(rate=0.15, extra_latency=60),
    ),
}

#: Retry budgets matched to profile severity; ``none`` has no policy.
_RETRY_ATTEMPTS = {"light": 2, "moderate": 3, "heavy": 4}


def fault_profile_names() -> Tuple[str, ...]:
    """The known profile names, mildest first."""
    return ("none", "light", "moderate", "heavy")


def resolve_fault_profile(profile: Optional[str] = None) -> str:
    """Effective profile name: explicit argument, else ``$REPRO_FAULTS``, else none."""
    if profile is None:
        profile = os.environ.get(FAULTS_ENV, "").strip() or "none"
    name = profile.strip().lower()
    if name not in _PROFILES:
        raise FaultConfigError(
            f"unknown fault profile {profile!r}; "
            f"expected one of {', '.join(fault_profile_names())}"
        )
    return name


def build_fault_plan(profile: Optional[str] = None, seed: int = 0) -> FaultPlan:
    """The :class:`FaultPlan` for ``profile`` at ``seed``."""
    name = resolve_fault_profile(profile)
    return FaultPlan(seed=seed, rules=_PROFILES[name], name=name)


def default_retry_policy(
    profile: Optional[str] = None, seed: int = 0
) -> Optional[RetryPolicy]:
    """The retry budget matched to ``profile``; None when faults are off.

    A fault-free run gets no retry layer at all, so the zero-fault pipeline
    is byte-for-byte the pipeline that existed before this module.
    """
    name = resolve_fault_profile(profile)
    if name == "none":
        return None
    return RetryPolicy(max_attempts=_RETRY_ATTEMPTS[name], seed=seed)
