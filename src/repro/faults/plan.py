"""Composable, seed-replayable fault rules.

A :class:`FaultPlan` bundles fault rules and answers, for every probe the
transport is about to make, "does a fault fire here?".  Every decision is
drawn from an RNG stream derived from ``(plan seed, rule kind, onion,
port, attempt)`` — never from a shared sequential stream — so the answer
is a pure function of the probe's identity.  Re-running the pipeline, at
any worker count and in any probe order, replays the exact same faults.

The rules model the failure modes the paper's live measurement faced
(Section III: "timeout errors we were persistently getting"; the
39,824 → 24,511 descriptor shrinkage) as *separable* phenomena:

* :class:`CircuitTimeoutFault` — circuit builds die before reaching the
  host, optionally in periodic burst windows keyed to the sim clock (the
  network-congestion storms long-running scans ride through).
* :class:`DescriptorFlapFault` — a descriptor fetch fails although the
  service is alive and publishing (a flaky HSDir answered).  Transient by
  construction: a re-fetch re-draws.
* :class:`HSDirOutageFault` — periodic outage windows during which an
  affected subset of onions cannot be resolved at all; retries inside the
  window cannot help.  Distinct from :class:`DescriptorFlapFault` exactly
  the way Honey-Onion-style HSDir misbehaviour differs from churn.
* :class:`TruncationFault` — the conversation dies after connect
  (mid-transfer circuit collapse): ports still look open, content is lost.
* :class:`SlowCircuitFault` — a slow circuit adds simulated latency,
  eating into retry deadlines without failing outright.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Tuple

from repro.crypto.onion import OnionAddress
from repro.errors import FaultConfigError
from repro.sim.clock import Timestamp
from repro.sim.rng import derive_rng


def _check_rate(kind: str, name: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise FaultConfigError(f"{kind}: {name} must be in [0, 1], got {rate}")


def _check_positive(kind: str, name: str, value: int) -> None:
    if value <= 0:
        raise FaultConfigError(f"{kind}: {name} must be > 0, got {value}")


@dataclass(frozen=True)
class FaultRule:
    """Base fault rule; subclasses define ``kind`` and their parameters."""

    #: Stable identifier mixed into every RNG derivation for this rule.
    kind: str = field(default="", init=False)


@dataclass(frozen=True)
class CircuitTimeoutFault(FaultRule):
    """Per-probe circuit-build timeouts, with optional periodic bursts.

    Outside a burst the probe fails with probability ``rate``; while
    ``(now % burst_period) < burst_length`` it fails with ``burst_rate``.
    """

    rate: float = 0.0
    burst_rate: float = 0.0
    burst_period: Timestamp = 6 * 3600
    burst_length: Timestamp = 0

    kind = "circuit-timeout"

    def __post_init__(self) -> None:
        _check_rate(self.kind, "rate", self.rate)
        _check_rate(self.kind, "burst_rate", self.burst_rate)
        _check_positive(self.kind, "burst_period", self.burst_period)
        if not 0 <= self.burst_length <= self.burst_period:
            raise FaultConfigError(
                f"{self.kind}: burst_length must be in [0, burst_period], "
                f"got {self.burst_length}"
            )

    def rate_at(self, now: Timestamp) -> float:
        """The effective timeout probability at simulated time ``now``."""
        if self.burst_length and (int(now) % self.burst_period) < self.burst_length:
            return self.burst_rate
        return self.rate


@dataclass(frozen=True)
class DescriptorFlapFault(FaultRule):
    """A descriptor fetch fails transiently with probability ``rate``."""

    rate: float = 0.0

    kind = "descriptor-flap"

    def __post_init__(self) -> None:
        _check_rate(self.kind, "rate", self.rate)


@dataclass(frozen=True)
class HSDirOutageFault(FaultRule):
    """Periodic HSDir outage windows, keyed to the sim clock.

    During each window — ``(now % period) < duration`` — a deterministic
    ``affected_fraction`` of onions (drawn per onion per window index)
    cannot be resolved at all.  Every fetch attempt inside the window
    fails; the next window re-draws the affected set.
    """

    affected_fraction: float = 0.0
    period: Timestamp = 24 * 3600
    duration: Timestamp = 3600

    kind = "hsdir-outage"

    def __post_init__(self) -> None:
        _check_rate(self.kind, "affected_fraction", self.affected_fraction)
        _check_positive(self.kind, "period", self.period)
        if not 0 <= self.duration <= self.period:
            raise FaultConfigError(
                f"{self.kind}: duration must be in [0, period], got {self.duration}"
            )

    def window_of(self, now: Timestamp) -> int:
        """The outage-window index ``now`` falls into, or -1 when outside."""
        if self.duration and (int(now) % self.period) < self.duration:
            return int(now) // self.period
        return -1


@dataclass(frozen=True)
class TruncationFault(FaultRule):
    """An OPEN conversation is cut mid-transfer with probability ``rate``."""

    rate: float = 0.0

    kind = "truncation"

    def __post_init__(self) -> None:
        _check_rate(self.kind, "rate", self.rate)


@dataclass(frozen=True)
class SlowCircuitFault(FaultRule):
    """With probability ``rate`` a circuit adds ``extra_latency`` sim-seconds."""

    rate: float = 0.0
    extra_latency: Timestamp = 30

    kind = "slow-circuit"

    def __post_init__(self) -> None:
        _check_rate(self.kind, "rate", self.rate)
        _check_positive(self.kind, "extra_latency", self.extra_latency)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault rules in force.

    Decision methods are pure functions of ``(seed, rule kind, onion,
    port, attempt, now)``; the plan holds no mutable state and can be
    shared freely across stages and workers.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    name: str = "custom"

    def __post_init__(self) -> None:
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultConfigError(f"not a fault rule: {rule!r}")

    @property
    def active(self) -> bool:
        """Whether any rule can actually fire."""
        return bool(self.rules)

    def describe(self) -> dict:
        """JSON-compatible description of the plan (for cache keys).

        Rules are frozen dataclasses, so this captures every parameter
        that influences fault decisions; two plans with equal descriptions
        inject identical faults.
        """
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [
                {"kind": rule.kind, **asdict(rule)} for rule in self.rules
            ],
        }

    def _draw(self, kind: str, *path: str) -> float:
        return derive_rng(self.seed, "faults", kind, *path).random()

    def circuit_timeout(
        self, onion: OnionAddress, port: int, attempt: int, now: Timestamp
    ) -> bool:
        """Does this probe's circuit build die before reaching the host?"""
        for rule in self.rules:
            if not isinstance(rule, CircuitTimeoutFault):
                continue
            rate = rule.rate_at(now)
            if rate and self._draw(
                rule.kind, onion, str(port), str(attempt)
            ) < rate:
                return True
        return False

    def descriptor_unavailable(
        self, onion: OnionAddress, attempt: int, now: Timestamp
    ) -> bool:
        """Does this descriptor fetch fail (flap or outage window)?"""
        for rule in self.rules:
            if isinstance(rule, DescriptorFlapFault):
                if rule.rate and self._draw(rule.kind, onion, str(attempt)) < rule.rate:
                    return True
            elif isinstance(rule, HSDirOutageFault):
                window = rule.window_of(now)
                if window < 0 or not rule.affected_fraction:
                    continue
                # Per-onion, per-window draw: the whole window is out for
                # the affected onion, however often it refetches.
                if self._draw(rule.kind, onion, str(window)) < rule.affected_fraction:
                    return True
        return False

    def truncates(
        self, onion: OnionAddress, port: int, attempt: int, now: Timestamp
    ) -> bool:
        """Is this conversation cut mid-transfer?"""
        for rule in self.rules:
            if not isinstance(rule, TruncationFault):
                continue
            if rule.rate and self._draw(
                rule.kind, onion, str(port), str(attempt)
            ) < rule.rate:
                return True
        return False

    def extra_latency(
        self, onion: OnionAddress, port: int, attempt: int, now: Timestamp
    ) -> Timestamp:
        """Extra simulated seconds this probe's circuit takes."""
        total: Timestamp = 0
        for rule in self.rules:
            if not isinstance(rule, SlowCircuitFault):
                continue
            if rule.rate and self._draw(
                rule.kind, onion, str(port), str(attempt)
            ) < rule.rate:
                total += rule.extra_latency
        return total
