"""The failure taxonomy every retry-aware consumer reports.

The paper's aggregate numbers hide *why* probes failed; Honey Onions and
Dizzy both show that the split between transient and permanent failure is
what decides whether a measurement under-counts.  Every component that
adopts a :class:`~repro.faults.retry.RetryPolicy` classifies each failed
(or recovered) operation into one of three buckets:

* ``TRANSIENT_RECOVERED`` — the operation failed at least once and then
  succeeded within the retry budget.  Without retries these would have
  been silently dropped observations.
* ``RETRIES_EXHAUSTED`` — every permitted attempt failed with a
  *retryable* outcome (timeouts, truncated conversations).  The ground
  truth may well be an open port; the pipeline could not prove it.
* ``PERMANENT`` — the failure is definitive (connection refused, or the
  descriptor stayed gone after a re-fetch): retrying cannot help.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple


class FailureCategory(enum.Enum):
    """How one retried operation ultimately failed (or recovered)."""

    TRANSIENT_RECOVERED = "transient-recovered"
    RETRIES_EXHAUSTED = "retries-exhausted"
    PERMANENT = "permanent"


@dataclass
class FailureTaxonomy:
    """Counts per :class:`FailureCategory` for one pipeline stage."""

    transient_recovered: int = 0
    retries_exhausted: int = 0
    permanent: int = 0
    #: Total extra connection attempts spent on retries (beyond the first).
    retry_attempts: int = 0

    def record(self, category: Optional[FailureCategory], attempts: int = 1) -> None:
        """Account one classified operation; ``None`` (clean success) is a no-op.

        ``attempts`` is the total attempts the operation consumed; everything
        beyond the first is tallied as retry spend.
        """
        if attempts > 1:
            self.retry_attempts += attempts - 1
        if category is FailureCategory.TRANSIENT_RECOVERED:
            self.transient_recovered += 1
        elif category is FailureCategory.RETRIES_EXHAUSTED:
            self.retries_exhausted += 1
        elif category is FailureCategory.PERMANENT:
            self.permanent += 1

    def merge(self, other: "FailureTaxonomy") -> None:
        """Fold another stage's counts into this one."""
        self.transient_recovered += other.transient_recovered
        self.retries_exhausted += other.retries_exhausted
        self.permanent += other.permanent
        self.retry_attempts += other.retry_attempts

    @property
    def total(self) -> int:
        """Operations that failed at least once (recovered or not)."""
        return self.transient_recovered + self.retries_exhausted + self.permanent

    @property
    def unrecovered(self) -> int:
        """Operations that ended in failure."""
        return self.retries_exhausted + self.permanent

    def rows(self) -> Iterator[Tuple[str, int]]:
        """(label, count) rows in fixed order, for report tables."""
        yield "transient recovered", self.transient_recovered
        yield "retries exhausted", self.retries_exhausted
        yield "permanent failures", self.permanent
