"""Artifact (de)serialisation.

Experiments produce reports, rankings, distributions, scan/crawl results
and classification outcomes; this module turns them into plain
JSON-compatible dictionaries and back, so benchmark runs can be archived,
diffed across seeds, loaded into notebooks without re-running multi-minute
pipelines — and checkpointed by :mod:`repro.store`, whose content
addresses are hashes of exactly these encodings.

Loaders are strict: a missing field or an unsupported ``schema`` version
raises :class:`~repro.errors.ReproError` (never a bare ``KeyError``), so
a damaged or future-format artifact fails loudly at the boundary instead
of deep inside an experiment.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Union

from repro.analysis.report import ComparisonRow, ExperimentReport
from repro.crawl.crawler import CrawlResults
from repro.crawl.page import FetchedPage, PageKind
from repro.errors import ReproError
from repro.experiments.pipeline import ClassificationOutcome
from repro.faults.taxonomy import FailureTaxonomy
from repro.net.endpoint import ConnectOutcome
from repro.popularity.ranking import PopularityRanking, RankedService
from repro.popularity.timeseries import RequestTimeSeries
from repro.scan.results import PortDistribution, ScanResults
from repro.scan.tls import CertificateAnalysis

PathLike = Union[str, pathlib.Path]

_SCHEMA_VERSION = 1


def report_to_dict(report: ExperimentReport) -> Dict[str, Any]:
    """Serialise an :class:`ExperimentReport`."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "experiment-report",
        "experiment": report.experiment,
        "rows": [
            {"label": row.label, "paper": row.paper, "measured": row.measured}
            for row in report.rows
        ],
        "notes": list(report.notes),
    }


def report_from_dict(data: Dict[str, Any]) -> ExperimentReport:
    """Inverse of :func:`report_to_dict`."""
    _check_kind(data, "experiment-report")
    report = ExperimentReport(experiment=_field(data, "experiment"))
    for row in _field(data, "rows"):
        report.rows.append(
            ComparisonRow(
                label=_field(row, "label", "report row"),
                paper=_field(row, "paper", "report row"),
                measured=_field(row, "measured", "report row"),
            )
        )
    report.notes = list(data.get("notes", []))
    return report


def ranking_to_dict(ranking: PopularityRanking, limit: int = 0) -> Dict[str, Any]:
    """Serialise a popularity ranking (``limit=0`` keeps every row)."""
    rows = ranking.rows if limit <= 0 else ranking.rows[:limit]
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "popularity-ranking",
        "rows": [
            {
                "rank": row.rank,
                "requests": row.requests,
                "onion": row.onion,
                "description": row.description,
            }
            for row in rows
        ],
    }


def ranking_from_dict(data: Dict[str, Any]) -> PopularityRanking:
    """Inverse of :func:`ranking_to_dict`."""
    _check_kind(data, "popularity-ranking")
    ranking = PopularityRanking()
    for row in _field(data, "rows"):
        ranked = RankedService(
            rank=_field(row, "rank", "ranking row"),
            requests=_field(row, "requests", "ranking row"),
            onion=_field(row, "onion", "ranking row"),
            description=row.get("description", "<n/a>"),
        )
        ranking.rows.append(ranked)
        ranking._rank_by_onion[ranked.onion] = ranked.rank
    return ranking


def distribution_to_dict(distribution: PortDistribution) -> Dict[str, Any]:
    """Serialise a Fig 1 port distribution."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "port-distribution",
        "counts": dict(distribution.counts),
        "unique_ports": distribution.unique_ports,
        "total_open": distribution.total_open,
    }


def distribution_from_dict(data: Dict[str, Any]) -> PortDistribution:
    """Inverse of :func:`distribution_to_dict`."""
    _check_kind(data, "port-distribution")
    return PortDistribution(
        counts=dict(_field(data, "counts")),
        unique_ports=_field(data, "unique_ports"),
        total_open=_field(data, "total_open"),
    )


# -- failure taxonomy (inline fragment, no kind header) ---------------------- #


def _taxonomy_to_dict(taxonomy: FailureTaxonomy) -> Dict[str, int]:
    return {
        "transient_recovered": taxonomy.transient_recovered,
        "retries_exhausted": taxonomy.retries_exhausted,
        "permanent": taxonomy.permanent,
        "retry_attempts": taxonomy.retry_attempts,
    }


def _taxonomy_from_dict(data: Dict[str, Any]) -> FailureTaxonomy:
    return FailureTaxonomy(
        transient_recovered=_field(data, "transient_recovered", "failure taxonomy"),
        retries_exhausted=_field(data, "retries_exhausted", "failure taxonomy"),
        permanent=_field(data, "permanent", "failure taxonomy"),
        retry_attempts=_field(data, "retry_attempts", "failure taxonomy"),
    )


# -- certificate analysis ---------------------------------------------------- #


def certificates_to_dict(analysis: CertificateAnalysis) -> Dict[str, Any]:
    """Serialise a Section III :class:`CertificateAnalysis`."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "certificate-analysis",
        "total_certificates": analysis.total_certificates,
        "self_signed_mismatch": analysis.self_signed_mismatch,
        "dominant_cn": analysis.dominant_cn,
        "dominant_cn_count": analysis.dominant_cn_count,
        "public_dns_onions": list(analysis.public_dns_onions),
        "cn_histogram": dict(analysis.cn_histogram),
    }


def certificates_from_dict(data: Dict[str, Any]) -> CertificateAnalysis:
    """Inverse of :func:`certificates_to_dict`."""
    _check_kind(data, "certificate-analysis")
    analysis = CertificateAnalysis(
        total_certificates=_field(data, "total_certificates"),
        self_signed_mismatch=_field(data, "self_signed_mismatch"),
        dominant_cn=_field(data, "dominant_cn"),
        dominant_cn_count=_field(data, "dominant_cn_count"),
        public_dns_onions=list(_field(data, "public_dns_onions")),
    )
    analysis.cn_histogram.update(_field(data, "cn_histogram"))
    return analysis


# -- crawl results ----------------------------------------------------------- #


def _page_to_dict(page: FetchedPage) -> Dict[str, Any]:
    return {
        "onion": page.onion,
        "port": page.port,
        "scheme": page.scheme,
        "kind": page.kind.value,
        "status": page.status,
        "text": page.text,
        "error": page.error,
        "attempts": page.attempts,
    }


def _page_from_dict(data: Dict[str, Any]) -> FetchedPage:
    return FetchedPage(
        onion=_field(data, "onion", "crawled page"),
        port=_field(data, "port", "crawled page"),
        scheme=_field(data, "scheme", "crawled page"),
        kind=PageKind(_field(data, "kind", "crawled page")),
        status=_field(data, "status", "crawled page"),
        text=_field(data, "text", "crawled page"),
        error=_field(data, "error", "crawled page"),
        attempts=data.get("attempts", 1),
    )


def crawl_to_dict(crawl: CrawlResults) -> Dict[str, Any]:
    """Serialise a :class:`CrawlResults` (pages in crawl order)."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "crawl-results",
        "pages": [_page_to_dict(page) for page in crawl.pages],
        "tried": crawl.tried,
        "open_at_crawl": crawl.open_at_crawl,
        "connected": crawl.connected,
        "failures": _taxonomy_to_dict(crawl.failures),
    }


def crawl_from_dict(data: Dict[str, Any]) -> CrawlResults:
    """Inverse of :func:`crawl_to_dict` (destination index rebuilt)."""
    _check_kind(data, "crawl-results")
    crawl = CrawlResults(
        tried=_field(data, "tried"),
        open_at_crawl=_field(data, "open_at_crawl"),
        connected=_field(data, "connected"),
        failures=_taxonomy_from_dict(_field(data, "failures")),
    )
    for row in _field(data, "pages"):
        crawl.add_page(_page_from_dict(row))
    return crawl


# -- scan results ------------------------------------------------------------ #


def scan_to_dict(scan: ScanResults) -> Dict[str, Any]:
    """Serialise a :class:`ScanResults` (sets sorted, outcomes by value)."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "scan-results",
        "scanned_onions": scan.scanned_onions,
        "descriptor_onions": sorted(scan.descriptor_onions),
        "reachable_onions": sorted(scan.reachable_onions),
        "open_ports": [
            [onion, port, outcome.value]
            for (onion, port), outcome in sorted(scan.open_ports.items())
        ],
        "timeouts": scan.timeouts,
        "probes_answered": scan.probes_answered,
        "failures": _taxonomy_to_dict(scan.failures),
        "descriptor_refetches": scan.descriptor_refetches,
    }


def scan_from_dict(data: Dict[str, Any]) -> ScanResults:
    """Inverse of :func:`scan_to_dict`."""
    _check_kind(data, "scan-results")
    scan = ScanResults(
        scanned_onions=_field(data, "scanned_onions"),
        descriptor_onions=set(_field(data, "descriptor_onions")),
        reachable_onions=set(_field(data, "reachable_onions")),
        timeouts=_field(data, "timeouts"),
        probes_answered=_field(data, "probes_answered"),
        failures=_taxonomy_from_dict(_field(data, "failures")),
        descriptor_refetches=_field(data, "descriptor_refetches"),
    )
    for onion, port, outcome in _field(data, "open_ports"):
        scan.open_ports[(onion, port)] = ConnectOutcome(outcome)
    return scan


# -- classification outcome -------------------------------------------------- #


def classification_to_dict(outcome: ClassificationOutcome) -> Dict[str, Any]:
    """Serialise a classify-stage :class:`ClassificationOutcome`."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "classification-outcome",
        "language_counts": dict(outcome.language_counts),
        "topic_counts": dict(outcome.topic_counts),
        "torhost_default_count": outcome.torhost_default_count,
        "english_pages": outcome.english_pages,
        "classified_pages": outcome.classified_pages,
        "page_languages": [
            [onion, port, language]
            for (onion, port), language in outcome.page_languages.items()
        ],
        "page_topics": [
            [onion, port, topic]
            for (onion, port), topic in outcome.page_topics.items()
        ],
    }


def classification_from_dict(data: Dict[str, Any]) -> ClassificationOutcome:
    """Inverse of :func:`classification_to_dict` (dict orders preserved)."""
    _check_kind(data, "classification-outcome")
    outcome = ClassificationOutcome()
    outcome.language_counts = dict(_field(data, "language_counts"))
    outcome.topic_counts = dict(_field(data, "topic_counts"))
    outcome.torhost_default_count = _field(data, "torhost_default_count")
    outcome.english_pages = _field(data, "english_pages")
    outcome.classified_pages = _field(data, "classified_pages")
    for onion, port, language in _field(data, "page_languages"):
        outcome.page_languages[(onion, port)] = language
    for onion, port, topic in _field(data, "page_topics"):
        outcome.page_topics[(onion, port)] = topic
    return outcome


# -- request time series ----------------------------------------------------- #


def timeseries_to_dict(series: RequestTimeSeries) -> Dict[str, Any]:
    """Serialise a Section V :class:`RequestTimeSeries`."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "request-timeseries",
        "start": series.start,
        "bucket_seconds": series.bucket_seconds,
        "counts": list(series.counts),
    }


def timeseries_from_dict(data: Dict[str, Any]) -> RequestTimeSeries:
    """Inverse of :func:`timeseries_to_dict`."""
    _check_kind(data, "request-timeseries")
    return RequestTimeSeries(
        start=_field(data, "start"),
        bucket_seconds=_field(data, "bucket_seconds"),
        counts=list(_field(data, "counts")),
    )


# -- files ------------------------------------------------------------------- #


def save_json(data: Dict[str, Any], path: PathLike) -> None:
    """Write a serialised artifact to ``path``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a serialised artifact from ``path``."""
    return json.loads(pathlib.Path(path).read_text())


def _field(data: Dict[str, Any], name: str, what: str = "artifact") -> Any:
    """``data[name]``, with a :class:`ReproError` (not KeyError) when absent."""
    try:
        return data[name]
    except KeyError as exc:
        raise ReproError(f"{what} is missing required field {name!r}") from exc
    except TypeError as exc:
        raise ReproError(f"{what} field {name!r} unreadable: {exc}") from exc


def _check_kind(data: Dict[str, Any], expected: str) -> None:
    kind = data.get("kind")
    if kind != expected:
        raise ReproError(f"expected artifact kind {expected!r}, got {kind!r}")
    schema = data.get("schema")
    if not isinstance(schema, int):
        raise ReproError(f"artifact has no integer schema version: {schema!r}")
    if schema > _SCHEMA_VERSION:
        raise ReproError(
            f"artifact schema version {schema} is newer than this build "
            f"(reads up to {_SCHEMA_VERSION}); upgrade to load it"
        )
    if schema < _SCHEMA_VERSION:
        raise ReproError(
            f"unsupported schema version {schema!r} "
            f"(this build reads {_SCHEMA_VERSION})"
        )
