"""Artifact (de)serialisation.

Experiments produce reports, rankings and distributions; this module turns
them into plain JSON-compatible dictionaries and back, so benchmark runs
can be archived, diffed across seeds, and loaded into notebooks without
re-running multi-minute pipelines.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

from repro.analysis.report import ComparisonRow, ExperimentReport
from repro.errors import ReproError
from repro.popularity.ranking import PopularityRanking, RankedService
from repro.scan.results import PortDistribution

PathLike = Union[str, pathlib.Path]

_SCHEMA_VERSION = 1


def report_to_dict(report: ExperimentReport) -> Dict[str, Any]:
    """Serialise an :class:`ExperimentReport`."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "experiment-report",
        "experiment": report.experiment,
        "rows": [
            {"label": row.label, "paper": row.paper, "measured": row.measured}
            for row in report.rows
        ],
        "notes": list(report.notes),
    }


def report_from_dict(data: Dict[str, Any]) -> ExperimentReport:
    """Inverse of :func:`report_to_dict`."""
    _check_kind(data, "experiment-report")
    report = ExperimentReport(experiment=data["experiment"])
    for row in data["rows"]:
        report.rows.append(
            ComparisonRow(
                label=row["label"], paper=row["paper"], measured=row["measured"]
            )
        )
    report.notes = list(data.get("notes", []))
    return report


def ranking_to_dict(ranking: PopularityRanking, limit: int = 0) -> Dict[str, Any]:
    """Serialise a popularity ranking (``limit=0`` keeps every row)."""
    rows = ranking.rows if limit <= 0 else ranking.rows[:limit]
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "popularity-ranking",
        "rows": [
            {
                "rank": row.rank,
                "requests": row.requests,
                "onion": row.onion,
                "description": row.description,
            }
            for row in rows
        ],
    }


def ranking_from_dict(data: Dict[str, Any]) -> PopularityRanking:
    """Inverse of :func:`ranking_to_dict`."""
    _check_kind(data, "popularity-ranking")
    ranking = PopularityRanking()
    for row in data["rows"]:
        ranked = RankedService(
            rank=row["rank"],
            requests=row["requests"],
            onion=row["onion"],
            description=row.get("description", "<n/a>"),
        )
        ranking.rows.append(ranked)
        ranking._rank_by_onion[ranked.onion] = ranked.rank
    return ranking


def distribution_to_dict(distribution: PortDistribution) -> Dict[str, Any]:
    """Serialise a Fig 1 port distribution."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "port-distribution",
        "counts": dict(distribution.counts),
        "unique_ports": distribution.unique_ports,
        "total_open": distribution.total_open,
    }


def distribution_from_dict(data: Dict[str, Any]) -> PortDistribution:
    """Inverse of :func:`distribution_to_dict`."""
    _check_kind(data, "port-distribution")
    return PortDistribution(
        counts=dict(data["counts"]),
        unique_ports=data["unique_ports"],
        total_open=data["total_open"],
    )


def save_json(data: Dict[str, Any], path: PathLike) -> None:
    """Write a serialised artifact to ``path``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a serialised artifact from ``path``."""
    return json.loads(pathlib.Path(path).read_text())


def _check_kind(data: Dict[str, Any], expected: str) -> None:
    kind = data.get("kind")
    if kind != expected:
        raise ReproError(f"expected artifact kind {expected!r}, got {kind!r}")
    if data.get("schema") != _SCHEMA_VERSION:
        raise ReproError(
            f"unsupported schema version {data.get('schema')!r} "
            f"(this build reads {_SCHEMA_VERSION})"
        )
