"""Supporting experiment — the harvest itself (Sections I–II claims).

Validates that the shadow-relay attack actually collects the population:
39,824 onions from 58 IP addresses, versus the > 300 IPs a non-shadowing
attacker would need (footnote 3).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.analysis.report import ExperimentReport
from repro.hs.publisher import PublishScheduler
from repro.population import GeneratedPopulation, generate_population
from repro.sim.clock import DAY, HOUR, Timestamp
from repro.sim.rng import derive_rng
from repro.store import ArtifactStore, Stage
from repro.trawl import HarvestResult, TrawlAttack, TrawlConfig, naive_ip_requirement
from repro.worldbuild import HonestNetworkSpec, build_honest_network

#: Modules whose source feeds the harvest checkpoint's code fingerprint.
_HARVEST_MODULES = (
    "repro.analysis.report",
    "repro.analysis.stats",
    "repro.classify",
    "repro.classify.language",
    "repro.classify.naive_bayes",
    "repro.classify.tokenize",
    "repro.classify.topics",
    "repro.classify.training",
    "repro.client.client",
    "repro.client.guards",
    "repro.client.workload",
    "repro.crawl",
    "repro.crawl.crawler",
    "repro.crawl.filters",
    "repro.crawl.page",
    "repro.crypto.descriptor_id",
    "repro.crypto.keys",
    "repro.crypto.onion",
    "repro.crypto.ring",
    "repro.crypto.vanity",
    "repro.dirauth.archive",
    "repro.dirauth.authority",
    "repro.dirauth.consensus",
    "repro.dirauth.voting",
    "repro.experiments.harvest",
    "repro.experiments.pipeline",
    "repro.faults",
    "repro.faults.plan",
    "repro.faults.profiles",
    "repro.faults.retry",
    "repro.faults.taxonomy",
    "repro.faults.transport",
    "repro.hs.descriptor",
    "repro.hs.publisher",
    "repro.hs.service",
    "repro.hsdir.directory",
    "repro.hsdir.ring_view",
    "repro.io",
    "repro.net.address",
    "repro.net.endpoint",
    "repro.net.geoip",
    "repro.net.transport",
    "repro.parallel",
    "repro.parallel.executor",
    "repro.popularity.ranking",
    "repro.popularity.timeseries",
    "repro.population",
    "repro.population.botnets",
    "repro.population.content",
    "repro.population.corpus",
    "repro.population.generator",
    "repro.population.spec",
    "repro.population.webserver",
    "repro.relay.flags",
    "repro.relay.relay",
    "repro.scan",
    "repro.scan.results",
    "repro.scan.scanner",
    "repro.scan.schedule",
    "repro.scan.tls",
    "repro.sim.clock",
    "repro.sim.engine",
    "repro.sim.rng",
    "repro.tornet",
    "repro.trawl",
    "repro.trawl.attack",
    "repro.trawl.coverage",
    "repro.trawl.harvest",
    "repro.trawl.shadowing",
    "repro.worldbuild",
)

PAPER_ONIONS = 39_824
PAPER_ATTACK_IPS = 58
PAPER_NAIVE_IPS = 300  # "more than 300 IP addresses for at least 27 hours"
PAPER_HSDIR_COUNT_2013 = 1_300  # ring size at measurement time (approx.)


@dataclass
class HarvestExperimentResult:
    """Outcome of the harvest validation.

    ``harvest`` (the raw per-onion collection) is ``None`` when the result
    was replayed from a store checkpoint; the scored aggregates and the
    report round-trip.
    """

    harvest: Optional[HarvestResult] = None
    published_onions: int = 0
    harvest_fraction: float = 0.0
    naive_ips_needed: int = 0
    hsdir_count: int = 0
    report: ExperimentReport = field(default_factory=lambda: ExperimentReport("harvest"))


def _harvest_to_payload(result: HarvestExperimentResult) -> Dict[str, Any]:
    """Checkpoint encoding: the scored aggregates plus the report."""
    from repro import io as repro_io

    return {
        "report": repro_io.report_to_dict(result.report),
        "published_onions": result.published_onions,
        "harvest_fraction": result.harvest_fraction,
        "naive_ips_needed": result.naive_ips_needed,
        "hsdir_count": result.hsdir_count,
    }


def _harvest_from_payload(data: Dict[str, Any]) -> HarvestExperimentResult:
    """Inverse of :func:`_harvest_to_payload` (raw harvest stays None)."""
    from repro import io as repro_io

    result = HarvestExperimentResult(
        published_onions=data["published_onions"],
        harvest_fraction=data["harvest_fraction"],
        naive_ips_needed=data["naive_ips_needed"],
        hsdir_count=data["hsdir_count"],
    )
    result.report = repro_io.report_from_dict(data["report"])
    return result


def run_harvest(
    seed: int = 0,
    scale: float = 0.1,
    population: Optional[GeneratedPopulation] = None,
    relay_count: Optional[int] = None,
    ip_count: int = 58,
    relays_per_ip: int = 24,
    sweep_hours: int = 12,
    store: Optional[ArtifactStore] = None,
) -> HarvestExperimentResult:
    """Run the shadow-relay harvest and score its coverage.

    With ``store`` the whole validation is one checkpoint; a warm run
    replays the aggregates and report without rebuilding the network.
    """
    if population is None:
        population = generate_population(seed=seed, scale=scale)
    else:
        scale = population.spec.total_onions / PAPER_ONIONS
    if relay_count is None:
        relay_count = max(60, round(1_450 * scale))

    if store is not None:
        stage = Stage(
            name="harvest",
            modules=_HARVEST_MODULES,
            encode=_harvest_to_payload,
            decode=_harvest_from_payload,
        )
        key_config = {
            "seed": seed,
            "population": {"seed": population.seed, "spec": asdict(population.spec)},
            "relay_count": relay_count,
            "ip_count": ip_count,
            "relays_per_ip": relays_per_ip,
            "sweep_hours": sweep_hours,
        }
        return store.run(
            stage,
            key_config,
            lambda: run_harvest(
                seed=seed,
                population=population,
                relay_count=relay_count,
                ip_count=ip_count,
                relays_per_ip=relays_per_ip,
                sweep_hours=sweep_hours,
            ),
        )

    start: Timestamp = population.harvest_date - (26 + 2) * HOUR
    network, pool = build_honest_network(
        seed,
        start,
        HonestNetworkSpec(relay_count=relay_count),
        rng_label="harvest-net",
    )

    publisher = PublishScheduler(network, population.services)
    publisher.publish_initial(start)

    attack = TrawlAttack(
        network,
        TrawlConfig(
            ip_count=ip_count,
            relays_per_ip=relays_per_ip,
            ripen_hours=26,
            sweep_hours=sweep_hours,
        ),
        derive_rng(seed, "harvest", "attack"),
        pool,
    )
    harvest = attack.run(population.services, publisher)

    published = sum(
        1
        for record in population.records
        if record.service.is_online(network.clock.now - DAY)
    )
    fraction = len(harvest.onions) / published if published else 0.0
    hsdirs = network.consensus.hsdir_count
    naive = naive_ip_requirement(hsdirs)

    result = HarvestExperimentResult(
        harvest=harvest,
        published_onions=published,
        harvest_fraction=fraction,
        naive_ips_needed=naive,
        hsdir_count=hsdirs,
    )
    report = ExperimentReport(experiment="harvest-shadow-relays")
    report.add("onion addresses collected", PAPER_ONIONS * scale, len(harvest.onions))
    report.add("harvest coverage fraction", 0.98, round(fraction, 3))
    report.add("attacker IP addresses", PAPER_ATTACK_IPS, ip_count)
    report.add(
        "naive attack IPs needed (paper: >300 at 2013 ring size)",
        round(PAPER_NAIVE_IPS * hsdirs / 1_200),
        naive,
    )
    report.note(
        "the flaw's leverage: shadowing sweeps the ring with "
        f"{ip_count} IPs where a consensus-limited attacker needs {naive}"
    )
    result.report = report
    return result
