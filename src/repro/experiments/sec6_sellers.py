"""§VI application — identifying Silk Road sellers by visit pattern.

"Buyers visit Silk Road occasionally while sellers visit it periodically
to update their product pages and check on orders. ... Catching even a
small number of Silk Road sellers can seriously spoil Silk Road's
reputation among other sellers."

The experiment: a marketplace with a known buyer/seller split, a
multi-day observation window, the §VI deanonymisation attack, and the
visit-pattern classifier — scored against ground truth the attacker never
sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.report import ExperimentReport
from repro.client.client import TorClient
from repro.crypto.descriptor_id import REPLICAS, descriptor_id
from repro.crypto.keys import KeyPair
from repro.crypto.ring import RING_SIZE
from repro.hs.service import HiddenService
from repro.relay.relay import Relay
from repro.sim.clock import DAY, HOUR, parse_date
from repro.sim.rng import derive_rng
from repro.worldbuild import HonestNetworkSpec, build_honest_network
from repro.tracking import ClientDeanonAttack, deploy_attacker_guards
from repro.tracking.patterns import (
    SellerCriteria,
    SellerIdentification,
    classify_visitors,
    patterns_from_captures,
)


@dataclass
class Sec6Result:
    """Outcome of the seller-identification experiment."""

    identification: SellerIdentification
    captures: int
    attacker_guard_share: float
    report: ExperimentReport = field(default_factory=lambda: ExperimentReport("sec6"))


def run_sec6(
    seed: int = 0,
    honest_relays: int = 400,
    attacker_guards: int = 14,
    buyer_count: int = 800,
    seller_count: int = 40,
    observation_days: int = 7,
    seller_visits_per_day: int = 4,
    buyer_total_visits: int = 2,
) -> Sec6Result:
    """Run the marketplace observation end to end."""
    start = parse_date("2013-03-01")
    network, pool = build_honest_network(
        seed,
        start,
        HonestNetworkSpec(relay_count=honest_relays, min_age_days=10),
        rng_label="sec6-net",
    )

    marketplace = HiddenService(
        keypair=KeyPair.generate(derive_rng(seed, "sec6", "market")), online_from=0
    )
    guards = deploy_attacker_guards(
        network,
        attacker_guards,
        derive_rng(seed, "sec6", "guards"),
        bandwidth=9000,
        address_pool=pool,
    )

    # Attacker directories, re-ground per observed day (descriptor IDs are
    # predictable, so keys are prepared in advance).  All three slots of
    # both replicas are seized — the full-takeover positioning of the
    # 31 Aug 2013 episode — so *every* fetch for the target transits an
    # attacker directory and the capture rate is purely the guard race.
    hsdir_rng = derive_rng(seed, "sec6", "hsdirs")
    attacker_hsdirs: List[Relay] = []
    gap = RING_SIZE // max(1, honest_relays) // 1000
    for day in range(observation_days + 1):
        when = start + day * DAY
        for replica in range(REPLICAS):
            desc = descriptor_id(marketplace.onion, when, replica)
            point = int.from_bytes(desc, "big")
            for slot in range(3):
                key = KeyPair.forge_near(
                    hsdir_rng, (point + slot * 2 * gap) % RING_SIZE, gap
                )
                relay = Relay(
                    nickname=f"dirgrab{day}{replica}{slot}",
                    ip=pool.allocate(),
                    or_port=9001,
                    keypair=key,
                    bandwidth=400,
                    started_at=start - 30 * HOUR,
                )
                network.add_relay(relay)
                attacker_hsdirs.append(relay)

    network.rebuild_consensus(start)
    attack = ClientDeanonAttack(
        hsdir_relay_ids={relay.relay_id for relay in attacker_hsdirs},
        guard_fingerprints=frozenset(relay.fingerprint for relay in guards),
        target_descriptor_ids=set(),
        rng=derive_rng(seed, "sec6", "sig"),
    )
    attack.attach(network)

    from repro.relay.flags import RelayFlags

    guard_entries = network.consensus.with_flag(RelayFlags.GUARD)
    total_bw = sum(entry.bandwidth for entry in guard_entries)
    attacker_bw = sum(
        entry.bandwidth
        for entry in guard_entries
        if entry.fingerprint in attack.guard_fingerprints
    )
    guard_share = attacker_bw / total_bw if total_bw else 0.0

    # The visitor population.  Sellers check in several times a day, every
    # day, near-periodically; buyers show up once or twice at random.
    client_rng = derive_rng(seed, "sec6", "clients")
    true_sellers: Set[int] = set()
    sellers: List[TorClient] = []
    buyers: List[TorClient] = []
    for index in range(seller_count):
        client = TorClient(
            ip=0x30000000 + index, rng=derive_rng(seed, "sec6", "s", str(index))
        )
        client.refresh_guards(network)
        true_sellers.add(client.ip)
        sellers.append(client)
    for index in range(buyer_count):
        client = TorClient(
            ip=0x60000000 + index, rng=derive_rng(seed, "sec6", "b", str(index))
        )
        client.refresh_guards(network)
        buyers.append(client)

    buyer_visit_days: Dict[int, List[int]] = {
        client.ip: sorted(
            client_rng.sample(range(observation_days), min(buyer_total_visits, observation_days))
        )
        for client in buyers
    }

    for day in range(observation_days):
        day_start = start + day * DAY
        network.rebuild_consensus(day_start)
        network.publish_service(marketplace, day_start)
        # The service's rotation boundary is offset inside the calendar day,
        # so fetches late in the day derive the *next* period's IDs — watch
        # both periods that touch this day.
        attack.retarget(
            {
                descriptor_id(marketplace.onion, when, replica)
                for when in (day_start, day_start + DAY)
                for replica in range(REPLICAS)
            }
        )
        for client in sellers:
            # Routine: roughly every 24/k hours with small jitter.
            step = DAY // seller_visits_per_day
            for visit in range(seller_visits_per_day):
                when = day_start + visit * step + client_rng.randint(0, step // 4)
                client.fetch_onion(network, marketplace.onion, now=when)
        for client in buyers:
            if day in buyer_visit_days[client.ip]:
                when = day_start + client_rng.randrange(DAY)
                client.fetch_onion(network, marketplace.onion, now=when)

    patterns = patterns_from_captures(attack.captures)
    identified_sellers, identified_buyers = classify_visitors(
        patterns, SellerCriteria()
    )
    identification = SellerIdentification(
        identified_sellers=identified_sellers,
        identified_buyers=identified_buyers,
        true_sellers=frozenset(true_sellers),
        observation_days=observation_days,
    )

    result = Sec6Result(
        identification=identification,
        captures=len(attack.captures),
        attacker_guard_share=guard_share,
    )
    report = ExperimentReport(experiment="sec6-silkroad-sellers")
    report.add("attacker guard share", None, round(guard_share, 4))
    report.add("captures", None, len(attack.captures))
    report.add("sellers identified", None, len(identified_sellers))
    report.add("seller precision", 1.0, round(identification.precision, 3))
    report.add(
        "captured-seller recall",
        None,  # grows with observation window and capture rate
        round(identification.captured_seller_recall, 3),
    )
    # Guards are *pinned*: a client is capturable only while an attacker
    # relay sits in its 3-guard set, so per guard generation the expected
    # capturable fraction is 1-(1-share)³ — and every 30–60-day rotation
    # re-rolls it, which is how the attack compounds over months.
    capturable = 1 - (1 - guard_share) ** 3
    report.add(
        "P(seller capturable this guard generation)", None, round(capturable, 3)
    )
    captured_ips = {capture.client_ip for capture in attack.captures}
    report.add(
        "sellers capturable (measured)",
        round(capturable * seller_count),
        sum(1 for ip in true_sellers if ip in captured_ips),
    )
    report.note(
        "sellers visit periodically, so nearly every *capturable* seller is "
        "identified within a week; guard rotation re-rolls capturability "
        "every 30-60 days — the paper's reputational-damage argument"
    )
    result.report = report
    return result
