"""Table I — HTTP(S)-connectable destinations per port, plus the crawl funnel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_rows
from repro.crawl.filters import destinations_summary
from repro.experiments.pipeline import MeasurementPipeline
from repro.store import ArtifactStore

# Published Table I (full scale) plus the Section IV funnel numbers.
PAPER_TABLE1 = {"80": 3_741, "443": 1_289, "22": 1_094, "8080": 4, "Other": 451}
PAPER_TRIED = 8_153
PAPER_OPEN_AT_CRAWL = 7_114
PAPER_CONNECTED = 6_579


@dataclass
class Table1Result:
    """The regenerated Table I."""

    rows: List[Tuple[str, int]]
    tried: int
    open_at_crawl: int
    connected: int
    report: ExperimentReport
    #: The pipeline that produced the result; its ``observer`` carries the
    #: campaign's metrics/span snapshot (``--metrics-out``).
    pipeline: Optional[MeasurementPipeline] = None

    def format_table(self) -> str:
        """Text rendering of Table I."""
        return format_rows(self.rows, headers=("Port Num", "# of onion addresses"))


def run_table1(
    seed: int = 0,
    scale: float = 1.0,
    pipeline: Optional[MeasurementPipeline] = None,
    workers: Optional[int] = None,
    fault_profile: Optional[str] = None,
    store: Optional[ArtifactStore] = None,
) -> Table1Result:
    """Regenerate Table I at ``scale``."""
    if pipeline is None:
        pipeline = MeasurementPipeline(
            seed=seed,
            scale=scale,
            workers=workers,
            fault_profile=fault_profile,
            store=store,
        )
    else:
        scale = pipeline.population.spec.total_onions / 39_824
    crawl = pipeline.crawl()
    rows = destinations_summary(crawl)

    report = ExperimentReport(experiment="table1-http-access")
    measured = dict(rows)
    for port, paper_count in PAPER_TABLE1.items():
        report.add(f"port {port}", paper_count * scale, measured.get(port, 0))
    report.add("destinations tried", PAPER_TRIED * scale, crawl.tried)
    report.add("open at crawl", PAPER_OPEN_AT_CRAWL * scale, crawl.open_at_crawl)
    report.add("connectable", PAPER_CONNECTED * scale, crawl.connected)
    if crawl.failures.total:
        report.add_failure_taxonomy(crawl.failures, prefix="crawl ")
        report.add("crawl retry attempts", None, crawl.failures.retry_attempts)
    if pipeline.fault_profile != "none":
        report.note(
            f"fault profile '{pipeline.fault_profile}' active; "
            f"retries {'on' if pipeline.retry_policy else 'off'}"
        )
    return Table1Result(
        rows=rows,
        tried=crawl.tried,
        open_at_crawl=crawl.open_at_crawl,
        connected=crawl.connected,
        report=report,
        pipeline=pipeline,
    )
