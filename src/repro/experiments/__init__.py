"""One driver per paper table/figure (see DESIGN.md §4).

Each module exposes a ``run_*`` function returning a typed report plus an
:class:`~repro.analysis.report.ExperimentReport` with paper-vs-measured
rows.  Benchmarks call these drivers; examples use smaller slices of the
same code.
"""

from repro.experiments.pipeline import MeasurementPipeline
from repro.experiments.fig1_ports import run_fig1
from repro.experiments.table1_http import run_table1
from repro.experiments.fig2_topics import run_fig2
from repro.experiments.table2_popularity import run_table2
from repro.experiments.fig3_geomap import run_fig3
from repro.experiments.sec6_sellers import run_sec6
from repro.experiments.sec7_tracking import run_sec7
from repro.experiments.harvest import run_harvest
from repro.experiments.chaos_sweep import run_chaos_sweep

__all__ = [
    "MeasurementPipeline",
    "run_chaos_sweep",
    "run_fig1",
    "run_table1",
    "run_fig2",
    "run_table2",
    "run_fig3",
    "run_sec6",
    "run_sec7",
    "run_harvest",
]
