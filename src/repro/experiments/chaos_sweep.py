"""Chaos sweep — headline numbers vs injected fault rate, with/without retries.

The paper's totals (22,007 open ports; 3,050 classified destinations) came
out of one week on a network that was actively failing underneath the
scanner.  This experiment makes that robustness claim measurable: sweep a
family of fault plans of increasing severity over the same world and seed,
run the full pipeline twice per severity — retries off, retries on — and
report how the headline counts degrade and how much of the loss the retry
layer buys back.

Each sweep point mixes the transient fault kinds at a common ``rate``:
circuit timeouts at ``rate``, descriptor flaps and truncation at half of
it, slow circuits at ``rate``.  HSDir outages are deliberately excluded —
they are *not* transient at probe timescale, so retries cannot recover
them and they would blur the recovery signal this sweep isolates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.report import ExperimentReport
from repro.errors import FaultConfigError
from repro.experiments.pipeline import MeasurementPipeline
from repro.faults import (
    CircuitTimeoutFault,
    DescriptorFlapFault,
    FaultPlan,
    RetryPolicy,
    SlowCircuitFault,
    TruncationFault,
)

# Paper headline totals (full scale), re-stated here so the sweep report is
# self-contained.
PAPER_TOTAL_OPEN = 22_007
PAPER_CLASSIFIED = 3_050

#: A retried run counts as "recovered" when it keeps at least this share of
#: the fault-free open-port count.
RECOVERY_THRESHOLD = 0.95


def chaos_plan(rate: float, seed: int = 0) -> FaultPlan:
    """The sweep's fault plan at severity ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise FaultConfigError(f"fault rate must be in [0, 1], got {rate}")
    if rate == 0.0:
        return FaultPlan(seed=seed, rules=(), name="chaos-0")
    return FaultPlan(
        seed=seed,
        rules=(
            CircuitTimeoutFault(rate=rate),
            DescriptorFlapFault(rate=rate / 2),
            TruncationFault(rate=rate / 2),
            SlowCircuitFault(rate=rate, extra_latency=30),
        ),
        name=f"chaos-{rate:g}",
    )


@dataclass
class ChaosPoint:
    """Pipeline headline counts at one fault rate, retries off and on."""

    rate: float
    open_no_retry: int
    open_retry: int
    classified_no_retry: int
    classified_retry: int
    transient_recovered: int
    retries_exhausted: int

    def recovered(self, baseline_open: int) -> bool:
        """Did retries keep open ports above the recovery threshold?"""
        if not baseline_open:
            return True
        return self.open_retry >= RECOVERY_THRESHOLD * baseline_open


@dataclass
class ChaosSweepResult:
    """The full sweep plus its paper-vs-measured report."""

    points: List[ChaosPoint] = field(default_factory=list)
    report: ExperimentReport = field(
        default_factory=lambda: ExperimentReport(experiment="chaos-sweep")
    )

    @property
    def baseline_open(self) -> int:
        """Open ports at the lowest swept fault rate, with retries."""
        return self.points[0].open_retry if self.points else 0

    @property
    def recovery_threshold_rate(self) -> Optional[float]:
        """Highest swept rate at which retries still recover the scan."""
        recovered = [
            point.rate
            for point in self.points
            if point.recovered(self.baseline_open)
        ]
        return max(recovered) if recovered else None

    def format_table(self) -> str:
        """Fixed-width table: counts vs fault rate, with and without retries."""
        header = (
            f"{'rate':>6}  {'open -retry':>11}  {'open +retry':>11}  "
            f"{'class -retry':>12}  {'class +retry':>12}  {'recov':>5}  {'exhst':>5}"
        )
        lines = [header, "-" * len(header)]
        for point in self.points:
            lines.append(
                f"{point.rate:>6.0%}  {point.open_no_retry:>11}  "
                f"{point.open_retry:>11}  {point.classified_no_retry:>12}  "
                f"{point.classified_retry:>12}  {point.transient_recovered:>5}  "
                f"{point.retries_exhausted:>5}"
            )
        return "\n".join(lines)


def run_chaos_sweep(
    seed: int = 0,
    scale: float = 0.02,
    fault_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    workers: Optional[int] = None,
    scan_days: int = 8,
) -> ChaosSweepResult:
    """Sweep fault severity over the full pipeline, retries off then on."""
    if not fault_rates:
        raise FaultConfigError("fault_rates must not be empty")
    rates = sorted(set(float(rate) for rate in fault_rates))
    policy = RetryPolicy(max_attempts=3, seed=seed)
    sweep = ChaosSweepResult()

    def headline(pipeline: MeasurementPipeline):
        scan = pipeline.scan()
        classified = pipeline.classifiable().classified_count
        return scan, classified

    for rate in rates:
        without = MeasurementPipeline(
            seed=seed,
            scale=scale,
            scan_days=scan_days,
            workers=workers,
            fault_plan=chaos_plan(rate, seed=seed),
            retries=False,
        )
        with_retries = MeasurementPipeline(
            seed=seed,
            scale=scale,
            scan_days=scan_days,
            workers=workers,
            fault_plan=chaos_plan(rate, seed=seed),
            retry_policy=policy,
        )
        scan_off, classified_off = headline(without)
        scan_on, classified_on = headline(with_retries)
        crawl_failures = with_retries.crawl().failures
        sweep.points.append(
            ChaosPoint(
                rate=rate,
                open_no_retry=scan_off.total_open_ports,
                open_retry=scan_on.total_open_ports,
                classified_no_retry=classified_off,
                classified_retry=classified_on,
                transient_recovered=(
                    scan_on.failures.transient_recovered
                    + crawl_failures.transient_recovered
                ),
                retries_exhausted=(
                    scan_on.failures.retries_exhausted
                    + crawl_failures.retries_exhausted
                ),
            )
        )

    report = sweep.report
    baseline = sweep.points[0]
    report.add("baseline open ports", PAPER_TOTAL_OPEN * scale, baseline.open_retry)
    report.add(
        "baseline classified", PAPER_CLASSIFIED * scale, baseline.classified_retry
    )
    for point in sweep.points[1:]:
        label = f"{point.rate:.0%} faults"
        report.add(f"open ports, {label}, no retry", None, point.open_no_retry)
        report.add(f"open ports, {label}, retry", None, point.open_retry)
        report.add(f"classified, {label}, no retry", None, point.classified_no_retry)
        report.add(f"classified, {label}, retry", None, point.classified_retry)
    threshold = sweep.recovery_threshold_rate
    if threshold is not None:
        report.note(
            f"retries hold open ports within {1 - RECOVERY_THRESHOLD:.0%} of the "
            f"fault-free count up to a {threshold:.0%} fault rate"
        )
    else:
        report.note(
            "no swept fault rate stayed within the recovery threshold — "
            "severity exceeds what this retry budget can absorb"
        )
    return sweep
