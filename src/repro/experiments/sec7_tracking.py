"""Section VII — Silk Road tracking detection over the consensus history."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.report import ExperimentReport
from repro.detection import (
    SilkroadStudy,
    SilkroadStudyConfig,
    TrackingAnalyzer,
    TrackingReport,
)
from repro.detection.analyzer import ServerKey
from repro.detection.silkroad import SilkroadWorld
from repro.parallel import resolve_workers
from repro.popularity.timeseries import (
    RequestTimeSeries,
    classify_services_by_shape,
)
from repro.sim.clock import DAY, Timestamp, parse_date
from repro.store import ArtifactStore, Stage

#: Modules whose source feeds the sec7 checkpoint's code fingerprint.
_SEC7_MODULES = (
    "repro.analysis.report",
    "repro.analysis.stats",
    "repro.classify",
    "repro.classify.language",
    "repro.classify.naive_bayes",
    "repro.classify.tokenize",
    "repro.classify.topics",
    "repro.classify.training",
    "repro.client.client",
    "repro.client.guards",
    "repro.client.workload",
    "repro.crawl",
    "repro.crawl.crawler",
    "repro.crawl.filters",
    "repro.crawl.page",
    "repro.crypto.descriptor_id",
    "repro.crypto.keys",
    "repro.crypto.onion",
    "repro.crypto.ring",
    "repro.crypto.vanity",
    "repro.detection",
    "repro.detection.analyzer",
    "repro.detection.rules",
    "repro.detection.silkroad",
    "repro.dirauth.archive",
    "repro.dirauth.authority",
    "repro.dirauth.consensus",
    "repro.dirauth.voting",
    "repro.experiments.pipeline",
    "repro.experiments.sec7_tracking",
    "repro.faults",
    "repro.faults.plan",
    "repro.faults.profiles",
    "repro.faults.retry",
    "repro.faults.taxonomy",
    "repro.faults.transport",
    "repro.hs.descriptor",
    "repro.hs.service",
    "repro.hsdir.directory",
    "repro.hsdir.ring_view",
    "repro.io",
    "repro.net.address",
    "repro.net.endpoint",
    "repro.net.geoip",
    "repro.net.transport",
    "repro.parallel",
    "repro.parallel.executor",
    "repro.popularity.ranking",
    "repro.popularity.timeseries",
    "repro.population",
    "repro.population.botnets",
    "repro.population.content",
    "repro.population.corpus",
    "repro.population.generator",
    "repro.population.spec",
    "repro.population.webserver",
    "repro.relay.flags",
    "repro.relay.relay",
    "repro.scan",
    "repro.scan.results",
    "repro.scan.scanner",
    "repro.scan.schedule",
    "repro.scan.tls",
    "repro.sim.clock",
    "repro.sim.rng",
    "repro.tornet",
)

YEAR_WINDOWS: Tuple[Tuple[str, str, str], ...] = (
    ("year1", "2011-02-01", "2011-12-31"),
    ("year2", "2012-01-01", "2012-12-31"),
    ("year3", "2013-01-01", "2013-10-31"),
)

# The paper's qualitative findings per year window.
PAPER_FINDINGS = {
    "year1": "no clear indication of tracking (one strange server)",
    "year2": "our own measurement servers detected",
    "year3": "two external episodes: same-named set (ratio > 10k) and a "
    "six-relay/three-IP full takeover on 31 Aug 2013",
}


@dataclass
class Sec7Result:
    """Detection outcome per year window plus ground-truth scoring.

    ``world`` (and the per-year detection state) is ``None`` when the
    result was replayed from a store checkpoint — only the report, which
    is what the CLI emits, round-trips.
    """

    world: Optional[SilkroadWorld] = None
    yearly_reports: Dict[str, TrackingReport] = field(default_factory=dict)
    likely_by_year: Dict[str, Dict[ServerKey, List[str]]] = field(default_factory=dict)
    takeovers: List[Tuple[Timestamp, List[ServerKey]]] = field(default_factory=list)
    report: ExperimentReport = field(default_factory=lambda: ExperimentReport("sec7"))
    #: Responsibility-occupancy shape label per server per year window,
    #: from the batched shape kernel: a ``machine`` label means the server
    #: held responsible slots with near-constant per-period regularity —
    #: the cadence of a tracker grinding keys, not of chance placement.
    #: Intermediate state like ``world``: empty when replayed from a store.
    occupancy_labels: Dict[str, Dict[ServerKey, str]] = field(default_factory=dict)

    def detected_entities(self, year: str) -> Set[str]:
        """Ground-truth entities whose servers were convicted in ``year``."""
        convicted = set(self.likely_by_year.get(year, {}))
        takeover_servers = {
            server for _, servers in self.takeovers for server in servers
        }
        entities: Set[str] = set()
        for entity, servers in self.world.ground_truth.items():
            if servers & convicted:
                entities.add(entity)
            if entity == "aug-episode" and servers & takeover_servers:
                entities.add(entity)
        return entities

    def honest_false_positives(self, year: str) -> int:
        """Convicted servers that belong to no injected entity."""
        injected = {
            server
            for servers in self.world.ground_truth.values()
            for server in servers
        }
        return sum(
            1
            for server in self.likely_by_year.get(year, {})
            if server not in injected
        )


def _occupancy_labels(
    yearly: TrackingReport, window_start: Timestamp
) -> Dict[ServerKey, str]:
    """Shape-classify each server's per-period responsibility occupancy.

    Every server's event stream becomes a daily time series (slots held per
    period), and the whole window's servers are labelled in one batched
    :func:`classify_services_by_shape` call.  A chance responsible HSDir
    shows a sparse, bursty series; a tracker that repositions every period
    shows the flat machine-like cadence the kernel flags.  ``min_requests``
    is two full periods' worth of slots, so one-off placements stay
    ``low-volume`` instead of reading as evidence either way.
    """
    if not yearly.servers:
        return {}
    length = 1 + max(
        event.period_index
        for record in yearly.servers.values()
        for event in record.events
    )
    series: Dict[ServerKey, RequestTimeSeries] = {}
    for server, record in sorted(yearly.servers.items()):
        counts = [0] * length
        for event in record.events:
            counts[event.period_index] += 1
        series[server] = RequestTimeSeries(
            start=int(window_start), bucket_seconds=DAY, counts=counts
        )
    return classify_services_by_shape(series, min_requests=12)


def _sec7_to_payload(result: Sec7Result) -> Dict[str, Any]:
    """Checkpoint encoding: only the report (the CLI's whole output)."""
    from repro import io as repro_io

    return {"report": repro_io.report_to_dict(result.report)}


def _sec7_from_payload(data: Dict[str, Any]) -> Sec7Result:
    """Inverse of :func:`_sec7_to_payload` (detection state stays None)."""
    from repro import io as repro_io

    result = Sec7Result()
    result.report = repro_io.report_from_dict(data["report"])
    return result


def run_sec7(
    seed: int = 0,
    scale: float = 1.0,
    config: Optional[SilkroadStudyConfig] = None,
    world: Optional[SilkroadWorld] = None,
    workers: Optional[int] = None,
    store: Optional[ArtifactStore] = None,
) -> Sec7Result:
    """Regenerate the Section VII analysis.

    With ``store`` (and no pre-built ``world``, whose identity the cache
    key could not capture) the whole analysis is one checkpoint; a warm
    run replays just the report.
    """
    if store is not None and world is None:
        stage = Stage(
            name="sec7",
            modules=_SEC7_MODULES,
            encode=_sec7_to_payload,
            decode=_sec7_from_payload,
        )
        study_config = (
            config if config is not None else SilkroadStudyConfig(seed=seed, scale=scale)
        )
        key_config = {
            "seed": seed,
            "study": asdict(study_config),
            "workers": resolve_workers(workers),
        }
        return store.run(
            stage,
            key_config,
            lambda: run_sec7(seed=seed, scale=scale, config=config, workers=workers),
        )
    if world is None:
        if config is None:
            config = SilkroadStudyConfig(seed=seed, scale=scale)
        world = SilkroadStudy(config).build()
    result = Sec7Result(world=world)
    analyzer = TrackingAnalyzer(world.archive)

    for year, start_text, end_text in YEAR_WINDOWS:
        yearly = analyzer.analyze(
            world.silkroad_onion,
            parse_date(start_text),
            parse_date(end_text),
            workers=workers,
        )
        result.yearly_reports[year] = yearly
        result.likely_by_year[year] = yearly.likely_trackers()
        result.occupancy_labels[year] = _occupancy_labels(
            yearly, parse_date(start_text)
        )
        if year == "year3":
            result.takeovers = yearly.full_takeovers()

    report = ExperimentReport(experiment="sec7-silkroad-tracking")
    report.add("year1 likely trackers", 0, len(result.likely_by_year["year1"]))
    report.add(
        "year2 detects our trackers",
        1,
        1 if "our-trackers" in result.detected_entities("year2") else 0,
    )
    report.add(
        "year3 detects may-episode",
        1,
        1 if "may-episode" in result.detected_entities("year3") else 0,
    )
    report.add(
        "year3 detects aug-episode",
        1,
        1 if "aug-episode" in result.detected_entities("year3") else 0,
    )
    report.add("full takeovers found", 1, len(result.takeovers))
    for year, _, _ in YEAR_WINDOWS:
        report.add(
            f"{year} honest false positives", 0, result.honest_false_positives(year)
        )
    year3 = result.yearly_reports["year3"]
    extreme = year3.servers_with_flag("ratio-extreme")
    may_servers = world.ground_truth.get("may-episode", set())
    aug_servers = world.ground_truth.get("aug-episode", set())
    only_injected_extreme = all(
        server in may_servers | aug_servers for server in extreme
    )
    report.add(
        "ratio>10k only in injected episodes", 1, 1 if only_injected_extreme else 0
    )
    for year, _, _ in YEAR_WINDOWS:
        report.note(f"{year}: paper — {PAPER_FINDINGS[year]}")
    result.report = report
    return result
