"""Fig 1 — open-ports distribution, plus the Section III TLS findings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_bar_chart
from repro.experiments.pipeline import MeasurementPipeline
from repro.store import ArtifactStore
from repro.scan.results import PortDistribution

# Published Fig 1 counts (full scale).
PAPER_FIG1 = {
    "55080-Skynet": 13_854,
    "80-http": 4_027,
    "443-https": 1_366,
    "22-ssh": 1_238,
    "11009-TorChat": 385,
    "4050": 138,
    "6667-irc": 113,
    "other": 886,
}
PAPER_TOTAL_OPEN = 22_007
PAPER_UNIQUE_PORTS = 495
PAPER_DESCRIPTORS_AVAILABLE = 24_511
PAPER_SELF_SIGNED_MISMATCH = 1_225
PAPER_TORHOST_CN = 1_168
PAPER_DEANON_CERTS = 34


@dataclass
class Fig1Result:
    """Everything the Fig 1 bench reports."""

    distribution: PortDistribution
    descriptors_available: int
    report: ExperimentReport
    #: The pipeline that produced the result; its ``observer`` carries the
    #: campaign's metrics/span snapshot (``--metrics-out``).
    pipeline: Optional[MeasurementPipeline] = None

    def format_figure(self) -> str:
        """The text rendering of Fig 1."""
        rows = [(label, float(count)) for label, count in self.distribution.as_rows()]
        return format_bar_chart(rows, width=44)


def run_fig1(
    seed: int = 0,
    scale: float = 1.0,
    pipeline: Optional[MeasurementPipeline] = None,
    workers: Optional[int] = None,
    fault_profile: Optional[str] = None,
    store: Optional[ArtifactStore] = None,
) -> Fig1Result:
    """Regenerate Fig 1 (and the TLS findings) at ``scale``."""
    if pipeline is None:
        pipeline = MeasurementPipeline(
            seed=seed,
            scale=scale,
            workers=workers,
            fault_profile=fault_profile,
            store=store,
        )
    else:
        scale = pipeline.population.spec.total_onions / 39_824
    scan = pipeline.scan()
    certs = pipeline.certificates()
    distribution = scan.port_distribution()

    report = ExperimentReport(experiment="fig1-open-ports")
    for label, paper_count in PAPER_FIG1.items():
        report.add(label, paper_count * scale, distribution.counts.get(label, 0))
    report.add("total open ports", PAPER_TOTAL_OPEN * scale, distribution.total_open)
    report.add("unique port numbers", PAPER_UNIQUE_PORTS * scale, distribution.unique_ports)
    report.add(
        "descriptors available",
        PAPER_DESCRIPTORS_AVAILABLE * scale,
        len(scan.descriptor_onions),
    )
    report.add(
        "self-signed CN mismatch",
        PAPER_SELF_SIGNED_MISMATCH * scale,
        certs.self_signed_mismatch,
    )
    report.add("TorHost CN certs", PAPER_TORHOST_CN * scale, certs.dominant_cn_count)
    report.add("public-DNS CN certs", PAPER_DEANON_CERTS * scale, certs.deanonymizable_count)
    report.note(
        "abnormal port-55080 errors counted as open, per Section III methodology"
    )
    if scan.failures.total or scan.descriptor_refetches:
        report.add_failure_taxonomy(scan.failures, prefix="scan ")
        report.add("scan descriptor refetches", None, scan.descriptor_refetches)
    if pipeline.fault_profile != "none":
        report.note(
            f"fault profile '{pipeline.fault_profile}' active; "
            f"retries {'on' if pipeline.retry_policy else 'off'}"
        )
    return Fig1Result(
        distribution=distribution,
        descriptors_available=len(scan.descriptor_onions),
        report=report,
        pipeline=pipeline,
    )
