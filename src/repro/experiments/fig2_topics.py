"""Fig 2 — topic distribution, language mix, and the exclusion funnel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_bar_chart
from repro.experiments.pipeline import ClassificationOutcome, MeasurementPipeline
from repro.population.corpus import TOPIC_DISPLAY_NAMES
from repro.population.spec import TOPIC_SHARES

# Section IV funnel (full scale).
PAPER_CLASSIFIED = 3_050
PAPER_SHORT_EXCLUDED = 2_348
PAPER_SSH_BANNERS = 1_092
PAPER_DUP_443 = 1_108
PAPER_ERROR_PAGES = 73
PAPER_ENGLISH = 2_618
PAPER_TORHOST_DEFAULT = 805
PAPER_TOPIC_CLASSIFIED = 1_813
PAPER_ENGLISH_FRACTION = 0.84
PAPER_LANGUAGE_COUNT = 17


@dataclass
class Fig2Result:
    """The regenerated Fig 2 and its funnel."""

    outcome: ClassificationOutcome
    funnel: Dict[str, int]
    report: ExperimentReport
    #: The pipeline that produced the result; its ``observer`` carries the
    #: campaign's metrics/span snapshot (``--metrics-out``).
    pipeline: Optional[MeasurementPipeline] = None

    def format_figure(self) -> str:
        """Text rendering of Fig 2 (topic percentages)."""
        shares = self.outcome.topic_shares_percent()
        rows = [
            (TOPIC_DISPLAY_NAMES.get(topic, topic), round(share, 1))
            for topic, share in sorted(shares.items(), key=lambda kv: -kv[1])
        ]
        return format_bar_chart(rows, width=40, unit="%")


def run_fig2(
    seed: int = 0,
    scale: float = 1.0,
    pipeline: Optional[MeasurementPipeline] = None,
    workers: Optional[int] = None,
    fault_profile: Optional[str] = None,
    store: Optional[ArtifactStore] = None,
) -> Fig2Result:
    """Regenerate Fig 2 at ``scale``."""
    if pipeline is None:
        pipeline = MeasurementPipeline(
            seed=seed,
            scale=scale,
            workers=workers,
            fault_profile=fault_profile,
            store=store,
        )
    else:
        scale = pipeline.population.spec.total_onions / 39_824
    classifiable = pipeline.classifiable()
    outcome = pipeline.classify()

    funnel = {
        "classified": classifiable.classified_count,
        "short_excluded": classifiable.short_excluded,
        "ssh_banners": classifiable.ssh_banner_excluded,
        "dup_443": classifiable.duplicate_443_excluded,
        "error_pages": classifiable.error_page_excluded,
    }

    report = ExperimentReport(experiment="fig2-topics")
    report.add("classified destinations", PAPER_CLASSIFIED * scale, funnel["classified"])
    report.add("short excluded", PAPER_SHORT_EXCLUDED * scale, funnel["short_excluded"])
    report.add("ssh banners", PAPER_SSH_BANNERS * scale, funnel["ssh_banners"])
    report.add("dup-443 excluded", PAPER_DUP_443 * scale, funnel["dup_443"])
    report.add("error pages excluded", PAPER_ERROR_PAGES * scale, funnel["error_pages"])
    report.add("english pages", PAPER_ENGLISH * scale, outcome.english_pages)
    report.add(
        "english fraction",
        PAPER_ENGLISH_FRACTION,
        round(outcome.english_fraction, 3),
    )
    report.add(
        "torhost default pages",
        PAPER_TORHOST_DEFAULT * scale,
        outcome.torhost_default_count,
    )
    report.add(
        "topic-classified pages",
        PAPER_TOPIC_CLASSIFIED * scale,
        sum(outcome.topic_counts.values()),
    )
    report.add(
        "languages observed",
        PAPER_LANGUAGE_COUNT,
        len(outcome.language_counts),
    )
    shares = outcome.topic_shares_percent()
    for topic, paper_share in TOPIC_SHARES.items():
        report.add(
            f"topic {TOPIC_DISPLAY_NAMES.get(topic, topic)} %",
            paper_share,
            round(shares.get(topic, 0.0), 1),
        )
    report.note("topics measured over topic-classified English pages, as Fig 2")
    return Fig2Result(outcome=outcome, funnel=funnel, report=report, pipeline=pipeline)
