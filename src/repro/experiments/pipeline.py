"""The shared measurement pipeline: population → scan → crawl → classify.

Fig 1, Table I and Fig 2 are successive stages of one campaign (the paper
scanned in February and crawled the scan's output two months later), so the
pipeline computes each stage lazily and caches it; the three experiment
drivers pull the stage they report on.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.classify import (
    LanguageDetector,
    TopicClassifier,
    build_language_detector,
    build_topic_classifier,
    is_torhost_default,
)
from repro.crawl import ClassifiableSet, Crawler, CrawlResults, apply_exclusions
from repro.crawl.page import FetchedPage
from repro.faults import (
    FaultPlan,
    RetryPolicy,
    build_fault_plan,
    default_retry_policy,
    wrap_transport,
)
from repro.net.transport import TorTransport
from repro.obs.scope import Observer, ensure_observer
from repro.parallel import QUARANTINED, ShardQuarantine, pmap, resolve_workers
from repro.population import GeneratedPopulation, generate_population
from repro.population.spec import PORT_SKYNET
from repro.scan import (
    CertificateAnalysis,
    PortScanner,
    ScanResults,
    ScanSchedule,
    analyze_certificates,
    collect_certificates,
)
from repro.sim.clock import DAY
from repro.sim.rng import derive_rng
from repro.store import ArtifactStore, Stage, StateCursor

#: Every module in the pipeline module's transitive import closure
#: (minus the fingerprint-exempt infra layers), kept flat and sorted so
#: ``repro lint`` (REP012) can statically prove the stage fingerprints
#: cover the code they cache.  All four stages run in this module and
#: share its closure, so they share one tuple; editing any listed module
#: invalidates every pipeline checkpoint, which is exactly the safe
#: direction to err.
_PIPELINE_STAGE_MODULES: Tuple[str, ...] = (
    "repro.analysis.report",
    "repro.analysis.stats",
    "repro.classify",
    "repro.classify.language",
    "repro.classify.naive_bayes",
    "repro.classify.tokenize",
    "repro.classify.topics",
    "repro.classify.training",
    "repro.client.client",
    "repro.client.guards",
    "repro.client.workload",
    "repro.crawl",
    "repro.crawl.crawler",
    "repro.crawl.filters",
    "repro.crawl.page",
    "repro.crypto.descriptor_id",
    "repro.crypto.keys",
    "repro.crypto.onion",
    "repro.crypto.ring",
    "repro.crypto.vanity",
    "repro.dirauth.consensus",
    "repro.experiments.pipeline",
    "repro.faults",
    "repro.faults.plan",
    "repro.faults.profiles",
    "repro.faults.retry",
    "repro.faults.taxonomy",
    "repro.faults.transport",
    "repro.hs.descriptor",
    "repro.hs.service",
    "repro.hsdir.directory",
    "repro.io",
    "repro.net.address",
    "repro.net.endpoint",
    "repro.net.geoip",
    "repro.net.transport",
    "repro.parallel",
    "repro.parallel.executor",
    "repro.popularity.ranking",
    "repro.popularity.timeseries",
    "repro.population",
    "repro.population.botnets",
    "repro.population.content",
    "repro.population.corpus",
    "repro.population.generator",
    "repro.population.spec",
    "repro.population.webserver",
    "repro.relay.flags",
    "repro.scan",
    "repro.scan.results",
    "repro.scan.scanner",
    "repro.scan.schedule",
    "repro.scan.tls",
    "repro.sim.clock",
    "repro.sim.rng",
)


class _TransportCursor(StateCursor):
    """Checkpoint cursor over the pipeline's transport stream state.

    The transport's circuit RNG and attempt counters carry across stages,
    so a cache hit must leave them exactly where running the stage would
    have; the store captures this cursor before each stage (it becomes
    part of the cache key) and restores the recorded post-stage snapshot
    on a hit.
    """

    def __init__(self, transport: Any) -> None:
        self._transport = transport

    def capture(self) -> Dict[str, Any]:
        return self._transport.stream_state()

    def restore(self, state: Dict[str, Any]) -> None:
        self._transport.restore_stream_state(state)


def _classify_page(
    page: FetchedPage,
    observer: Optional[Observer] = None,
    *,
    detector: LanguageDetector,
    classifier: TopicClassifier,
) -> Tuple[str, bool, Optional[str]]:
    """(language, is-TorHost-default, topic-or-None) for one page.

    Pure per page and picklable (module-level function, dict-state
    models), so the classify stage can fan out across processes.  When
    the stage runs under an enabled observer, ``observer`` is the shard
    observer :func:`repro.parallel.pmap` hands in; the counters recorded
    here are additive, so the merged snapshot is worker-count-invariant.
    """
    obs = ensure_observer(observer)
    language = detector.detect(page.text)
    obs.count("classify_pages_total", language=language)
    if language != "en":
        return language, False, None
    if is_torhost_default(page.text):
        obs.count("classify_torhost_defaults_total")
        return language, True, None
    topic = classifier.classify(page.text)
    obs.count("classify_topics_total", topic=topic)
    return language, False, topic


class ClassificationOutcome:
    """Language and topic assignments over the classifiable pages."""

    def __init__(self) -> None:
        self.language_counts: Dict[str, int] = {}
        self.topic_counts: Dict[str, int] = {}
        self.torhost_default_count = 0
        self.english_pages = 0
        self.classified_pages = 0
        self.page_languages: Dict[Tuple[str, int], str] = {}
        self.page_topics: Dict[Tuple[str, int], str] = {}

    @property
    def english_fraction(self) -> float:
        """Share of classified pages detected as English."""
        if not self.classified_pages:
            return 0.0
        return self.english_pages / self.classified_pages

    def topic_shares_percent(self) -> Dict[str, float]:
        """Fig 2: topic percentages over topic-classified pages."""
        total = sum(self.topic_counts.values())
        if not total:
            return {}
        return {
            topic: 100.0 * count / total
            for topic, count in self.topic_counts.items()
        }


class MeasurementPipeline:
    """Lazily evaluated scan → crawl → classify campaign."""

    def __init__(
        self,
        seed: int = 0,
        scale: float = 1.0,
        population: Optional[GeneratedPopulation] = None,
        scan_days: int = 8,
        workers: Optional[int] = None,
        fault_profile: Optional[str] = None,
        retries: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        observer: Optional[Observer] = None,
        store: Optional[ArtifactStore] = None,
        crash_point: Optional[Callable[[str], None]] = None,
        quarantine: Optional[ShardQuarantine] = None,
    ) -> None:
        self.seed = seed
        #: Supervision hooks (repro.supervise threads these in; the
        #: pipeline never imports that package).  ``crash_point`` is hit
        #: at every stage boundary, classify shard, and store commit;
        #: ``quarantine`` isolates poisoned classify items.  Neither is
        #: part of any cache key: supervision must never shape artifact
        #: bytes — a crashed-and-resumed run stays byte-identical to a
        #: clean one.
        self.crash_point = crash_point
        self.quarantine = quarantine
        #: The campaign's observability scope: every stage, the transport,
        #: the fault wrapper and the retry layer record into it.  Explicit
        #: (not global) so two pipelines never share metric state.
        self.observer = observer if observer is not None else Observer(name="pipeline")
        #: Worker count for every stage fan-out (None → $REPRO_WORKERS → 1).
        #: Any value yields byte-identical stages; see repro.parallel.
        self.workers = workers
        self.population = (
            population
            if population is not None
            else generate_population(seed=seed, scale=scale)
        )
        self.scan_days = scan_days
        # Fault plane: an explicit plan wins; otherwise the profile resolves
        # explicit argument → $REPRO_FAULTS → "none".  With the "none"
        # profile the plan is inert, no retry policy is installed, and the
        # raw transport is used — byte-identical to the pre-fault pipeline.
        if fault_plan is None:
            fault_plan = build_fault_plan(fault_profile, seed=seed)
        self.fault_plan = fault_plan
        self.fault_profile = fault_plan.name
        if retry_policy is None and retries:
            retry_policy = default_retry_policy(
                fault_profile if fault_plan.name == "custom" else fault_plan.name,
                seed=seed,
            )
        self.retry_policy = retry_policy if retries else None
        self.transport = wrap_transport(
            TorTransport(
                self.population.registry,
                derive_rng(seed, "pipeline", "transport"),
                descriptor_available=self.population.descriptor_available,
                observer=self.observer,
            ),
            fault_plan,
            observer=self.observer,
        )
        #: Optional artifact store (repro.store): when present, each stage
        #: checkpoints through it — cache hits skip the compute entirely
        #: and restore the transport cursor, so warm runs stay
        #: byte-identical to cold ones.  None (the default) leaves every
        #: stage exactly as before the store existed.
        self.store = store
        if store is not None and not store.observer.enabled:
            # Adopt the campaign observer so hit/miss/byte counters land in
            # the same snapshot as the stages they describe.
            store.observer = self.observer
        if store is not None and crash_point is not None:
            store.crash_point = crash_point
        self._scan: Optional[ScanResults] = None
        self._certs: Optional[CertificateAnalysis] = None
        self._crawl: Optional[CrawlResults] = None
        self._classifiable: Optional[ClassifiableSet] = None
        self._classification: Optional[ClassificationOutcome] = None
        self._language_detector: Optional[LanguageDetector] = None
        self._topic_classifier: Optional[TopicClassifier] = None

    # -- checkpointing ----------------------------------------------------- #

    def _store_config(self) -> Dict[str, Any]:
        """Everything configurable that shapes stage artifacts.

        Part of every stage's cache key: two pipelines with equal configs
        (and equal code and upstream artifacts) produce identical
        artifacts; any difference here keys — and caches — separately.
        """
        policy = self.retry_policy
        return {
            "seed": self.seed,
            "population": {
                "seed": self.population.seed,
                "spec": dataclasses.asdict(self.population.spec),
            },
            "scan_days": self.scan_days,
            "faults": self.fault_plan.describe(),
            "retry_policy": dataclasses.asdict(policy) if policy else None,
            "workers": resolve_workers(self.workers),
        }

    def _run_stage(
        self,
        name: str,
        modules: Tuple[str, ...],
        encode: Callable[[Any], Dict[str, Any]],
        decode: Callable[[Dict[str, Any]], Any],
        compute: Callable[[], Any],
        upstream: Tuple[str, ...] = (),
    ) -> Any:
        """Run one stage, through the store's checkpoint when configured.

        The stage-boundary crash points bracket the checkpointed body:
        ``stage:<name>:enter`` fires before anything runs (a death there
        costs nothing — no commit happened), ``stage:<name>:exit`` fires
        after the commit (a death there costs nothing either — the next
        incarnation replays the stage as a cache hit).
        """
        if self.crash_point is not None:
            self.crash_point(f"stage:{name}:enter")
        if self.store is None:
            result = compute()
        else:
            stage = Stage(name=name, modules=modules, encode=encode, decode=decode)
            result = self.store.run(
                stage,
                self._store_config(),
                compute,
                cursor=_TransportCursor(self.transport),
                upstream=upstream,
            )
        if self.crash_point is not None:
            self.crash_point(f"stage:{name}:exit")
        return result

    # -- stages ---------------------------------------------------------- #

    def scan(self) -> ScanResults:
        """Stage 1: the 8-day port scan (Section III)."""
        if self._scan is None:
            from repro import io as repro_io

            self._scan = self._run_stage(
                "scan",
                _PIPELINE_STAGE_MODULES,
                repro_io.scan_to_dict,
                repro_io.scan_from_dict,
                self._compute_scan,
            )
        return self._scan

    def _compute_scan(self) -> ScanResults:
        schedule = ScanSchedule(start=self.population.scan_start, days=self.scan_days)
        with self.observer.span("pipeline.scan"):
            return PortScanner(
                self.transport,
                retry_policy=self.retry_policy,
                observer=self.observer,
            ).run(self.population.all_onions, schedule, workers=self.workers)

    def certificates(self) -> CertificateAnalysis:
        """Stage 1b: HTTPS certificate analysis (Section III)."""
        if self._certs is None:
            from repro import io as repro_io

            self.scan()  # the upstream artifact feeds this stage's key
            self._certs = self._run_stage(
                "certificates",
                _PIPELINE_STAGE_MODULES,
                repro_io.certificates_to_dict,
                repro_io.certificates_from_dict,
                self._compute_certificates,
                upstream=("scan",),
            )
        return self._certs

    def _compute_certificates(self) -> CertificateAnalysis:
        scan = self.scan()
        https = scan.onions_with_port(443)
        when = self.population.scan_start + self.scan_days * DAY
        with self.observer.span("pipeline.certificates", https_onions=len(https)):
            certs = collect_certificates(self.transport, https, when)
            analysis = analyze_certificates(certs)
        self.observer.gauge("certificates_collected", len(certs))
        return analysis

    def crawl(self) -> CrawlResults:
        """Stage 2: the HTTP(S) crawl two months later (Section IV)."""
        if self._crawl is None:
            from repro import io as repro_io

            self.scan()
            self._crawl = self._run_stage(
                "crawl",
                _PIPELINE_STAGE_MODULES,
                repro_io.crawl_to_dict,
                repro_io.crawl_from_dict,
                self._compute_crawl,
                upstream=("scan",),
            )
        return self._crawl

    def _compute_crawl(self) -> CrawlResults:
        destinations = self.scan().destinations_excluding(PORT_SKYNET)
        crawler = Crawler(
            self.transport,
            retry_policy=self.retry_policy,
            observer=self.observer,
        )
        with self.observer.span("pipeline.crawl"):
            return crawler.crawl(
                destinations, self.population.crawl_date, workers=self.workers
            )

    def classifiable(self) -> ClassifiableSet:
        """Stage 3: the exclusion funnel."""
        if self._classifiable is None:
            self._classifiable = apply_exclusions(self.crawl())
        return self._classifiable

    def classify(self) -> ClassificationOutcome:
        """Stage 4: language detection + topic classification.

        Per-page scoring is pure, so the fan-out runs through
        :func:`repro.parallel.pmap` (genuinely multi-process at
        ``workers>1``); the outcome merge walks pages in crawl order, so
        counts and first-encounter dict ordering match the serial run
        exactly.
        """
        if self._classification is None:
            from repro import io as repro_io

            self.crawl()
            self._classification = self._run_stage(
                "classify",
                _PIPELINE_STAGE_MODULES,
                repro_io.classification_to_dict,
                repro_io.classification_from_dict,
                self._compute_classify,
                upstream=("crawl",),
            )
        return self._classification

    def _compute_classify(self) -> ClassificationOutcome:
        outcome = ClassificationOutcome()
        pages = self.classifiable().pages
        with self.observer.span("pipeline.classify", pages=len(pages)):
            assignments = pmap(
                functools.partial(
                    _classify_page,
                    detector=self.language_detector,
                    classifier=self.topic_classifier,
                ),
                pages,
                workers=self.workers,
                observer=self.observer,
                quarantine=self.quarantine,
                crash_point=self.crash_point,
            )
        for page, assignment in zip(pages, assignments):
            if assignment is QUARANTINED:
                # A poisoned page was isolated instead of killing the run;
                # the outcome degrades by exactly that page and the
                # CompletenessManifest reports it.
                self.observer.count("classify_pages_quarantined_total")
                continue
            language, is_default, topic = assignment
            outcome.classified_pages += 1
            outcome.page_languages[page.destination] = language
            outcome.language_counts[language] = (
                outcome.language_counts.get(language, 0) + 1
            )
            if language != "en":
                continue
            outcome.english_pages += 1
            if is_default:
                outcome.torhost_default_count += 1
                continue
            outcome.page_topics[page.destination] = topic
            outcome.topic_counts[topic] = outcome.topic_counts.get(topic, 0) + 1
        self.observer.gauge("classify_pages", outcome.classified_pages)
        self.observer.gauge("classify_english_pages", outcome.english_pages)
        return outcome

    # -- shared models ---------------------------------------------------- #

    @property
    def language_detector(self) -> LanguageDetector:
        """The shipped (pre-trained) language model."""
        if self._language_detector is None:
            self._language_detector = build_language_detector()
        return self._language_detector

    @property
    def topic_classifier(self) -> TopicClassifier:
        """The shipped (pre-trained) topic model."""
        if self._topic_classifier is None:
            self._topic_classifier = build_topic_classifier()
        return self._topic_classifier

    # -- conveniences ------------------------------------------------------ #

    def classified_pages(self) -> List[FetchedPage]:
        """Pages that survived the funnel."""
        return list(self.classifiable().pages)
