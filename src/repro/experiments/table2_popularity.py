"""Table II — popularity of hidden services (Section V).

Full pipeline:  build the Tor network and publish the whole population →
run the shadow-relay sweep with client traffic interleaved → read request
counts off the attacker's directories → resolve descriptor IDs over the
multi-day window → normalise to per-2-hour rates → rank → label known
addresses and *investigate* the anonymous head (the Goldnet forensics).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.report import ExperimentReport
from repro.client.workload import PopularityWorkload, WorkloadReport
from repro.crypto.keys import KeyPair
from repro.crypto.onion import OnionAddress
from repro.errors import ConfigError
from repro.hs.publisher import PublishScheduler
from repro.net.address import AddressPool
from repro.net.geoip import GeoIP
from repro.net.transport import TorTransport
from repro.popularity import (
    DescriptorResolver,
    PopularityRanking,
    ResolutionResult,
    ServiceLabeler,
    investigate_goldnet,
)
from repro.popularity.labels import GoldnetFinding
from repro.population import GeneratedPopulation, generate_population
from repro.parallel import resolve_workers
from repro.relay.relay import Relay
from repro.sim.clock import DAY, HOUR, SimClock, Timestamp, parse_date
from repro.sim.rng import derive_rng
from repro.store import ArtifactStore, Stage
from repro.tornet import TorNetwork
from repro.trawl import TrawlAttack, TrawlConfig

#: Modules whose source feeds the table2 checkpoint's code fingerprint.
_TABLE2_MODULES = (
    "repro.analysis.report",
    "repro.analysis.stats",
    "repro.classify",
    "repro.classify.language",
    "repro.classify.naive_bayes",
    "repro.classify.tokenize",
    "repro.classify.topics",
    "repro.classify.training",
    "repro.client.client",
    "repro.client.guards",
    "repro.client.workload",
    "repro.crawl",
    "repro.crawl.crawler",
    "repro.crawl.filters",
    "repro.crawl.page",
    "repro.crypto.descriptor_id",
    "repro.crypto.keys",
    "repro.crypto.onion",
    "repro.crypto.ring",
    "repro.crypto.vanity",
    "repro.dirauth.archive",
    "repro.dirauth.authority",
    "repro.dirauth.consensus",
    "repro.dirauth.voting",
    "repro.experiments.pipeline",
    "repro.experiments.table2_popularity",
    "repro.faults",
    "repro.faults.plan",
    "repro.faults.profiles",
    "repro.faults.retry",
    "repro.faults.taxonomy",
    "repro.faults.transport",
    "repro.hs.descriptor",
    "repro.hs.publisher",
    "repro.hs.service",
    "repro.hsdir.directory",
    "repro.hsdir.ring_view",
    "repro.io",
    "repro.net.address",
    "repro.net.endpoint",
    "repro.net.geoip",
    "repro.net.transport",
    "repro.parallel",
    "repro.parallel.executor",
    "repro.popularity",
    "repro.popularity.labels",
    "repro.popularity.ranking",
    "repro.popularity.resolver",
    "repro.popularity.timeseries",
    "repro.population",
    "repro.population.botnets",
    "repro.population.content",
    "repro.population.corpus",
    "repro.population.generator",
    "repro.population.spec",
    "repro.population.webserver",
    "repro.relay.flags",
    "repro.relay.relay",
    "repro.scan",
    "repro.scan.results",
    "repro.scan.scanner",
    "repro.scan.schedule",
    "repro.scan.tls",
    "repro.sim.clock",
    "repro.sim.engine",
    "repro.sim.rng",
    "repro.tornet",
    "repro.trawl",
    "repro.trawl.attack",
    "repro.trawl.coverage",
    "repro.trawl.harvest",
    "repro.trawl.shadowing",
)

# Section V aggregates (full scale).
PAPER_TOTAL_REQUESTS = 1_031_176
PAPER_UNIQUE_IDS = 29_123
PAPER_RESOLVED_IDS = 6_113
PAPER_RESOLVED_ONIONS = 3_140
PAPER_PHANTOM_FRACTION = 0.80
PAPER_GOLDNET_COUNT = 9
PAPER_GOLDNET_SERVERS = 2

# Paper ranks for spot-checked services.
PAPER_RANKS = {
    "silkroad": 18,
    "freedom-hosting": 27,
    "blackmarket-reloaded": 62,
    "duckduckgo": 157,
    "torhost-main": 547,
}
PAPER_RATES = {
    "goldnet-1": 13_714,
    "silkroad": 1_175,
    "blackmarket-reloaded": 172,
    "duckduckgo": 55,
}

# Labels the 2013 investigators had out of band: publicly known addresses
# (Hidden Wiki, Rapid7's Skynet write-up, …).  Everything else in the
# ranking starts as <n/a> and only forensics can name it.
PUBLICLY_KNOWN_LABELS = {
    "silkroad": "Silk Road",
    "silkroad-wiki": "SilkRoad(wiki)",
    "blackmarket-reloaded": "BlckMrktReloaded",
    "duckduckgo": "DuckDuckGo",
    "freedom-hosting": "FreedomHosting",
    "tordir": "TorDir",
    "onion-bookmarks": "Onion Bookmarks",
    "torhost-main": "Tor Host",
    "bcmine-1": "BcMine",
    "bcmine-2": "BcMine",
}
SKYNET_LABEL = "Skynet"
ADULT_LABEL = "Adult"


@dataclass
class Table2Result:
    """The regenerated Table II plus Section V aggregates.

    ``resolution`` and ``workload_report`` are intermediate state: present
    on a full run, ``None`` when the result was replayed from a store
    checkpoint (the ranking and report round-trip; the intermediates are
    not part of any emitted artifact).
    """

    ranking: PopularityRanking
    resolution: Optional[ResolutionResult] = None
    workload_report: Optional[WorkloadReport] = None
    total_requests_observed: int = 0
    unique_ids_observed: int = 0
    goldnet_findings: List[GoldnetFinding] = field(default_factory=list)
    report: ExperimentReport = field(default_factory=lambda: ExperimentReport("table2"))
    label_to_onion: Dict[str, OnionAddress] = field(default_factory=dict)
    #: Traffic-shape label (``machine``/``human``/``low-volume``) per
    #: resolved onion, from the batched shape kernel over the attacker's
    #: merged request logs.  Intermediate state like ``resolution``: ``None``
    #: when replayed from a store checkpoint.
    shape_labels: Optional[Dict[OnionAddress, str]] = None

    def rank_of_label(self, label: str) -> Optional[int]:
        """Measured rank of a ground-truth-labelled service."""
        onion = self.label_to_onion.get(label)
        if onion is None:
            return None
        return self.ranking.rank_of(onion)


def _classify_resolved_shapes(
    network: TorNetwork,
    attack: TrawlAttack,
    resolution: ResolutionResult,
    window_start: Timestamp,
    window_end: Timestamp,
) -> Dict[OnionAddress, str]:
    """Shape-classify every resolved onion from the attacker's own logs.

    The attacker relays' detailed request logs are merged into one
    synthetic directory log, each resolved onion's per-hour series is one
    packed-array gather over its descriptor IDs, and the whole population
    is labelled in a single :func:`classify_services_by_shape` batch — the
    Section V forensic that separates botnet beacons from human browsing
    without touching any content.
    """
    from repro.hsdir.directory import HSDirServer
    from repro.popularity.timeseries import (
        classify_services_by_shape,
        series_from_log,
    )

    if attack.fleet is None or not resolution.id_to_onion:
        return {}
    merged = HSDirServer(relay_id=-1, keep_log=True)
    for relay in attack.fleet.all_relays:
        merged.request_log.extend(
            network.hsdir_server_for(relay).request_log
        )
    ids_per_onion: Dict[OnionAddress, List[bytes]] = {}
    for desc_id, onion in resolution.id_to_onion.items():
        ids_per_onion.setdefault(onion, []).append(desc_id)
    series = {
        onion: series_from_log(
            merged, window_start, window_end, descriptor_ids=ids
        )
        for onion, ids in sorted(ids_per_onion.items())
    }
    return classify_services_by_shape(series)


def _build_honest_network(
    seed: int, relay_count: int, start: Timestamp
) -> tuple[TorNetwork, AddressPool]:
    rng = derive_rng(seed, "table2", "honest")
    pool = AddressPool(derive_rng(seed, "table2", "ips"))
    network = TorNetwork(clock=SimClock(start), keep_archive=False)
    for index in range(relay_count):
        network.add_relay(
            Relay(
                nickname=f"relay{index:05d}",
                ip=pool.allocate(),
                or_port=9001,
                keypair=KeyPair.generate(rng),
                bandwidth=rng.randint(100, 5000),
                started_at=start - rng.randint(5, 500) * DAY,
            )
        )
    network.rebuild_consensus(start)
    return network, pool


def _table2_to_payload(result: Table2Result) -> Dict[str, Any]:
    """Checkpoint encoding: the report, ranking and Section V aggregates.

    Intermediate state (resolution internals, per-slice workload report,
    goldnet findings already folded into the ranking labels and report)
    deliberately stays out — nothing the CLI or benches emit needs it.
    """
    from repro import io as repro_io

    return {
        "report": repro_io.report_to_dict(result.report),
        "ranking": repro_io.ranking_to_dict(result.ranking),
        "total_requests_observed": result.total_requests_observed,
        "unique_ids_observed": result.unique_ids_observed,
        "label_to_onion": dict(result.label_to_onion),
    }


def _table2_from_payload(data: Dict[str, Any]) -> Table2Result:
    """Inverse of :func:`_table2_to_payload` (intermediates stay None)."""
    from repro import io as repro_io

    result = Table2Result(
        ranking=repro_io.ranking_from_dict(data["ranking"]),
        total_requests_observed=data["total_requests_observed"],
        unique_ids_observed=data["unique_ids_observed"],
        label_to_onion=dict(data["label_to_onion"]),
    )
    result.report = repro_io.report_from_dict(data["report"])
    return result


def run_table2(
    seed: int = 0,
    scale: float = 1.0,
    population: Optional[GeneratedPopulation] = None,
    relay_count: Optional[int] = None,
    sweep_hours: int = 12,
    rotation_interval_hours: int = 2,
    relays_per_ip: int = 24,
    thinning: float = 1.0,
    workers: Optional[int] = None,
    store: Optional[ArtifactStore] = None,
) -> Table2Result:
    """Regenerate Table II at ``scale``.

    The harvest window spans ``sweep_hours``; workload rates are Table II's
    per-2-hour rates scaled to the window, and observed counts are
    normalised back to per-2-hour rates using the attacker's own ring
    coverage history.

    ``thinning`` < 1 emits a Poisson-thinned sample of the client traffic
    and un-thins the reported rates — statistically equivalent for every
    rate estimate (per-ID counts scale linearly) while cutting the bench's
    fetch count.  Unique-ID and resolved-onion counts are only mildly
    affected as long as ``sweep_hours/2 × thinning ≥ 1`` (every tail
    service still emits its per-2h volume at least once).

    With ``store`` the whole experiment is one checkpoint: a warm run
    replays the ranking and report without rebuilding the network (the
    intermediate ``resolution``/``workload_report`` stay ``None``).
    """
    if not 0 < thinning <= 1:
        raise ConfigError(f"thinning must be in (0, 1]: {thinning}")
    if population is None:
        population = generate_population(seed=seed, scale=scale)
    else:
        scale = population.spec.total_onions / 39_824

    def compute() -> Table2Result:
        return _compute_table2(
            seed=seed,
            scale=scale,
            population=population,
            relay_count=relay_count,
            sweep_hours=sweep_hours,
            rotation_interval_hours=rotation_interval_hours,
            relays_per_ip=relays_per_ip,
            thinning=thinning,
            workers=workers,
        )

    if store is None:
        return compute()
    stage = Stage(
        name="table2",
        modules=_TABLE2_MODULES,
        encode=_table2_to_payload,
        decode=_table2_from_payload,
    )
    config = {
        "seed": seed,
        "population": {"seed": population.seed, "spec": asdict(population.spec)},
        "relay_count": relay_count,
        "sweep_hours": sweep_hours,
        "rotation_interval_hours": rotation_interval_hours,
        "relays_per_ip": relays_per_ip,
        "thinning": thinning,
        "workers": resolve_workers(workers),
    }
    return store.run(stage, config, compute)


def _compute_table2(
    seed: int,
    scale: float,
    population: GeneratedPopulation,
    relay_count: Optional[int],
    sweep_hours: int,
    rotation_interval_hours: int,
    relays_per_ip: int,
    thinning: float,
    workers: Optional[int],
) -> Table2Result:
    spec = population.spec
    if relay_count is None:
        relay_count = max(60, round(1_450 * scale))

    # Attack starts ripening ~38 h before the harvest date so the sweep
    # covers 4 Feb 2013, the paper's collection date.
    harvest = population.harvest_date
    attack_start = harvest - (26 + 2) * HOUR
    network, pool = _build_honest_network(seed, relay_count, attack_start)

    publisher = PublishScheduler(network, population.services)
    publisher.publish_initial(attack_start)

    config = TrawlConfig(
        ip_count=58,
        relays_per_ip=relays_per_ip,
        ripen_hours=26,
        sweep_hours=sweep_hours,
        rotation_interval_hours=rotation_interval_hours,
    )
    attack = TrawlAttack(network, config, derive_rng(seed, "table2", "attack"), pool)

    # Client traffic: Table II rates are per 2 hours; emit proportionally
    # over the whole sweep, interleaved with the rotation.
    window_start = attack_start + config.ripen_hours * HOUR
    window_end = window_start + sweep_hours * HOUR
    workload_spec = population.build_workload_spec(window_start, window_end)
    rate_multiplier = sweep_hours / 2
    emission = rate_multiplier * thinning
    workload_spec.named_rates = {
        onion: round(rate * emission)
        for onion, rate in workload_spec.named_rates.items()
    }
    workload_spec.tail_total = round(workload_spec.tail_total * emission)
    workload_spec.ghost_total = round(workload_spec.ghost_total * emission)
    workload = PopularityWorkload(
        workload_spec, derive_rng(seed, "table2", "workload"), GeoIP(seed=seed)
    )
    planned = workload.plan_slices(sweep_hours)
    workload_report = WorkloadReport()

    def hour_hook(sweep_hour: int, now: Timestamp) -> None:
        workload.run_slice(
            network, planned, sweep_hour, now - HOUR, now, report=workload_report
        )

    harvest_result = attack.run(population.services, publisher, hour_hook=hour_hook)

    # Resolution over the paper's window: 28 Jan – 8 Feb 2013.
    resolver = DescriptorResolver(
        sorted(harvest_result.onions),
        parse_date("2013-01-28"),
        parse_date("2013-02-08"),
        workers=workers,
    )
    # Rate normalisation, batched: one observation pass over the ring
    # history covers every resolvable ID (the only ones the resolver's
    # normalizer is consulted for), each with its own validity window —
    # replacing a scalar per-ID snapshot walk with one vectorised ring
    # bisect per snapshot.  Rates are bit-identical to the scalar
    # ``normalized_rate`` calls this replaced.
    resolvable = [
        (desc_id, found, missing, resolver.validity_of(desc_id))
        for desc_id, (found, missing) in harvest_result.request_counts.items()
        if resolver.lookup(desc_id) is not None
    ]
    rate_by_id = {
        request[0]: rate
        for request, rate in zip(
            resolvable, attack.ring_history.normalized_rates_batch(resolvable)
        )
    }

    def unthinned_rate(desc_id, found, missing, validity=None):
        return rate_by_id[desc_id] / thinning

    resolution = resolver.resolve_normalized(
        harvest_result.request_counts, unthinned_rate
    )
    shape_labels = _classify_resolved_shapes(
        network, attack, resolution, window_start, window_end
    )

    # Labelling: out-of-band names first, then the Goldnet forensics.
    labeler = ServiceLabeler()
    for label, display in PUBLICLY_KNOWN_LABELS.items():
        onion = population.named_onions.get(label)
        if onion is not None:
            labeler.add_known(onion, display)
    for label, onion in population.named_onions.items():
        if label.startswith("skynet-cc"):
            labeler.add_known(onion, SKYNET_LABEL)
        elif label.startswith("adult-pop"):
            labeler.add_known(onion, ADULT_LABEL)
    ranking = PopularityRanking.from_counts(
        resolution.requests_per_onion,
        labeler.labels_for(resolution.requests_per_onion),
    )
    transport = TorTransport(
        population.registry,
        derive_rng(seed, "table2", "probe"),
        descriptor_available=population.descriptor_available,
    )
    goldnet_labels, findings = investigate_goldnet(
        transport, ranking, when=window_end + HOUR
    )
    ranking.relabel(goldnet_labels)

    result = Table2Result(
        ranking=ranking,
        resolution=resolution,
        workload_report=workload_report,
        total_requests_observed=harvest_result.total_requests,
        unique_ids_observed=harvest_result.unique_requested_ids,
        goldnet_findings=findings,
        label_to_onion=dict(population.named_onions),
        shape_labels=shape_labels,
    )

    # Normalised traffic total: what the attacker would have logged with
    # uninterrupted coverage over the whole sweep, i.e. the analogue of the
    # paper's 1,031,176 logged requests (the raw observation is scaled by
    # each ID's realised coverage, which depends on the rotation schedule).
    normalized_total = 0.0
    for rate in attack.ring_history.normalized_rates_batch(
        [
            (desc_id, found, missing, None)
            for desc_id, (found, missing) in harvest_result.request_counts.items()
        ]
    ):
        normalized_total += rate
    normalized_total *= rate_multiplier / thinning

    report = ExperimentReport(experiment="table2-popularity")
    volume_scale = scale * rate_multiplier
    report.add(
        "total requests (coverage-normalized)",
        PAPER_TOTAL_REQUESTS * volume_scale,
        round(normalized_total),
    )
    report.add(
        "total requests observed raw",
        None,
        harvest_result.total_requests,
    )
    report.add(
        "unique descriptor IDs", PAPER_UNIQUE_IDS * scale, harvest_result.unique_requested_ids
    )
    report.add("resolved IDs", PAPER_RESOLVED_IDS * scale, resolution.resolved_ids)
    report.add(
        "resolved onion addresses",
        PAPER_RESOLVED_ONIONS * scale,
        resolution.resolved_onion_count,
    )
    report.add(
        "phantom request fraction",
        PAPER_PHANTOM_FRACTION,
        round(resolution.phantom_request_fraction, 3),
    )
    report.add(
        "goldnet fronts found",
        round(PAPER_GOLDNET_COUNT * scale) if scale != 1.0 else PAPER_GOLDNET_COUNT,
        len(findings),
    )
    report.add(
        "goldnet physical servers",
        PAPER_GOLDNET_SERVERS,
        len({finding.server_group for finding in findings}),
    )
    for label, paper_rank in PAPER_RANKS.items():
        measured = result.rank_of_label(label)
        report.add(f"rank of {label}", paper_rank, measured if measured else -1)
    for label, paper_rate in PAPER_RATES.items():
        onion = population.named_onions.get(label)
        row = ranking.row_for(onion) if onion else None
        report.add(
            f"rate of {label} (/2h)",
            round(paper_rate * scale),
            row.requests if row else 0,
        )
    report.note(
        "counts are per-directory observations normalised to 2-hour windows "
        "via the attacker's ring-coverage history"
    )
    result.report = report
    return result
