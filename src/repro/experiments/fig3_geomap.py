"""Fig 3 — geographic map of a popular hidden service's clients (Section VI).

The attacker (a) positions relays to be responsible HSDirs for the target
(a Goldnet front), (b) runs high-bandwidth guard relays, and (c) wraps
descriptor responses in the traffic signature.  Every client whose entry
guard happens to be the attacker's is deanonymised; resolving the captured
IPs through GeoIP yields the country distribution Fig 3 plots as a map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.report import ExperimentReport
from repro.analysis.stats import l1_distance
from repro.client.client import TorClient
from repro.crypto.descriptor_id import REPLICAS, descriptor_id
from repro.crypto.keys import KeyPair
from repro.crypto.ring import RING_SIZE
from repro.hs.service import HiddenService
from repro.net.geoip import GeoIP
from repro.relay.flags import RelayFlags
from repro.relay.relay import Relay
from repro.sim.clock import DAY, HOUR, Timestamp, parse_date
from repro.sim.rng import derive_rng
from repro.tracking import ClientDeanonAttack, ClientGeoMap, deploy_attacker_guards
from repro.worldbuild import HonestNetworkSpec, build_honest_network


@dataclass
class Fig3Result:
    """The regenerated Fig 3 and attack effectiveness stats."""

    geomap: ClientGeoMap
    captures: int
    unique_clients: int
    signatures_injected: int
    capture_rate: float
    attacker_guard_share: float
    true_country_shares: Dict[str, float] = field(default_factory=dict)
    report: ExperimentReport = field(default_factory=lambda: ExperimentReport("fig3"))

    def format_map(self) -> str:
        """Text rendering of Fig 3."""
        return self.geomap.format_map()


def run_fig3(
    seed: int = 0,
    honest_relays: int = 400,
    attacker_guards: int = 12,
    attacker_guard_bandwidth: int = 9000,
    client_count: int = 1500,
    observation_days: int = 2,
    fetches_per_client_per_day: float = 3.0,
) -> Fig3Result:
    """Run the opportunistic client-deanonymisation attack end to end."""
    start = parse_date("2013-02-10")
    network, pool = build_honest_network(
        seed,
        start,
        HonestNetworkSpec(relay_count=honest_relays, min_age_days=10),
        rng_label="fig3-net",
    )

    # The target: a Goldnet-like service the attacker wants to map.
    target = HiddenService(
        keypair=KeyPair.generate(derive_rng(seed, "fig3", "target")), online_from=0
    )

    # Attacker guards, backdated so they carry the Guard flag already.
    guard_rng = derive_rng(seed, "fig3", "guards")
    guards = deploy_attacker_guards(
        network, attacker_guards, guard_rng,
        bandwidth=attacker_guard_bandwidth, address_pool=pool,
    )

    # Attacker HSDirs: one relay ground per replica per observed day (the
    # descriptor ID is predictable, so the attacker positions ahead of
    # time).  Relays are backdated 30 h so the HSDir flag is live.
    hsdir_rng = derive_rng(seed, "fig3", "hsdirs")
    attacker_hsdirs: List[Relay] = []
    target_ids = set()
    for day in range(observation_days + 1):
        when = start + day * DAY
        for replica in range(REPLICAS):
            desc_id = descriptor_id(target.onion, when, replica)
            target_ids.add(desc_id)
            point = int.from_bytes(desc_id, "big")
            max_distance = RING_SIZE // max(1, honest_relays) // 50
            key = KeyPair.forge_near(hsdir_rng, point, max_distance)
            relay = Relay(
                nickname=f"dirgrab{day}{replica}",
                ip=pool.allocate(),
                or_port=9001,
                keypair=key,
                bandwidth=400,
                started_at=start - 30 * HOUR,
            )
            network.add_relay(relay)
            attacker_hsdirs.append(relay)

    network.rebuild_consensus(start)
    attack = ClientDeanonAttack(
        hsdir_relay_ids={relay.relay_id for relay in attacker_hsdirs},
        guard_fingerprints=frozenset(relay.fingerprint for relay in guards),
        target_descriptor_ids=target_ids,
        rng=derive_rng(seed, "fig3", "attack"),
    )
    attack.attach(network)

    # Attacker's share of guard bandwidth (determines capture probability).
    guard_entries = network.consensus.with_flag(RelayFlags.GUARD)
    total_guard_bw = sum(entry.bandwidth for entry in guard_entries)
    attacker_bw = sum(
        entry.bandwidth
        for entry in guard_entries
        if entry.fingerprint in attack.guard_fingerprints
    )
    guard_share = attacker_bw / total_guard_bw if total_guard_bw else 0.0

    # The client population, distributed per the GeoIP country weights.
    geoip = GeoIP(seed=seed)
    client_rng = derive_rng(seed, "fig3", "clients")
    clients: List[TorClient] = []
    true_counts: Dict[str, int] = {}
    for _ in range(client_count):
        country = geoip.random_country(client_rng)
        true_counts[country] = true_counts.get(country, 0) + 1
        client = TorClient(
            ip=geoip.random_ip(client_rng, country),
            rng=derive_rng(seed, "fig3", "client", str(len(clients))),
            country=country,
        )
        client.refresh_guards(network)
        clients.append(client)

    # Observation: the target republishes daily; clients fetch it.
    for day in range(observation_days):
        day_start: Timestamp = start + day * DAY
        network.rebuild_consensus(day_start)
        network.publish_service(target, day_start)
        # Watch both periods touching this day (the service's rotation
        # boundary sits at an identity-dependent offset inside the day).
        attack.retarget(
            {
                descriptor_id(target.onion, when, replica)
                for when in (day_start, day_start + DAY)
                for replica in range(REPLICAS)
            }
        )
        for client in clients:
            fetches = int(fetches_per_client_per_day)
            if client_rng.random() < fetches_per_client_per_day - fetches:
                fetches += 1
            for _ in range(fetches):
                when = day_start + client_rng.randrange(DAY)
                client.fetch_onion(network, target.onion, now=when)

    geomap = ClientGeoMap(geoip=geoip)
    geomap.add_ips(capture.client_ip for capture in attack.captures)

    true_total = sum(true_counts.values())
    true_shares = {c: n / true_total for c, n in true_counts.items()}

    result = Fig3Result(
        geomap=geomap,
        captures=len(attack.captures),
        unique_clients=len(attack.unique_client_ips),
        signatures_injected=attack.signatures_injected,
        capture_rate=attack.capture_rate(),
        attacker_guard_share=guard_share,
        true_country_shares=true_shares,
    )

    report = ExperimentReport(experiment="fig3-client-geomap")
    report.add("attacker guard share", None, round(guard_share, 4))
    report.add("signatures injected", None, attack.signatures_injected)
    report.add("clients captured (unique)", None, result.unique_clients)
    report.add("capture rate", round(guard_share, 3), round(result.capture_rate, 3))
    report.add("countries observed", None, geomap.country_count)
    report.add(
        "geo distribution L1 error",
        None,  # sampling error shrinks with capture count; see tests
        round(l1_distance(true_shares, geomap.shares()), 3),
    )
    report.add("false positives at guard", 0, attack.false_positives)
    report.note(
        "capture rate should approximate the attacker's guard-bandwidth share; "
        "the captured-country distribution should match the true client mix"
    )
    result.report = report
    return result
