"""Language identification (the paper used Langdetect).

A character-n-gram multinomial naive Bayes over the 17 languages of
Section IV.  Like Langdetect, it reads orthography: Cyrillic n-grams vote
Russian, kana vote Japanese, "ß"/"ü" vote German, and so on; for languages
sharing a script the affix n-grams discriminate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.classify.tokenize import char_ngrams
from repro.errors import ClassificationError
from repro.parallel import pmap


class LanguageDetector:
    """Character-n-gram language classifier."""

    def __init__(
        self,
        model: Optional[MultinomialNaiveBayes] = None,
        orders: Tuple[int, ...] = (1, 2, 3),
    ) -> None:
        self._model = model if model is not None else MultinomialNaiveBayes()
        self._orders = orders

    @property
    def languages(self) -> List[str]:
        """Language codes the detector knows."""
        return self._model.classes

    def fit(self, texts: List[str], labels: List[str]) -> "LanguageDetector":
        """Train on raw texts with language-code labels."""
        documents = [char_ngrams(text, self._orders) for text in texts]
        self._model.fit(documents, labels)
        return self

    def detect(self, text: str) -> str:
        """Language code of ``text``."""
        if not text.strip():
            raise ClassificationError("cannot detect language of empty text")
        return self._model.predict(char_ngrams(text, self._orders))

    def detect_many(
        self, texts: Sequence[str], workers: Optional[int] = None
    ) -> List[str]:
        """Language codes for many texts, in input order.

        Detection is pure per text, and the detector pickles (the model is
        plain dict state), so :func:`repro.parallel.pmap` can genuinely
        fan the scoring out across processes at ``workers>1`` while the
        result stays byte-identical to the serial loop.
        """
        return pmap(self.detect, texts, workers=workers)

    def detect_with_confidence(self, text: str) -> Tuple[str, float]:
        """(language code, posterior probability)."""
        if not text.strip():
            raise ClassificationError("cannot detect language of empty text")
        return self._model.predict_with_confidence(char_ngrams(text, self._orders))
