"""Classifier evaluation: confusion matrices, accuracy, per-class scores.

The paper leaned on off-the-shelf classifiers (Langdetect, Mallet,
uClassify) without reporting their error rates; a reproduction should
measure its own.  These utilities score any ``predict(text) -> label``
callable against labelled samples and render the confusion structure, so
EXPERIMENTS.md-style reports can state classification quality instead of
assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Tuple

from repro.errors import ClassificationError


@dataclass
class EvaluationResult:
    """Scores for one classifier over one labelled sample set."""

    # confusion[true_label][predicted_label] = count
    confusion: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(self, truth: str, predicted: str) -> None:
        """Account one prediction."""
        self.confusion.setdefault(truth, {}).setdefault(predicted, 0)
        self.confusion[truth][predicted] += 1

    @property
    def total(self) -> int:
        """Number of scored samples."""
        return sum(sum(row.values()) for row in self.confusion.values())

    @property
    def correct(self) -> int:
        """Samples predicted exactly right."""
        return sum(
            row.get(truth, 0) for truth, row in self.confusion.items()
        )

    @property
    def accuracy(self) -> float:
        """Overall accuracy."""
        return self.correct / self.total if self.total else 0.0

    def labels(self) -> List[str]:
        """Every label seen as truth or prediction, sorted."""
        seen = set(self.confusion)
        for row in self.confusion.values():
            seen.update(row)
        return sorted(seen)

    def recall(self, label: str) -> float:
        """Of the samples truly ``label``, the fraction predicted so."""
        row = self.confusion.get(label, {})
        support = sum(row.values())
        return row.get(label, 0) / support if support else 0.0

    def precision(self, label: str) -> float:
        """Of the samples predicted ``label``, the fraction truly so."""
        predicted = sum(
            row.get(label, 0) for row in self.confusion.values()
        )
        hit = self.confusion.get(label, {}).get(label, 0)
        return hit / predicted if predicted else 0.0

    def worst_confusions(self, limit: int = 5) -> List[Tuple[str, str, int]]:
        """The most frequent (truth, predicted) error pairs."""
        errors = [
            (truth, predicted, count)
            for truth, row in self.confusion.items()
            for predicted, count in row.items()
            if predicted != truth
        ]
        errors.sort(key=lambda e: (-e[2], e[0], e[1]))
        return errors[:limit]

    def format_summary(self) -> str:
        """Human-readable accuracy + worst-confusion summary."""
        lines = [
            f"accuracy: {self.correct}/{self.total} ({self.accuracy:.1%})"
        ]
        for truth, predicted, count in self.worst_confusions():
            lines.append(f"  {truth} -> {predicted}: {count}")
        return "\n".join(lines)


def evaluate(
    predict: Callable[[str], str],
    samples: Iterable[Tuple[str, str]],
) -> EvaluationResult:
    """Score ``predict`` over (text, true_label) samples."""
    result = EvaluationResult()
    scored = 0
    for text, truth in samples:
        result.record(truth, predict(text))
        scored += 1
    if not scored:
        raise ClassificationError("no samples to evaluate")
    return result


def held_out_language_samples(
    per_language: int = 10, words: int = 120, seed: int = 0xE7A1
) -> List[Tuple[str, str]]:
    """Fresh labelled pages for every language (disjoint from training:
    the training corpus uses its own fixed internal seed)."""
    from repro.population.content import synth_language_page
    from repro.population.corpus import LANGUAGES
    from repro.sim.rng import derive_rng

    rng = derive_rng(seed, "eval", "language")
    return [
        (synth_language_page(language, rng, word_count=words), language)
        for language in LANGUAGES
        for _ in range(per_language)
    ]


def held_out_topic_samples(
    per_topic: int = 10, words: int = 150, seed: int = 0xE7A2
) -> List[Tuple[str, str]]:
    """Fresh labelled pages for every topic."""
    from repro.population.content import synth_topic_page
    from repro.population.corpus import TOPICS
    from repro.sim.rng import derive_rng

    rng = derive_rng(seed, "eval", "topics")
    return [
        (synth_topic_page(topic, rng, word_count=words), topic)
        for topic in TOPICS
        for _ in range(per_topic)
    ]
