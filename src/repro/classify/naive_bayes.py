"""Multinomial naive Bayes, from scratch.

The shared core of both classifiers.  Log-space scoring with Laplace
smoothing; out-of-vocabulary tokens fall back to the smoothed unseen-token
probability so exotic inputs degrade gracefully instead of crashing.
"""

from __future__ import annotations

import math
import operator
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ClassificationError


@dataclass
class MultinomialNaiveBayes:
    """A multinomial naive Bayes classifier over token sequences."""

    smoothing: float = 1.0
    _classes: List[str] = field(default_factory=list)
    _log_prior: Dict[str, float] = field(default_factory=dict)
    _log_likelihood: Dict[str, Dict[str, float]] = field(default_factory=dict)
    _log_unseen: Dict[str, float] = field(default_factory=dict)
    _vocabulary: set = field(default_factory=set)
    #: token -> per-class log likelihoods in ``_classes`` order.  Scoring a
    #: document touches every (token, class) pair; one dict probe per token
    #: instead of one per pair is what keeps the classify stage linear in
    #: practice.  The row values are exactly the ``_log_likelihood`` /
    #: ``_log_unseen`` lookups the per-pair loop would have made, so scores
    #: are bit-identical.
    _token_rows: Dict[str, Tuple[float, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.smoothing <= 0:
            raise ClassificationError(f"smoothing must be positive: {self.smoothing}")

    @property
    def classes(self) -> List[str]:
        """Known class labels (sorted)."""
        return list(self._classes)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return bool(self._classes)

    @property
    def vocabulary_size(self) -> int:
        """Distinct training tokens."""
        return len(self._vocabulary)

    def fit(
        self,
        documents: Sequence[Iterable[str]],
        labels: Sequence[str],
    ) -> "MultinomialNaiveBayes":
        """Train on ``documents`` (token iterables) with parallel ``labels``."""
        if len(documents) != len(labels):
            raise ClassificationError(
                f"{len(documents)} documents but {len(labels)} labels"
            )
        if not documents:
            raise ClassificationError("cannot fit on an empty corpus")
        class_doc_counts: Counter = Counter(labels)
        token_counts: Dict[str, Counter] = {label: Counter() for label in class_doc_counts}
        for tokens, label in zip(documents, labels):
            counter = token_counts[label]
            for token in tokens:
                counter[token] += 1
                self._vocabulary.add(token)
        if not self._vocabulary:
            raise ClassificationError("training corpus contains no tokens")

        self._classes = sorted(class_doc_counts)
        total_docs = len(documents)
        vocab = len(self._vocabulary)
        for label in self._classes:
            self._log_prior[label] = math.log(class_doc_counts[label] / total_docs)
            counts = token_counts[label]
            denominator = sum(counts.values()) + self.smoothing * vocab
            self._log_likelihood[label] = {
                token: math.log((count + self.smoothing) / denominator)
                for token, count in counts.items()
            }
            self._log_unseen[label] = math.log(self.smoothing / denominator)
        self._token_rows = {
            token: tuple(
                self._log_likelihood[label].get(token, self._log_unseen[label])
                for label in self._classes
            )
            for token in sorted(self._vocabulary)
        }
        return self

    def log_scores(self, tokens: Iterable[str]) -> Dict[str, float]:
        """Unnormalised log posterior per class."""
        if not self.is_fitted:
            raise ClassificationError("classifier is not fitted")
        rows = self._token_rows
        # OOV tokens shift every class equally — drop them up front.
        matched = [row for row in map(rows.get, tokens) if row is not None]
        # sum() adds left to right from the prior, one token at a time —
        # the same per-class addition order as the per-pair loop, so the
        # floats come out bit-identical; map/itemgetter keep the inner
        # loop at C speed.
        return {
            label: sum(map(operator.itemgetter(column), matched), self._log_prior[label])
            for column, label in enumerate(self._classes)
        }

    def predict(self, tokens: Iterable[str]) -> str:
        """Most probable class (ties broken alphabetically for determinism)."""
        scores = self.log_scores(list(tokens))
        return min(scores, key=lambda label: (-scores[label], label))

    def predict_with_confidence(self, tokens: Iterable[str]) -> Tuple[str, float]:
        """(label, posterior probability) via a stable soft-max."""
        scores = self.log_scores(list(tokens))
        best = min(scores, key=lambda label: (-scores[label], label))
        peak = scores[best]
        total = sum(math.exp(score - peak) for score in scores.values())
        return best, 1.0 / total
