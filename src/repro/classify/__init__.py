"""Content classification: language identification and topic assignment.

The paper used Langdetect (character-n-gram naive Bayes) for languages and
Mallet / uClassify for topics.  Both are reimplemented from scratch on a
shared multinomial naive Bayes core and trained on the built-in synthetic
corpus, so the whole pipeline runs offline.
"""

from repro.classify.tokenize import word_tokens, char_ngrams
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.classify.language import LanguageDetector
from repro.classify.topics import TopicClassifier, is_torhost_default
from repro.classify.training import (
    build_language_detector,
    build_topic_classifier,
)

__all__ = [
    "word_tokens",
    "char_ngrams",
    "MultinomialNaiveBayes",
    "LanguageDetector",
    "TopicClassifier",
    "is_torhost_default",
    "build_language_detector",
    "build_topic_classifier",
]
