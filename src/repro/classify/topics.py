"""Topic classification (the paper used Mallet and uClassify).

A word-level multinomial naive Bayes over the 18 categories of Fig 2.  Only
English pages are topic-classified, as in the paper; the TorHost default
page is detected separately and excluded from the topic distribution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.classify.tokenize import word_tokens
from repro.errors import ClassificationError
from repro.parallel import pmap
from repro.population.corpus import TORHOST_DEFAULT_PAGE


def is_torhost_default(text: str) -> bool:
    """Whether ``text`` is the TorHost free-hosting default page.

    The paper found 805 English destinations "showed the default page of the
    Torhost.onion free anonymous hosting service"; identification is by
    content, not by address.
    """
    probe = " ".join(text.split()).lower()
    reference = " ".join(TORHOST_DEFAULT_PAGE.split()).lower()
    return probe == reference or (
        "torhost" in probe and "default placeholder" in probe
    )


class TopicClassifier:
    """Word-level topic classifier over the Fig 2 categories."""

    def __init__(self, model: Optional[MultinomialNaiveBayes] = None) -> None:
        self._model = model if model is not None else MultinomialNaiveBayes()

    @property
    def topics(self) -> List[str]:
        """Topic labels the classifier knows."""
        return self._model.classes

    def fit(self, texts: List[str], labels: List[str]) -> "TopicClassifier":
        """Train on raw texts with topic labels."""
        documents = [word_tokens(text) for text in texts]
        self._model.fit(documents, labels)
        return self

    def classify(self, text: str) -> str:
        """Topic of ``text``."""
        if not text.strip():
            raise ClassificationError("cannot classify empty text")
        return self._model.predict(word_tokens(text))

    def classify_many(
        self, texts: Sequence[str], workers: Optional[int] = None
    ) -> List[str]:
        """Topics for many texts, in input order (see
        :meth:`LanguageDetector.detect_many` for the parallel contract)."""
        return pmap(self.classify, texts, workers=workers)

    def classify_with_confidence(self, text: str) -> Tuple[str, float]:
        """(topic, posterior probability)."""
        if not text.strip():
            raise ClassificationError("cannot classify empty text")
        return self._model.predict_with_confidence(word_tokens(text))
