"""Tokenizers for the two classification tasks."""

from __future__ import annotations

from typing import Iterable, List


def word_tokens(text: str) -> List[str]:
    """Lowercased word tokens, punctuation-stripped.

    >>> word_tokens("Hello, Onion World!")
    ['hello', 'onion', 'world']
    """
    tokens: List[str] = []
    for raw in text.lower().split():
        token = "".join(ch for ch in raw if ch.isalnum() or ch in "'-")
        token = token.strip("'-")
        if token:
            tokens.append(token)
    return tokens


def char_ngrams(text: str, orders: Iterable[int] = (1, 2, 3)) -> List[str]:
    """Character n-grams with word-boundary padding (Langdetect-style).

    Boundary underscores make affixes distinctive ("_th", "ng_"), which is
    where much of a language's character signal lives.

    >>> char_ngrams("ab", orders=(2,))
    ['_a', 'ab', 'b_']
    """
    grams: List[str] = []
    for raw in text.lower().split():
        padded = f"_{raw}_"
        for order in orders:
            if order < 1:
                continue
            if len(padded) < order:
                continue
            for i in range(len(padded) - order + 1):
                gram = padded[i : i + order]
                if gram == "_" * order:
                    continue
                grams.append(gram)
    return grams
