"""Built-in training corpora.

The paper's tools shipped pre-trained (Langdetect's language profiles,
uClassify's hosted models).  The offline equivalent: synthesise labelled
training documents from the corpus vocabularies with a *fixed internal
seed*, decoupled from every experiment seed — the classifiers are the same
pre-trained artifact for all experiments, never fitted on the pages they
will classify.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.classify.language import LanguageDetector
from repro.classify.topics import TopicClassifier
from repro.population.content import synth_language_page, synth_topic_page
from repro.population.corpus import LANGUAGES, TOPICS
from repro.sim.rng import derive_rng

_TRAINING_SEED = 0xC1A551F1  # fixed: the shipped, pre-trained model


def language_training_corpus(
    docs_per_language: int = 40, words_per_doc: int = 120
) -> Tuple[List[str], List[str]]:
    """(texts, labels) covering all 17 languages."""
    rng = derive_rng(_TRAINING_SEED, "training", "language")
    texts: List[str] = []
    labels: List[str] = []
    for language in LANGUAGES:
        for _ in range(docs_per_language):
            texts.append(
                synth_language_page(language, rng, word_count=words_per_doc)
            )
            labels.append(language)
    return texts, labels


def topic_training_corpus(
    docs_per_topic: int = 60, words_per_doc: int = 150
) -> Tuple[List[str], List[str]]:
    """(texts, labels) covering all 18 topics."""
    rng = derive_rng(_TRAINING_SEED, "training", "topics")
    texts: List[str] = []
    labels: List[str] = []
    for topic in TOPICS:
        for _ in range(docs_per_topic):
            texts.append(synth_topic_page(topic, rng, word_count=words_per_doc))
            labels.append(topic)
    return texts, labels


def build_language_detector() -> LanguageDetector:
    """The shipped language model (deterministic)."""
    texts, labels = language_training_corpus()
    return LanguageDetector().fit(texts, labels)


def build_topic_classifier() -> TopicClassifier:
    """The shipped topic model (deterministic)."""
    texts, labels = topic_training_corpus()
    return TopicClassifier().fit(texts, labels)
