"""Service labelling for the ranking (Table II's "Desc" column).

Two label sources, mirroring the paper's methodology:

* **Out-of-band knowledge** — addresses that were publicly known in 2013
  (Silk Road, DuckDuckGo, Freedom Hosting, the Rapid7-published Skynet
  list, …).  :class:`ServiceLabeler` carries such a map; in experiments it
  is built from the population's public labels — the equivalent of reading
  the Hidden Wiki.
* **Active investigation** — the Goldnet discovery.  The top services were
  unknown to every search engine, exposed only port 80, answered 503, and
  *did* serve ``/server-status``; identical Apache uptimes grouped the nine
  fronts onto two machines.  :func:`investigate_goldnet` reproduces that
  forensic chain against the live simulation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.onion import OnionAddress
from repro.net.transport import TorTransport
from repro.popularity.ranking import PopularityRanking
from repro.sim.clock import Timestamp

_UPTIME_RE = re.compile(r"Server uptime:\s*(\d+)\s*seconds")
_RATE_RE = re.compile(r"([\d.]+)\s*requests/sec")
_TRAFFIC_RE = re.compile(r"([\d.]+)\s*kB/second")


@dataclass
class GoldnetFinding:
    """Forensic evidence for one suspected botnet front."""

    onion: OnionAddress
    uptime: int
    requests_per_sec: float
    kbytes_per_sec: float
    server_group: int = -1  # filled in after uptime grouping


@dataclass
class ServiceLabeler:
    """Combines known-address labels with investigation results."""

    known: Dict[OnionAddress, str] = field(default_factory=dict)

    def add_known(self, onion: OnionAddress, label: str) -> None:
        """Register an out-of-band-identified address."""
        self.known[onion] = label

    def add_known_many(self, labels: Dict[OnionAddress, str]) -> None:
        """Register many known addresses."""
        self.known.update(labels)

    def labels_for(self, onions: Iterable[OnionAddress]) -> Dict[OnionAddress, str]:
        """Labels for the subset of ``onions`` we can name."""
        return {onion: self.known[onion] for onion in onions if onion in self.known}


def _probe_server_status(
    transport: TorTransport, onion: OnionAddress, when: Timestamp
) -> Optional[GoldnetFinding]:
    """Check one onion for the Goldnet signature; None if it doesn't match."""
    front = transport.connect(onion, 80, when)
    if not front.ok or front.endpoint is None:
        return None
    application = front.endpoint.application
    if application is None or not hasattr(application, "handle_request"):
        return None
    root = application.handle_request("/", when)
    if root.status != 503:
        return None
    status_page = application.handle_request("/server-status", when)
    if status_page.status != 200:
        return None
    uptime_m = _UPTIME_RE.search(status_page.body)
    rate_m = _RATE_RE.search(status_page.body)
    traffic_m = _TRAFFIC_RE.search(status_page.body)
    if not (uptime_m and rate_m and traffic_m):
        return None
    return GoldnetFinding(
        onion=onion,
        uptime=int(uptime_m.group(1)),
        requests_per_sec=float(rate_m.group(1)),
        kbytes_per_sec=float(traffic_m.group(1)),
    )


def investigate_goldnet(
    transport: TorTransport,
    ranking: PopularityRanking,
    when: Timestamp,
    candidates: int = 60,
    uptime_tolerance: int = 5,
) -> Tuple[Dict[OnionAddress, str], List[GoldnetFinding]]:
    """Reproduce the Section V forensic chain over the top of the ranking.

    Probes the ``candidates`` most popular *unlabelled* services for the
    503 + server-status signature, then groups hits by Apache uptime
    (within ``uptime_tolerance`` seconds, as the probes happen at one
    sitting).  Returns (labels, findings).
    """
    findings: List[GoldnetFinding] = []
    for row in ranking.top(candidates):
        if row.description != "<n/a>":
            continue
        finding = _probe_server_status(transport, row.onion, when)
        if finding is not None:
            findings.append(finding)

    # Group by uptime: identical uptimes → same physical machine.
    findings.sort(key=lambda f: f.uptime)
    group = -1
    previous_uptime: Optional[int] = None
    for finding in findings:
        if (
            previous_uptime is None
            or abs(finding.uptime - previous_uptime) > uptime_tolerance
        ):
            group += 1
        finding.server_group = group
        previous_uptime = finding.uptime

    labels = {finding.onion: "Goldnet" for finding in findings}
    return labels, findings
