"""Popularity ranking (Table II)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.onion import OnionAddress


@dataclass(frozen=True)
class RankedService:
    """One Table II row."""

    rank: int
    requests: int
    onion: OnionAddress
    description: str = "<n/a>"


@dataclass
class PopularityRanking:
    """Sorted popularity table with label annotations."""

    rows: List[RankedService] = field(default_factory=list)
    _rank_by_onion: Dict[OnionAddress, int] = field(default_factory=dict)

    @classmethod
    def from_counts(
        cls,
        requests_per_onion: Dict[OnionAddress, int],
        descriptions: Optional[Dict[OnionAddress, str]] = None,
    ) -> "PopularityRanking":
        """Build the ranking; ties broken by onion for determinism."""
        descriptions = descriptions or {}
        ordered = sorted(
            requests_per_onion.items(), key=lambda item: (-item[1], item[0])
        )
        ranking = cls()
        for index, (onion, count) in enumerate(ordered, start=1):
            ranking.rows.append(
                RankedService(
                    rank=index,
                    requests=count,
                    onion=onion,
                    description=descriptions.get(onion, "<n/a>"),
                )
            )
            ranking._rank_by_onion[onion] = index
        return ranking

    def __len__(self) -> int:
        return len(self.rows)

    def top(self, n: int) -> List[RankedService]:
        """The first ``n`` rows."""
        return self.rows[:n]

    def rank_of(self, onion: OnionAddress) -> Optional[int]:
        """1-based rank of ``onion``, or None if never requested."""
        return self._rank_by_onion.get(onion)

    def row_for(self, onion: OnionAddress) -> Optional[RankedService]:
        """The row for ``onion``, if ranked."""
        rank = self._rank_by_onion.get(onion)
        return self.rows[rank - 1] if rank else None

    def rows_matching(self, description: str) -> List[RankedService]:
        """All rows whose description equals ``description``."""
        return [row for row in self.rows if row.description == description]

    def relabel(self, descriptions: Dict[OnionAddress, str]) -> None:
        """Apply (additional) label annotations in place."""
        for index, row in enumerate(self.rows):
            label = descriptions.get(row.onion)
            if label:
                self.rows[index] = RankedService(
                    rank=row.rank,
                    requests=row.requests,
                    onion=row.onion,
                    description=label,
                )

    def format_table(self, limit: int = 30) -> str:
        """Text rendering in Table II's column layout."""
        lines = [f"{'#':>4} {'RQSTS':>7}  {'Addr':<24} Desc"]
        for row in self.rows[:limit]:
            lines.append(
                f"{row.rank:>4} {row.requests:>7}  {row.onion:<24} {row.description}"
            )
        return "\n".join(lines)
