"""Popularity measurement (Section V)."""

from repro.popularity.resolver import DescriptorResolver, ResolutionResult
from repro.popularity.ranking import PopularityRanking, RankedService
from repro.popularity.labels import ServiceLabeler, investigate_goldnet

__all__ = [
    "DescriptorResolver",
    "ResolutionResult",
    "PopularityRanking",
    "RankedService",
    "ServiceLabeler",
    "investigate_goldnet",
]
