"""Request-rate time series and machine-vs-human traffic forensics.

Part of what betrayed Goldnet (Section V) was traffic *shape*: "traffic to
these servers remained constant at about 330 KBytes/sec and had about 10
client requests per second, almost exclusively POST requests".  Botnets
phone home on timers; people sleep.  This module builds per-bucket request
series from directory logs and scores their constancy, giving measurement
code a second, content-free botnet detector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.descriptor_id import DescriptorId
from repro.errors import ReproError
from repro.hsdir.directory import HSDirServer
from repro.sim.clock import HOUR, Timestamp

try:  # numpy powers the packed-array kernels; the scalar path is complete
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None


def _shape_statistics(
    length: int, total: int, sum_of_squares: int
) -> Tuple[float, float]:
    """``(coefficient of variation, Poisson floor)`` from exact int moments.

    The one arithmetic path shared by :class:`RequestTimeSeries` and the
    batched classifier: both feed it the same exact integers, so scalar and
    batch classification decisions are bit-identical, not merely close.
    Variance uses the moment form ``(n·Σc² − S²) / n²``, exact in integers
    until the single final division.
    """
    if length <= 0 or total <= 0:
        return 0.0, 0.0
    variance = (length * sum_of_squares - total * total) / (length * length)
    mean = total / length
    return math.sqrt(variance) / mean, 1.0 / math.sqrt(mean)


@dataclass
class RequestTimeSeries:
    """Request counts per fixed-width time bucket."""

    start: Timestamp
    bucket_seconds: int
    counts: List[int]

    def __post_init__(self) -> None:
        if self.bucket_seconds <= 0:
            raise ReproError(f"bucket width must be positive: {self.bucket_seconds}")

    @property
    def total(self) -> int:
        """All requests in the series."""
        return sum(self.counts)

    @property
    def mean_rate(self) -> float:
        """Mean requests per bucket."""
        return self.total / len(self.counts) if self.counts else 0.0

    def coefficient_of_variation(self) -> float:
        """σ/μ of the bucket counts — the constancy statistic.

        Timer-driven (botnet) traffic sits near the Poisson floor
        ``1/sqrt(mean)``; human traffic adds diurnal swing on top.
        Computed from exact integer moments (see :func:`_shape_statistics`)
        so the batched classifier reproduces it bit-for-bit.
        """
        counts = self.counts
        cv, _ = _shape_statistics(
            len(counts), sum(counts), sum(c * c for c in counts)
        )
        return cv

    def poisson_floor(self) -> float:
        """The CV a perfectly constant-rate (Poisson) source would show."""
        mean = self.mean_rate
        return 1.0 / math.sqrt(mean) if mean > 0 else 0.0

    def is_machine_like(self, tolerance: float = 2.0) -> bool:
        """Whether the series is consistent with a constant-rate source.

        True when the observed CV is within ``tolerance`` × the Poisson
        floor — i.e. no more bursty than pure arrival noise allows.  A
        series with no traffic at all carries no shape evidence, so it is
        neither machine- nor human-like: always False.
        """
        if self.total == 0:
            return False
        return self.coefficient_of_variation() <= tolerance * self.poisson_floor()

    def format_sparkline(self) -> str:
        """One-line bar rendering of the series."""
        if not self.counts:
            return "(empty)"
        blocks = " ▁▂▃▄▅▆▇█"
        peak = max(self.counts) or 1
        return "".join(
            blocks[min(8, round(8 * count / peak))] for count in self.counts
        )


class _PackedLog:
    """One directory's request log as columnar arrays (the timeseries kernel).

    ``times`` holds every record's timestamp as int64; ``by_id`` maps each
    distinct descriptor ID to the array of record indices that requested it.
    Packing costs one pass over the log and is cached on the server object
    (keyed on list identity *and* length — the log is append-only, so equal
    identity and length imply equal contents), after which every per-service
    series is a gather + ``bincount`` instead of a full-log Python scan.
    """

    __slots__ = ("times", "by_id")

    def __init__(self, log: Sequence) -> None:
        self.times = _np.fromiter(
            (record.time for record in log), dtype=_np.int64, count=len(log)
        )
        grouped: Dict[DescriptorId, List[int]] = {}
        for index, record in enumerate(log):
            grouped.setdefault(record.descriptor_id, []).append(index)
        self.by_id = {
            desc: _np.asarray(indices, dtype=_np.int64)
            for desc, indices in grouped.items()
        }


_PACKED_CACHE_ATTR = "_repro_timeseries_packed"


def _packed_log(server: HSDirServer) -> "_PackedLog":
    log = server.request_log
    cached = getattr(server, _PACKED_CACHE_ATTR, None)
    if cached is not None and cached[0] is log and cached[1] == len(log):
        return cached[2]
    packed = _PackedLog(log)
    setattr(server, _PACKED_CACHE_ATTR, (log, len(log), packed))
    return packed


def series_from_log_scalar(
    server: HSDirServer,
    start: Timestamp,
    end: Timestamp,
    bucket_seconds: int = HOUR,
    descriptor_ids: Optional[Iterable[DescriptorId]] = None,
) -> RequestTimeSeries:
    """Scalar reference for :func:`series_from_log` (the per-record loop).

    Kept as the byte-equivalence oracle the packed-array kernel is tested
    against; also the fallback when numpy is unavailable.
    """
    if end <= start:
        raise ReproError(f"empty window: [{start}, {end})")
    wanted = set(descriptor_ids) if descriptor_ids is not None else None
    buckets = [0] * max(1, (int(end) - int(start) + bucket_seconds - 1) // bucket_seconds)
    for record in server.request_log:
        if not start <= record.time < end:
            continue
        if wanted is not None and record.descriptor_id not in wanted:
            continue
        buckets[(record.time - int(start)) // bucket_seconds] += 1
    return RequestTimeSeries(
        start=int(start), bucket_seconds=bucket_seconds, counts=buckets
    )


def series_from_log(
    server: HSDirServer,
    start: Timestamp,
    end: Timestamp,
    bucket_seconds: int = HOUR,
    descriptor_ids: Optional[Iterable[DescriptorId]] = None,
) -> RequestTimeSeries:
    """Bucket one directory's detailed request log.

    Requires the server to have been created with ``keep_log=True``.
    ``descriptor_ids`` restricts the series to specific IDs (one service).

    Runs on the packed-array kernel when numpy is available: the log is
    packed once per server (cached), then a service's series is a gather of
    its records' timestamps and one ``bincount`` — instead of re-scanning
    the full log per service.  Counts are integers throughout, so kernel
    and scalar outputs are byte-identical.
    """
    if _np is None:
        return series_from_log_scalar(
            server, start, end, bucket_seconds, descriptor_ids
        )
    if end <= start:
        raise ReproError(f"empty window: [{start}, {end})")
    if bucket_seconds <= 0:
        raise ReproError(f"bucket width must be positive: {bucket_seconds}")
    start = int(start)
    bucket_count = max(1, (int(end) - start + bucket_seconds - 1) // bucket_seconds)
    packed = _packed_log(server)
    if descriptor_ids is None:
        times = packed.times
    else:
        # Bucket counts are additive, so the gather order across IDs cannot
        # affect the result; sorting just keeps the iteration order
        # deterministic on principle (REP005).
        chunks = [
            packed.by_id[desc]
            for desc in sorted(set(descriptor_ids))
            if desc in packed.by_id
        ]
        if chunks:
            times = packed.times[_np.concatenate(chunks)]
        else:
            times = packed.times[:0]
    in_window = times[(times >= start) & (times < int(end))]
    counts = _np.bincount((in_window - start) // bucket_seconds, minlength=bucket_count)
    return RequestTimeSeries(
        start=start,
        bucket_seconds=bucket_seconds,
        counts=[int(c) for c in counts],
    )


def merge_series_scalar(series: Sequence[RequestTimeSeries]) -> RequestTimeSeries:
    """Scalar reference for :func:`merge_series` (the nested Python loops)."""
    if not series:
        raise ReproError("nothing to merge")
    first = series[0]
    for other in series[1:]:
        if (
            other.start != first.start
            or other.bucket_seconds != first.bucket_seconds
            or len(other.counts) != len(first.counts)
        ):
            raise ReproError("series are not aligned")
    counts = [0] * len(first.counts)
    for one in series:
        for index, count in enumerate(one.counts):
            counts[index] += count
    return RequestTimeSeries(
        start=first.start, bucket_seconds=first.bucket_seconds, counts=counts
    )


def merge_series(series: Sequence[RequestTimeSeries]) -> RequestTimeSeries:
    """Sum aligned series from several directories.

    Kernelised as one column-wise integer sum over the stacked counts;
    integer addition is exact and order-free, so the merge equals
    :func:`merge_series_scalar` byte-for-byte.
    """
    if _np is None or len(series) < 2:
        return merge_series_scalar(series)
    first = series[0]
    for other in series[1:]:
        if (
            other.start != first.start
            or other.bucket_seconds != first.bucket_seconds
            or len(other.counts) != len(first.counts)
        ):
            raise ReproError("series are not aligned")
    if not first.counts:
        counts: List[int] = []
    else:
        stacked = _np.asarray([one.counts for one in series], dtype=_np.int64)
        counts = [int(c) for c in stacked.sum(axis=0)]
    return RequestTimeSeries(
        start=first.start, bucket_seconds=first.bucket_seconds, counts=counts
    )


def classify_services_by_shape_scalar(
    series_per_service: Dict[str, RequestTimeSeries],
    tolerance: float = 2.0,
    min_requests: int = 50,
) -> Dict[str, str]:
    """Scalar reference for :func:`classify_services_by_shape`."""
    labels: Dict[str, str] = {}
    for service, series in series_per_service.items():
        if series.total < min_requests:
            labels[service] = "low-volume"
        elif series.is_machine_like(tolerance):
            labels[service] = "machine"
        else:
            labels[service] = "human"
    return labels


#: Upper bound on ``n·max(c)²`` below which the batched int64 moment sums
#: cannot overflow; series beyond it take the Python-int path instead.
_MOMENT_SAFE_LIMIT = 1 << 62


def classify_services_by_shape(
    series_per_service: Dict[str, RequestTimeSeries],
    tolerance: float = 2.0,
    min_requests: int = 50,
) -> Dict[str, str]:
    """Label each service ``machine`` / ``human`` / ``low-volume``.

    The content-free counterpart of the paper's server-status forensics:
    rank candidates by traffic shape before probing them.

    Batched: equal-length series are stacked into one integer matrix whose
    row sums and sums-of-squares are computed in one pass, then every
    decision runs through the same exact-integer-moment arithmetic as
    :meth:`RequestTimeSeries.is_machine_like` — identical integers in,
    identical floats out, so labels match the scalar path bit-for-bit.
    """
    if _np is None or len(series_per_service) < 4:
        return classify_services_by_shape_scalar(
            series_per_service, tolerance, min_requests
        )

    def decide(length: int, total: int, sum_squares: int) -> str:
        if total < min_requests:
            return "low-volume"
        if total == 0:
            return "human"  # no traffic carries no shape evidence
        cv, floor = _shape_statistics(length, total, sum_squares)
        return "machine" if cv <= tolerance * floor else "human"

    labels: Dict[str, str] = {}
    by_length: Dict[int, List[str]] = {}
    for service, series in series_per_service.items():
        by_length.setdefault(len(series.counts), []).append(service)
    for length, services in by_length.items():
        peak = max(
            (abs(c) for s in services for c in series_per_service[s].counts),
            default=0,
        )
        if length == 0 or length * peak * peak >= _MOMENT_SAFE_LIMIT:
            for service in services:
                counts = series_per_service[service].counts
                labels[service] = decide(
                    len(counts), sum(counts), sum(c * c for c in counts)
                )
            continue
        matrix = _np.asarray(
            [series_per_service[s].counts for s in services], dtype=_np.int64
        )
        totals = matrix.sum(axis=1)
        squares = (matrix * matrix).sum(axis=1)
        for service, total, sum_squares in zip(
            services, totals.tolist(), squares.tolist()
        ):
            labels[service] = decide(length, int(total), int(sum_squares))
    # Re-emit in input order so the mapping iterates exactly like the
    # scalar reference's would, not grouped by series length.
    return {service: labels[service] for service in series_per_service}
