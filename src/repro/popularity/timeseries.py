"""Request-rate time series and machine-vs-human traffic forensics.

Part of what betrayed Goldnet (Section V) was traffic *shape*: "traffic to
these servers remained constant at about 330 KBytes/sec and had about 10
client requests per second, almost exclusively POST requests".  Botnets
phone home on timers; people sleep.  This module builds per-bucket request
series from directory logs and scores their constancy, giving measurement
code a second, content-free botnet detector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.crypto.descriptor_id import DescriptorId
from repro.errors import ReproError
from repro.hsdir.directory import HSDirServer
from repro.sim.clock import HOUR, Timestamp


@dataclass
class RequestTimeSeries:
    """Request counts per fixed-width time bucket."""

    start: Timestamp
    bucket_seconds: int
    counts: List[int]

    def __post_init__(self) -> None:
        if self.bucket_seconds <= 0:
            raise ReproError(f"bucket width must be positive: {self.bucket_seconds}")

    @property
    def total(self) -> int:
        """All requests in the series."""
        return sum(self.counts)

    @property
    def mean_rate(self) -> float:
        """Mean requests per bucket."""
        return self.total / len(self.counts) if self.counts else 0.0

    def coefficient_of_variation(self) -> float:
        """σ/μ of the bucket counts — the constancy statistic.

        Timer-driven (botnet) traffic sits near the Poisson floor
        ``1/sqrt(mean)``; human traffic adds diurnal swing on top.
        """
        if not self.counts:
            return 0.0
        mean = self.mean_rate
        if mean == 0:
            return 0.0
        variance = sum((c - mean) ** 2 for c in self.counts) / len(self.counts)
        return math.sqrt(variance) / mean

    def poisson_floor(self) -> float:
        """The CV a perfectly constant-rate (Poisson) source would show."""
        mean = self.mean_rate
        return 1.0 / math.sqrt(mean) if mean > 0 else 0.0

    def is_machine_like(self, tolerance: float = 2.0) -> bool:
        """Whether the series is consistent with a constant-rate source.

        True when the observed CV is within ``tolerance`` × the Poisson
        floor — i.e. no more bursty than pure arrival noise allows.  A
        series with no traffic at all carries no shape evidence, so it is
        neither machine- nor human-like: always False.
        """
        if self.total == 0:
            return False
        return self.coefficient_of_variation() <= tolerance * self.poisson_floor()

    def format_sparkline(self) -> str:
        """One-line bar rendering of the series."""
        if not self.counts:
            return "(empty)"
        blocks = " ▁▂▃▄▅▆▇█"
        peak = max(self.counts) or 1
        return "".join(
            blocks[min(8, round(8 * count / peak))] for count in self.counts
        )


def series_from_log(
    server: HSDirServer,
    start: Timestamp,
    end: Timestamp,
    bucket_seconds: int = HOUR,
    descriptor_ids: Optional[Iterable[DescriptorId]] = None,
) -> RequestTimeSeries:
    """Bucket one directory's detailed request log.

    Requires the server to have been created with ``keep_log=True``.
    ``descriptor_ids`` restricts the series to specific IDs (one service).
    """
    if end <= start:
        raise ReproError(f"empty window: [{start}, {end})")
    wanted = set(descriptor_ids) if descriptor_ids is not None else None
    buckets = [0] * max(1, (int(end) - int(start) + bucket_seconds - 1) // bucket_seconds)
    for record in server.request_log:
        if not start <= record.time < end:
            continue
        if wanted is not None and record.descriptor_id not in wanted:
            continue
        buckets[(record.time - int(start)) // bucket_seconds] += 1
    return RequestTimeSeries(
        start=int(start), bucket_seconds=bucket_seconds, counts=buckets
    )


def merge_series(series: Sequence[RequestTimeSeries]) -> RequestTimeSeries:
    """Sum aligned series from several directories."""
    if not series:
        raise ReproError("nothing to merge")
    first = series[0]
    for other in series[1:]:
        if (
            other.start != first.start
            or other.bucket_seconds != first.bucket_seconds
            or len(other.counts) != len(first.counts)
        ):
            raise ReproError("series are not aligned")
    counts = [0] * len(first.counts)
    for one in series:
        for index, count in enumerate(one.counts):
            counts[index] += count
    return RequestTimeSeries(
        start=first.start, bucket_seconds=first.bucket_seconds, counts=counts
    )


def classify_services_by_shape(
    series_per_service: Dict[str, RequestTimeSeries],
    tolerance: float = 2.0,
    min_requests: int = 50,
) -> Dict[str, str]:
    """Label each service ``machine`` / ``human`` / ``low-volume``.

    The content-free counterpart of the paper's server-status forensics:
    rank candidates by traffic shape before probing them.
    """
    labels: Dict[str, str] = {}
    for service, series in series_per_service.items():
        if series.total < min_requests:
            labels[service] = "low-volume"
        elif series.is_machine_like(tolerance):
            labels[service] = "machine"
        else:
            labels[service] = "human"
    return labels
