"""Descriptor-ID → onion-address resolution.

The request logs harvested at the attacker's directories are keyed by
descriptor ID, not onion address.  Because the derivation is deterministic,
the attacker can invert it *for onions it knows*: "For each address in the
list we computed corresponding descriptor IDs for each day between 28
January 2013 and 8 February in order to deal with possible wrong time
settings of Tor clients" (Section V).

IDs that resolve to nothing belong to onions outside the harvested
database — in the paper's data a striking 80% of requests asked for
descriptors that never existed.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.descriptor_id import (
    DescriptorId,
    descriptor_index_entries_batch,
)
from repro.crypto.onion import OnionAddress
from repro.faults.retry import RetryPolicy, fetch_descriptor_with_retry
from repro.faults.taxonomy import FailureCategory, FailureTaxonomy
from repro.obs.scope import Observer, ensure_observer
from repro.parallel import SHARDS_PER_WORKER, pmap, resolve_workers, shard_bounds
from repro.sim.clock import DAY, Timestamp


@dataclass
class ResolutionResult:
    """Outcome of resolving a harvested request-count table."""

    requests_per_onion: Dict[OnionAddress, int] = field(default_factory=dict)
    resolved_ids: int = 0
    unresolved_ids: int = 0
    resolved_requests: int = 0
    unresolved_requests: int = 0
    id_to_onion: Dict[DescriptorId, OnionAddress] = field(default_factory=dict)

    @property
    def total_unique_ids(self) -> int:
        """Distinct descriptor IDs in the harvest."""
        return self.resolved_ids + self.unresolved_ids

    @property
    def resolved_onion_count(self) -> int:
        """Distinct onion addresses the IDs resolved to."""
        return len(self.requests_per_onion)

    @property
    def phantom_request_fraction(self) -> float:
        """Share of request volume that resolved to nothing."""
        total = self.resolved_requests + self.unresolved_requests
        return self.unresolved_requests / total if total else 0.0


@dataclass
class ResolutionVerification:
    """Which resolved onions still had a fetchable descriptor when probed.

    The paper's popularity ranking is only as good as the resolution behind
    it; descriptor churn between harvest and analysis silently shrinks the
    resolvable set.  Verification re-probes each resolved onion (optionally
    with retries) and splits the outcome into still-resolvable vs lost.
    """

    checked: int = 0
    still_resolvable: int = 0
    lost: int = 0
    #: Total descriptor-fetch attempts spent, retries included.
    attempts: int = 0
    failures: FailureTaxonomy = field(default_factory=FailureTaxonomy)

    @property
    def lost_fraction(self) -> float:
        """Share of resolved onions whose descriptor was gone."""
        return self.lost / self.checked if self.checked else 0.0


class DescriptorResolver:
    """Inverts descriptor IDs over a harvested onion database."""

    def __init__(
        self,
        onion_database: Iterable[OnionAddress],
        window_start: Timestamp,
        window_end: Timestamp,
        workers: Optional[int] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        """Precompute every descriptor ID each onion uses in the window.

        The index covers every day in ``[window_start, window_end]`` × both
        replicas — exactly the paper's multi-day derivation.  Each entry
        also records the ID's *validity period* (when the service actually
        used it), which rate normalisation needs.

        The per-onion SHA-1 derivations are independent, so they fan out
        through :func:`repro.parallel.pmap` (``workers`` defaults to
        ``$REPRO_WORKERS``, then 1); the merge walks onions in database
        order, so the index is identical at every worker count.

        Two *different* onions deriving the same descriptor ID is a SHA-1
        collision the paper's attacker would also have suffered; instead
        of silently overwriting (and so dropping an onion from the index),
        the first claimant keeps the ID and every later claimant is
        recorded in :attr:`collisions`.
        """
        self.window = (window_start, window_end)
        self._observer = ensure_observer(observer)
        self._index: Dict[DescriptorId, OnionAddress] = {}
        self._validity: Dict[DescriptorId, Tuple[Timestamp, Timestamp]] = {}
        #: descriptor ID → every onion that derived it, in database order
        #: (first entry owns the index slot).
        self.collisions: Dict[DescriptorId, List[OnionAddress]] = {}
        onions = list(onion_database)
        self.database_size = len(onions)
        # Fan whole *chunks* of the database through the batched kernel so
        # each pmap item amortises the shared secret-id-part table and its
        # pickle round-trip over many onions.  Per-onion output does not
        # depend on chunking, so the merged index is byte-identical at any
        # worker count — including against the old per-onion fan-out.
        chunk_bounds = shard_bounds(
            len(onions), resolve_workers(workers) * SHARDS_PER_WORKER
        )
        chunks = [onions[lo:hi] for lo, hi in chunk_bounds]
        entry_lists = [
            entries
            for chunk_entries in pmap(
                functools.partial(
                    descriptor_index_entries_batch,
                    start=window_start,
                    end=window_end,
                ),
                chunks,
                workers=workers,
            )
            for entries in chunk_entries
        ]
        for onion, entries in zip(onions, entry_lists):
            for desc, period_start in entries:
                owner = self._index.get(desc)
                if owner is not None:
                    if owner != onion:
                        self.collisions.setdefault(desc, [owner]).append(onion)
                    continue
                self._index[desc] = onion
                self._validity[desc] = (period_start, period_start + DAY)
        self._observer.gauge("resolver_database_size", self.database_size)
        self._observer.gauge("resolver_index_size", len(self._index))
        self._observer.gauge("resolver_collisions", self.collision_count)

    @property
    def index_size(self) -> int:
        """Number of (descriptor ID → onion) entries derived."""
        return len(self._index)

    @property
    def collision_count(self) -> int:
        """(descriptor ID, onion) claims lost to an earlier claimant."""
        return sum(len(claimants) - 1 for claimants in self.collisions.values())

    def lookup(self, desc_id: DescriptorId) -> OnionAddress | None:
        """Resolve one descriptor ID, or None."""
        return self._index.get(desc_id)

    def validity_of(
        self, desc_id: DescriptorId
    ) -> Optional[Tuple[Timestamp, Timestamp]]:
        """[start, end) during which a resolvable ID was in service."""
        return self._validity.get(desc_id)

    def resolve(
        self, request_counts: Dict[DescriptorId, List[int]]
    ) -> ResolutionResult:
        """Resolve a harvest's ``descriptor_id -> [found, missing]`` table."""
        result = ResolutionResult()
        for desc_id, (found, missing) in request_counts.items():
            count = found + missing
            onion = self._index.get(desc_id)
            if onion is None:
                result.unresolved_ids += 1
                result.unresolved_requests += count
                continue
            result.resolved_ids += 1
            result.resolved_requests += count
            result.id_to_onion[desc_id] = onion
            result.requests_per_onion[onion] = (
                result.requests_per_onion.get(onion, 0) + count
            )
        return result

    def verify_resolution(
        self,
        resolution: ResolutionResult,
        transport,
        when: Timestamp,
        retry_policy: Optional[RetryPolicy] = None,
        workers: Optional[int] = None,
    ) -> ResolutionVerification:
        """Re-probe every resolved onion's descriptor at time ``when``.

        With a retry policy, a fetch that fails and then succeeds within the
        re-fetch budget counts as transient (and still resolvable); one that
        stays gone is permanent churn.  The probe closure captures the live
        transport, so :func:`repro.parallel.pmap` keeps it in-process and in
        sorted-onion order — byte-identical at every worker count.
        """
        onions = sorted(resolution.requests_per_onion)
        obs = self._observer

        def check(onion):
            if retry_policy is None:
                return transport.has_descriptor(onion, when), 1
            return fetch_descriptor_with_retry(
                transport, onion, when, retry_policy, observer=obs
            )

        verification = ResolutionVerification()
        for onion, (found, attempts) in zip(
            onions, pmap(check, onions, workers=workers)
        ):
            verification.checked += 1
            verification.attempts += attempts
            if found:
                verification.still_resolvable += 1
                if attempts > 1:
                    verification.failures.record(
                        FailureCategory.TRANSIENT_RECOVERED, attempts
                    )
            else:
                verification.lost += 1
                verification.failures.record(FailureCategory.PERMANENT, attempts)
            obs.count(
                "resolver_verified_total",
                result="still_resolvable" if found else "lost",
            )
        return verification

    def resolve_normalized(
        self,
        request_counts: Dict[DescriptorId, List[int]],
        normalizer,
    ) -> ResolutionResult:
        """Like :meth:`resolve` but scales each ID's raw count to a rate.

        ``normalizer(desc_id, found, missing, validity) -> float`` converts
        observed counts into a per-window rate (see
        :meth:`repro.trawl.harvest.RingHistory.normalized_rate`); resolved
        IDs carry their validity period so the normaliser can restrict
        coverage accounting to it.  Per-onion totals are rounded at the end.
        """
        result = ResolutionResult()
        per_onion: Dict[OnionAddress, float] = {}
        for desc_id, (found, missing) in request_counts.items():
            raw = found + missing
            onion = self._index.get(desc_id)
            if onion is None:
                result.unresolved_ids += 1
                result.unresolved_requests += raw
                continue
            rate = normalizer(desc_id, found, missing, self._validity.get(desc_id))
            result.resolved_ids += 1
            result.resolved_requests += raw
            result.id_to_onion[desc_id] = onion
            per_onion[onion] = per_onion.get(onion, 0.0) + rate
        result.requests_per_onion = {
            onion: round(rate) for onion, rate in per_onion.items()
        }
        return result
