"""Command-line interface: regenerate any of the paper's artifacts.

::

    python -m repro fig1   --scale 0.1
    python -m repro table1 --scale 0.1 --seed 3
    python -m repro fig2   --scale 0.1
    python -m repro table2 --scale 0.05 --sweep-hours 6
    python -m repro fig3   --clients 2000 --guards 12
    python -m repro sec7   --scale 0.3
    python -m repro harvest --scale 0.05 --ips 20
    python -m repro chaos  --scale 0.02 --rates 0,0.05,0.1
    python -m repro all    --scale 0.05 --fault-profile moderate
    python -m repro obs    --scale 0.02 --fault-profile moderate
    python -m repro all    --scale 0.05 --store .repro-store
    python -m repro store ls --store .repro-store
    python -m repro bench run --tier smoke --out /tmp/bench
    python -m repro bench compare baseline/ . --threshold 20
    python -m repro crashtest --scale 0.02 --crash-profile moderate

``--json PATH`` archives the paper-vs-measured report via :mod:`repro.io`.
``--metrics-out PATH`` (or ``$REPRO_METRICS``) additionally archives the
run's deterministic metrics/span snapshot (see :mod:`repro.obs`).
``--store DIR`` (or ``$REPRO_STORE``) checkpoints stage artifacts through
:mod:`repro.store`; a warm re-run replays every cached stage and emits
byte-identical reports.
Scale 1.0 is the paper's full size; small scales run in seconds.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro import io as repro_io
from repro.analysis.report import ExperimentReport


def _add_common(parser: argparse.ArgumentParser, scale_default: float = 0.1) -> None:
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=scale_default,
        help="world scale (1.0 = the paper's 39,824 onions)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="archive the report as JSON"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "deterministic parallel workers (default: $REPRO_WORKERS, then 1; "
            "any value produces byte-identical output)"
        ),
    )


def _add_fault_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-profile",
        default=None,
        metavar="NAME",
        help=(
            "fault-injection profile: none, light, moderate, heavy "
            "(default: $REPRO_FAULTS, then none; deterministic at any "
            "worker count)"
        ),
    )


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "checkpoint stage artifacts in this store directory (default: "
            "$REPRO_STORE, then off; warm re-runs skip cached stages and "
            "emit byte-identical reports)"
        ),
    )


def _open_store(args):
    """The run's ArtifactStore, or None when no store is configured."""
    from repro.store import open_store

    return open_store(getattr(args, "store", None))


def _add_metrics_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write the run's metrics/span snapshot here (default: "
            "$REPRO_METRICS, then off; .json extension selects JSON, "
            "anything else the Prometheus-style text rendering)"
        ),
    )


def _write_metrics(observer, args) -> None:
    """Write the observer snapshot when --metrics-out / $REPRO_METRICS asks."""
    from repro.obs import resolve_metrics_out, write_snapshot

    path = resolve_metrics_out(getattr(args, "metrics_out", None))
    if path is None or observer is None:
        return
    write_snapshot(observer, path)
    print(f"[metrics snapshot written to {path}]")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Content and popularity analysis of Tor hidden "
            "services' (ICDCS 2014): regenerate any table or figure."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, text in (
        ("fig1", "Fig 1: open-ports distribution + TLS findings"),
        ("table1", "Table I: HTTP(S)-connectable destinations"),
        ("fig2", "Fig 2: topic distribution + language statistics"),
    ):
        command = sub.add_parser(name, help=text)
        _add_common(command)
        _add_fault_profile(command)
        _add_metrics_out(command)
        _add_store(command)

    table2 = sub.add_parser("table2", help="Table II: popularity ranking")
    _add_common(table2, scale_default=0.05)
    _add_store(table2)
    table2.add_argument("--sweep-hours", type=int, default=6)
    table2.add_argument("--rotation-hours", type=int, default=1)
    table2.add_argument("--relays-per-ip", type=int, default=16)
    table2.add_argument("--thinning", type=float, default=1.0)
    table2.add_argument("--top", type=int, default=30, help="ranking rows to print")

    fig3 = sub.add_parser("fig3", help="Fig 3: client deanonymisation geomap")
    fig3.add_argument("--seed", type=int, default=0)
    fig3.add_argument("--relays", type=int, default=400)
    fig3.add_argument("--guards", type=int, default=12)
    fig3.add_argument("--clients", type=int, default=1500)
    fig3.add_argument("--days", type=int, default=2)
    fig3.add_argument("--json", metavar="PATH", default=None)

    sec6 = sub.add_parser("sec6", help="§VI: Silk Road seller identification")
    sec6.add_argument("--seed", type=int, default=0)
    sec6.add_argument("--relays", type=int, default=400)
    sec6.add_argument("--guards", type=int, default=14)
    sec6.add_argument("--buyers", type=int, default=800)
    sec6.add_argument("--sellers", type=int, default=40)
    sec6.add_argument("--days", type=int, default=7)
    sec6.add_argument("--json", metavar="PATH", default=None)

    sec7 = sub.add_parser("sec7", help="§VII: Silk Road tracking detection")
    _add_common(sec7, scale_default=0.25)
    _add_store(sec7)

    harvest = sub.add_parser("harvest", help="shadow-relay harvest validation")
    _add_common(harvest, scale_default=0.05)
    harvest.add_argument("--ips", type=int, default=20)
    harvest.add_argument("--relays-per-ip", type=int, default=16)
    harvest.add_argument("--sweep-hours", type=int, default=10)
    _add_store(harvest)

    everything = sub.add_parser("all", help="run every experiment (small scale)")
    _add_common(everything, scale_default=0.05)
    _add_fault_profile(everything)
    _add_metrics_out(everything)
    _add_store(everything)

    store = sub.add_parser(
        "store",
        help="inspect or maintain an artifact store (ls, gc, verify)",
        description=(
            "Operate on a repro.store directory: 'ls' renders the run "
            "ledger and indexed artifacts, 'gc' deletes objects no index "
            "entry references, 'verify' re-hashes every object (exits 1 "
            "on corruption) and cross-checks each cached stage's recorded "
            "code fingerprint against the module tuple the source tree "
            "declares today, reporting drift informationally."
        ),
    )
    store.add_argument("action", choices=("ls", "gc", "verify"))
    store.add_argument(
        "--keep-epochs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "gc only: ledger-aware retention — keep the newest N ledgered "
            "runs' artifacts (a service epoch ledgers as one run), unindex "
            "everything older, then sweep unreferenced objects"
        ),
    )
    store.add_argument(
        "--src",
        default="src/repro",
        metavar="PATH",
        help=(
            "source tree the fingerprint-drift check resolves stage "
            "declarations from (verify only; skipped if absent)"
        ),
    )
    _add_store(store)

    obs = sub.add_parser(
        "obs",
        help="run the small pipeline and print its metrics/span snapshot",
        description=(
            "Runs scan -> certificates -> crawl -> classify at the given "
            "scale and prints the deterministic observability snapshot "
            "(byte-identical at every --workers value)."
        ),
    )
    obs.add_argument("--seed", type=int, default=0, help="master RNG seed")
    obs.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="world scale (1.0 = the paper's 39,824 onions)",
    )
    obs.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "deterministic parallel workers (default: $REPRO_WORKERS, then 1; "
            "any value produces byte-identical output)"
        ),
    )
    _add_fault_profile(obs)
    _add_metrics_out(obs)
    obs.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="snapshot rendering printed to stdout",
    )

    chaos = sub.add_parser(
        "chaos",
        help="chaos sweep: headline counts vs fault rate, ± retries",
    )
    _add_common(chaos, scale_default=0.02)
    chaos.add_argument(
        "--rates",
        default="0,0.02,0.05,0.1,0.2",
        metavar="R1,R2,...",
        help="comma-separated fault rates to sweep",
    )
    chaos.add_argument("--scan-days", type=int, default=8)

    lint = sub.add_parser(
        "lint",
        help="check determinism & convention rules (REP001-REP014)",
        description=(
            "Static analysis over the given paths: seeded-RNG discipline, "
            "sim-clock usage, the repro.errors hierarchy, stable set "
            "ordering, import layering, raw-concurrency containment, "
            "ad-hoc instrumentation (use repro.obs, not print/perf_counter), "
            "artifact-write containment (use repro.io/repro.store, not "
            "raw open/json.dump), plus the whole-program analyses: RNG "
            "stream-label lineage (REP011), stage code-fingerprint "
            "coverage (REP012), pmap shard safety (REP013), and "
            "supervision containment (REP014: teardown interception is "
            "repro.supervise's alone). Exits 1 when findings remain."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories"
    )
    lint.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help=(
            "output format (json: one record per finding; sarif: "
            "byte-stable SARIF 2.1.0 for CI annotation upload)"
        ),
    )
    lint.add_argument(
        "--fix",
        action="store_true",
        help=(
            "apply the mechanical autofixes findings carry (REP005 sorted "
            "wrapping, REP012 module-tuple completion), then re-lint; "
            "exits 1 only if unfixable findings remain"
        ),
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule subset, e.g. REP001,REP003",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="record current findings as the new baseline and exit 0",
    )

    bench = sub.add_parser(
        "bench",
        help="run perf workloads / compare BENCH_*.json trajectories",
        description=(
            "The perf-regression plane: 'run' measures hot-path workloads "
            "with the shared warmup/repeat policy and appends each result "
            "to its BENCH_<name>.json trajectory; 'compare' diffs "
            "trajectories and exits 1 on a wall-time regression past the "
            "threshold or on a kernel checksum drift, 2 when the documents "
            "are not comparable (missing baseline, schema mismatch)."
        ),
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="measure workloads and append trajectory points"
    )
    bench_run.add_argument(
        "workloads",
        nargs="*",
        default=[],
        help="workload names (default: the hot-path workloads)",
    )
    bench_run.add_argument(
        "--tier",
        default="small",
        help="workload scale: smoke, small, or paper (default: small)",
    )
    bench_run.add_argument(
        "--kernels",
        default="scalar,batch",
        metavar="K1,K2",
        help="comma-separated kernels to measure (default: scalar,batch)",
    )
    bench_run.add_argument("--repeats", type=int, default=3)
    bench_run.add_argument("--warmup", type=int, default=1)
    bench_run.add_argument(
        "--label", default="", help="annotation stored on each point"
    )
    bench_run.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory holding the BENCH_*.json trajectories (default: .)",
    )
    bench_run.add_argument(
        "--text",
        action="store_true",
        help="also print each trajectory's table view",
    )

    bench_compare = bench_sub.add_parser(
        "compare", help="diff trajectories; non-zero exit gates CI"
    )
    bench_compare.add_argument(
        "baseline", help="baseline BENCH_*.json file or directory of them"
    )
    bench_compare.add_argument(
        "current", help="current BENCH_*.json file or directory of them"
    )
    bench_compare.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="wall-time slowdown tolerated before failing (default: 20)",
    )
    bench_compare.add_argument(
        "--report-only",
        action="store_true",
        help="print verdicts but always exit 0 (CI advisory mode)",
    )

    crashtest = sub.add_parser(
        "crashtest",
        help="prove crash-resume equivalence under an injected crash schedule",
        description=(
            "Runs the scan->certificates->crawl->classify campaign under "
            "the EpochSupervisor with deterministic process-death injection "
            "(repro.supervise), resuming each restart through store "
            "checkpoints, then runs the same campaign cold with no store "
            "and no crashes, and asserts the fig1/table1/fig2 reports are "
            "byte-identical.  Exits 1 on any byte difference, a degraded "
            "run, or fewer than --min-crashes injected deaths."
        ),
    )
    _add_common(crashtest, scale_default=0.02)
    _add_fault_profile(crashtest)
    _add_metrics_out(crashtest)
    crashtest.add_argument(
        "--crash-profile",
        default=None,
        metavar="NAME",
        help=(
            "crash schedule: none, light, moderate, heavy, or an explicit "
            "label@visit,label@visit schedule (default: $REPRO_CRASHES, "
            "then moderate)"
        ),
    )
    crashtest.add_argument(
        "--store",
        default=".repro-crashtest-store",
        metavar="DIR",
        help=(
            "scratch checkpoint store for the supervised run; wiped at the "
            "start of every invocation so each crashtest starts cold"
        ),
    )
    crashtest.add_argument(
        "--clean-json",
        default=None,
        metavar="PATH",
        help="archive the clean cold run's combined report document here",
    )
    crashtest.add_argument(
        "--manifest-out",
        default=None,
        metavar="PATH",
        help="archive the run's completeness manifest here",
    )
    crashtest.add_argument(
        "--min-crashes",
        type=int,
        default=5,
        metavar="N",
        help=(
            "require at least N injected crashes, at N distinct crash "
            "points, for the test to count (default: 5)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="measurement-as-a-service: run epochs, then serve the query API",
        description=(
            "Runs --epochs supervised harvest->scan->certificates->crawl->"
            "classify->popularity epochs against a deterministically "
            "evolving world, checkpointing every stage through the store "
            "(epoch-pinned ledger runs, warm resume after crashes), then "
            "serves the per-epoch query views — rankings, port histograms, "
            "topic breakdowns, dossiers, deltas — over HTTP/JSON with "
            "digest ETags and conditional 304s."
        ),
    )
    _add_common(serve, scale_default=0.05)
    _add_fault_profile(serve)
    _add_metrics_out(serve)
    serve.add_argument(
        "--epochs",
        type=int,
        default=3,
        metavar="N",
        help="measurement epochs to compute before serving (default: 3)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8750,
        metavar="PORT",
        help="HTTP port to bind (default: 8750)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="address to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--http-workers",
        type=int,
        default=8,
        metavar="N",
        help="bound on concurrently handled HTTP requests (default: 8)",
    )
    serve.add_argument(
        "--crash-profile",
        default=None,
        metavar="NAME",
        help=(
            "per-epoch crash schedule: none, light, moderate, heavy, or an "
            "explicit label@visit,... schedule (default: $REPRO_CRASHES, "
            "then none); epochs warm-resume through the store after every "
            "injected death"
        ),
    )
    serve.add_argument(
        "--sweep-hours",
        type=int,
        default=12,
        metavar="H",
        help="harvest/popularity sweep length per epoch (default: 12)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "epoch checkpoint store (default: $REPRO_STORE, then "
            ".repro-service-store); a warm store replays finished epochs "
            "instead of recomputing them"
        ),
    )
    serve.add_argument(
        "--no-serve",
        action="store_true",
        help="compute the epochs and exit without binding the port",
    )

    return parser


def _emit(report: ExperimentReport, extra: str = "", json_path: Optional[str] = None) -> None:
    print(report.format())
    if extra:
        print()
        print(extra)
    if json_path:
        repro_io.save_json(repro_io.report_to_dict(report), json_path)
        print(f"\n[report archived to {json_path}]")


def _run_fig1(args) -> ExperimentReport:
    from repro.experiments import run_fig1

    result = run_fig1(
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        fault_profile=args.fault_profile,
        store=_open_store(args),
    )
    _emit(result.report, result.format_figure(), args.json)
    _write_metrics(result.pipeline.observer if result.pipeline else None, args)
    return result.report


def _run_table1(args) -> ExperimentReport:
    from repro.experiments import run_table1

    result = run_table1(
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        fault_profile=args.fault_profile,
        store=_open_store(args),
    )
    _emit(result.report, result.format_table(), args.json)
    _write_metrics(result.pipeline.observer if result.pipeline else None, args)
    return result.report


def _run_fig2(args) -> ExperimentReport:
    from repro.experiments import run_fig2

    result = run_fig2(
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        fault_profile=args.fault_profile,
        store=_open_store(args),
    )
    _emit(result.report, result.format_figure(), args.json)
    _write_metrics(result.pipeline.observer if result.pipeline else None, args)
    return result.report


def _run_chaos(args) -> ExperimentReport:
    from repro.errors import FaultConfigError
    from repro.experiments import run_chaos_sweep

    try:
        rates = [
            float(token) for token in args.rates.split(",") if token.strip()
        ]
    except ValueError as exc:
        raise FaultConfigError(
            f"--rates must be comma-separated floats: {exc}"
        ) from exc
    result = run_chaos_sweep(
        seed=args.seed,
        scale=args.scale,
        fault_rates=rates,
        workers=args.workers,
        scan_days=args.scan_days,
    )
    _emit(result.report, result.format_table(), args.json)
    return result.report


def _run_table2(args) -> ExperimentReport:
    from repro.experiments import run_table2

    result = run_table2(
        seed=args.seed,
        scale=args.scale,
        sweep_hours=args.sweep_hours,
        rotation_interval_hours=args.rotation_hours,
        relays_per_ip=args.relays_per_ip,
        thinning=args.thinning,
        workers=args.workers,
        store=_open_store(args),
    )
    _emit(result.report, result.ranking.format_table(limit=args.top), args.json)
    return result.report


def _run_fig3(args) -> ExperimentReport:
    from repro.experiments import run_fig3

    result = run_fig3(
        seed=args.seed,
        honest_relays=args.relays,
        attacker_guards=args.guards,
        client_count=args.clients,
        observation_days=args.days,
    )
    _emit(result.report, result.format_map(), args.json)
    return result.report


def _run_sec6(args) -> ExperimentReport:
    from repro.experiments import run_sec6

    result = run_sec6(
        seed=args.seed,
        honest_relays=args.relays,
        attacker_guards=args.guards,
        buyer_count=args.buyers,
        seller_count=args.sellers,
        observation_days=args.days,
    )
    _emit(result.report, json_path=args.json)
    return result.report


def _run_sec7(args) -> ExperimentReport:
    from repro.experiments import run_sec7

    result = run_sec7(
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        store=_open_store(args),
    )
    _emit(result.report, json_path=args.json)
    return result.report


def _run_harvest(args) -> ExperimentReport:
    from repro.experiments import run_harvest

    result = run_harvest(
        seed=args.seed,
        scale=args.scale,
        ip_count=args.ips,
        relays_per_ip=args.relays_per_ip,
        sweep_hours=args.sweep_hours,
        store=_open_store(args),
    )
    _emit(result.report, json_path=args.json)
    return result.report


def _run_all(args) -> ExperimentReport:
    from repro.experiments import (
        run_fig1,
        run_fig2,
        run_fig3,
        run_harvest,
        run_sec7,
        run_table1,
        run_table2,
    )
    from repro.experiments.pipeline import MeasurementPipeline

    # One store serves the whole run: the pipeline stages and the
    # table2/sec7/harvest experiments all checkpoint into it, so a warm
    # re-run recomputes nothing (fig3/sec6 are seconds-cheap and uncached).
    store = _open_store(args)
    pipeline = MeasurementPipeline(
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        fault_profile=args.fault_profile,
        store=store,
    )
    summary = ExperimentReport(experiment="all-experiments")
    stages = [
        ("fig1", lambda: run_fig1(pipeline=pipeline)),
        ("table1", lambda: run_table1(pipeline=pipeline)),
        ("fig2", lambda: run_fig2(pipeline=pipeline)),
        (
            "table2",
            lambda: run_table2(
                seed=args.seed,
                scale=args.scale,
                sweep_hours=6,
                rotation_interval_hours=1,
                relays_per_ip=16,
                workers=args.workers,
                store=store,
            ),
        ),
        ("fig3", lambda: run_fig3(seed=args.seed, honest_relays=300, client_count=800)),
        (
            "sec7",
            lambda: run_sec7(
                seed=args.seed,
                scale=max(0.1, args.scale * 4),
                workers=args.workers,
                store=store,
            ),
        ),
        (
            "harvest",
            lambda: run_harvest(
                seed=args.seed,
                scale=args.scale,
                ip_count=16,
                relays_per_ip=16,
                store=store,
            ),
        ),
    ]
    for name, runner in stages:
        # Monotonic, not wall-clock (REP003): this measures elapsed runtime
        # only and must never feed simulated time.
        started = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - started
        print(result.report.format())
        print(f"[{name} done in {elapsed:.1f}s]\n")
        summary.add(f"{name} max rel. error", None, round(result.report.max_error(), 3))
    _emit(summary, json_path=args.json)
    _write_metrics(pipeline.observer, args)
    return summary


def _run_obs(args) -> int:
    from repro.experiments.pipeline import MeasurementPipeline
    from repro.obs import render_json, render_text

    pipeline = MeasurementPipeline(
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        fault_profile=args.fault_profile,
    )
    pipeline.scan()
    pipeline.certificates()
    pipeline.crawl()
    pipeline.classify()
    if args.format == "json":
        print(render_json(pipeline.observer))
    else:
        print(render_text(pipeline.observer))
    _write_metrics(pipeline.observer, args)
    return 0


def _run_store(args) -> int:
    from repro.store.admin import gc, ls_lines, verify

    store = _open_store(args)
    if store is None:
        print(
            "repro store: no store configured (use --store DIR or $REPRO_STORE)",
            file=sys.stderr,
        )
        return 2
    if args.action == "ls":
        for line in ls_lines(store):
            print(line)
        return 0
    if args.action == "gc":
        if args.keep_epochs is not None:
            from repro.errors import StoreError
            from repro.store.admin import retain_recent_runs

            try:
                unindexed, removed, freed = retain_recent_runs(
                    store, args.keep_epochs
                )
            except StoreError as exc:
                print(f"repro store: error: {exc}", file=sys.stderr)
                return 2
            print(
                f"[gc: retired {unindexed} index entr(ies), removed "
                f"{removed} object(s), freed {freed} bytes; kept newest "
                f"{args.keep_epochs} run(s)]"
            )
            return 0
        removed, freed = gc(store)
        print(f"[gc: removed {removed} object(s), freed {freed} bytes]")
        return 0
    problems = verify(store)
    for problem in problems:
        print(problem)
    drift: List[str] = []
    if os.path.isdir(args.src):
        from repro.devtools.storecheck import fingerprint_drift

        drift = fingerprint_drift(store, (args.src,))
        for line in drift:
            print(line)
    print(f"[verify: {len(problems)} problem(s), {len(drift)} drifted]")
    # Drift is informational — the artifacts are intact, just older than
    # the code; only corruption affects the exit code.
    return 0 if not problems else 1


def _run_lint(args) -> int:
    import json

    from repro.devtools import run_lint
    from repro.devtools.astcache import AstCache
    from repro.devtools.autofix import apply_fixes
    from repro.devtools.baseline import write_baseline
    from repro.devtools.sarif import render_sarif
    from repro.errors import ConfigError

    rule_ids = None
    if args.rules:
        rule_ids = [token.strip() for token in args.rules.split(",") if token.strip()]
    fixed_files: List[str] = []
    try:
        cache = AstCache()
        report = run_lint(
            args.paths, rule_ids=rule_ids, baseline_path=args.baseline, cache=cache
        )
        if args.fix:
            # Apply, invalidate only the rewritten parses, re-lint; repeat
            # while progress is made (a fix can unblock another), bounded
            # so a misbehaving fix can never loop forever.
            for _ in range(5):
                result = apply_fixes(report.findings)
                if not result.applied:
                    break
                fixed_files.extend(result.files)
                for path in result.files:
                    cache.invalidate(path)
                report = run_lint(
                    args.paths,
                    rule_ids=rule_ids,
                    baseline_path=args.baseline,
                    cache=cache,
                )
        if args.write_baseline is not None:
            recorded = write_baseline(args.write_baseline, report.findings)
            print(f"[baseline: {recorded} finding(s) recorded to {args.write_baseline}]")
            return 0
    except ConfigError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.format == "sarif":
            sys.stdout.write(render_sarif(report.findings))
        elif args.format == "json":
            print(
                json.dumps(
                    [finding.to_dict() for finding in report.findings], indent=2
                )
            )
        else:
            for finding in report.findings:
                print(finding.format())
            summary = (
                f"[{report.files_scanned} file(s) scanned, "
                f"{len(report.findings)} finding(s)"
            )
            if fixed_files:
                summary += f", {len(sorted(set(fixed_files)))} file(s) fixed"
            if report.suppressed:
                summary += f", {report.suppressed} suppressed"
            if report.baselined:
                summary += f", {report.baselined} baselined"
            print(summary + "]")
    except BrokenPipeError:
        # Output piped into e.g. ``head``; the findings still decide the
        # exit code.  Detach stdout so interpreter teardown stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0 if report.ok else 1


def _bench_run(args) -> int:
    import pathlib

    from repro.bench import (
        HOT_PATH_WORKLOADS,
        append_point,
        render_trajectory_text,
        run_workload,
        trajectory_path,
    )

    pathlib.Path(args.out).mkdir(parents=True, exist_ok=True)
    names = list(args.workloads) or list(HOT_PATH_WORKLOADS)
    kernels = [token.strip() for token in args.kernels.split(",") if token.strip()]
    for name in names:
        path = trajectory_path(name, args.out)
        for kernel in kernels:
            record = run_workload(
                name,
                tier=args.tier,
                kernel=kernel,
                repeats=args.repeats,
                warmup=args.warmup,
                label=args.label,
            )
            trajectory = append_point(path, record)
            print(
                f"{name} [{args.tier}/{kernel}] "
                f"min {record.wall.min_seconds:.4f}s over {record.repeats} "
                f"repeat(s), {record.items} items -> {path}"
            )
        if args.text:
            print(render_trajectory_text(trajectory))
    return 0


def _bench_compare(args) -> int:
    import pathlib

    from repro.bench import (
        EXIT_NOT_COMPARABLE,
        EXIT_OK,
        EXIT_REGRESSION,
        compare_trajectories,
        load_trajectory,
    )
    from repro.bench.compare import DEFAULT_THRESHOLD_PCT
    from repro.errors import BenchError

    threshold = DEFAULT_THRESHOLD_PCT if args.threshold is None else args.threshold
    baseline_root = pathlib.Path(args.baseline)
    current_root = pathlib.Path(args.current)
    if current_root.is_dir():
        pairs = [
            (baseline_root / path.name, path)
            for path in sorted(current_root.glob("BENCH_*.json"))
        ]
        if not pairs:
            print(f"no BENCH_*.json trajectories under {current_root}")
            return EXIT_OK if args.report_only else EXIT_NOT_COMPARABLE
    else:
        baseline_path = (
            baseline_root / current_root.name
            if baseline_root.is_dir()
            else baseline_root
        )
        pairs = [(baseline_path, current_root)]

    # A broken code path (exit 1) outranks a broken harness (exit 2):
    # CI must fix the regression first either way.
    worst = EXIT_OK
    for baseline_path, current_path in pairs:
        try:
            result = compare_trajectories(
                load_trajectory(baseline_path),
                load_trajectory(current_path),
                threshold_pct=threshold,
            )
        except BenchError as exc:
            print(f"{current_path.name}: not comparable: {exc}")
            if worst != EXIT_REGRESSION:
                worst = EXIT_NOT_COMPARABLE
            continue
        print(f"== {current_path.name} (threshold {threshold:.0f}%) ==")
        print(result.describe())
        if result.exit_code == EXIT_REGRESSION:
            worst = EXIT_REGRESSION
        elif result.exit_code == EXIT_NOT_COMPARABLE and worst != EXIT_REGRESSION:
            worst = EXIT_NOT_COMPARABLE
    if args.report_only and worst != EXIT_OK:
        print(f"[report-only: would exit {worst}]")
        return EXIT_OK
    return worst


def _campaign_document(pipeline) -> dict:
    """The fig1/table1/fig2 reports of a completed pipeline, as one dict.

    Every stage is already computed (or supervised to completion), so the
    experiment runners only read; this is the document the crashtest
    byte-compares between the crashed-and-resumed run and the clean one.
    """
    from repro.experiments import run_fig1, run_fig2, run_table1

    return {
        "fig1": repro_io.report_to_dict(run_fig1(pipeline=pipeline).report),
        "table1": repro_io.report_to_dict(run_table1(pipeline=pipeline).report),
        "fig2": repro_io.report_to_dict(run_fig2(pipeline=pipeline).report),
    }


def _run_crashtest(args) -> int:
    import json
    import pathlib
    import shutil

    from repro.experiments.pipeline import MeasurementPipeline
    from repro.obs.scope import Observer
    from repro.store import ArtifactStore
    from repro.supervise import (
        CRASHES_ENV,
        PIPELINE_STAGES,
        EpochSupervisor,
        build_crash_plan,
    )

    # --crash-profile, then $REPRO_CRASHES, then moderate: an inert plan
    # would make the whole exercise vacuous, so the fallback injects.
    spec = args.crash_profile or os.environ.get(CRASHES_ENV, "").strip() or "moderate"
    plan = build_crash_plan(spec, seed=args.seed)

    store_root = pathlib.Path(args.store)
    if store_root.exists():
        # The scratch store is this command's own working directory (see
        # --store help); a stale warm store would replay every stage and
        # dodge the commit-point crashes the test exists to inject.
        shutil.rmtree(store_root)

    supervisor_observer = Observer(name="crashtest")
    supervisor = EpochSupervisor(plan, observer=supervisor_observer)

    def factory(crash_points, quarantine):
        # A fresh pipeline AND a fresh store handle per incarnation — a
        # real crash loses all process state; only the store directory
        # survives, exactly as here.
        return MeasurementPipeline(
            seed=args.seed,
            scale=args.scale,
            workers=args.workers,
            fault_profile=args.fault_profile,
            store=ArtifactStore(store_root),
            crash_point=crash_points,
            quarantine=quarantine,
        )

    outcome = supervisor.run(factory, stages=PIPELINE_STAGES)
    manifest = outcome.manifest

    failures: List[str] = []
    crash_count = outcome.crash_points.crash_count
    distinct = outcome.crash_points.distinct_points()
    if crash_count < args.min_crashes:
        failures.append(
            f"only {crash_count} crash(es) fired, need >= {args.min_crashes}"
        )
    if len(distinct) < args.min_crashes:
        failures.append(
            f"only {len(distinct)} distinct crash point(s) hit "
            f"({', '.join(distinct)}), need >= {args.min_crashes}"
        )

    crashed_doc = None
    equal = False
    if manifest.complete:
        crashed_doc = _campaign_document(outcome.pipeline)
        clean_pipeline = MeasurementPipeline(
            seed=args.seed,
            scale=args.scale,
            workers=args.workers,
            fault_profile=args.fault_profile,
        )
        for stage in PIPELINE_STAGES:
            getattr(clean_pipeline, stage)()
        clean_doc = _campaign_document(clean_pipeline)
        crashed_text = json.dumps(crashed_doc, indent=2, sort_keys=True)
        clean_text = json.dumps(clean_doc, indent=2, sort_keys=True)
        equal = crashed_text == clean_text
        if not equal:
            failures.append(
                "crashed-and-resumed reports are NOT byte-identical to the "
                "clean cold run"
            )
        if args.json:
            repro_io.save_json(crashed_doc, args.json)
            print(f"[supervised-run reports archived to {args.json}]")
        if args.clean_json:
            repro_io.save_json(clean_doc, args.clean_json)
            print(f"[clean-run reports archived to {args.clean_json}]")
    else:
        failures.append(
            "supervised run did not complete: " + "; ".join(manifest.summary_lines())
        )

    if args.manifest_out:
        repro_io.save_json(manifest.to_dict(), args.manifest_out)
        print(f"[completeness manifest archived to {args.manifest_out}]")

    summary = ExperimentReport(experiment="crashtest")
    summary.add("crashes injected", None, crash_count)
    summary.add("distinct crash points", None, len(distinct))
    summary.add("restarts used", None, manifest.restarts_used)
    summary.add("backoff sim-seconds", None, manifest.backoff_sim_seconds)
    summary.add("stages complete", None, len(manifest.completed_stages()))
    summary.add("reports byte-identical", None, int(equal))
    summary.note(
        f"crash plan '{plan.name}': "
        + (", ".join(f"{r.point}@{r.visit}" for r in plan.rules) or "(inert)")
    )
    if distinct:
        summary.note("crash points hit: " + ", ".join(distinct))
    summary.add_completeness(manifest)
    _emit(summary)
    _write_metrics(supervisor_observer, args)

    for failure in failures:
        print(f"crashtest: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"crashtest: OK — survived {crash_count} crash(es) at "
            f"{len(distinct)} distinct point(s); reports byte-identical"
        )
    return 1 if failures else 0


def _run_serve(args) -> int:
    from repro.errors import ConfigError
    from repro.obs.scope import Observer
    from repro.service import (
        EpochController,
        ServiceConfig,
        ServiceRouter,
        serve,
    )
    from repro.service.schema import SCHEMA_VERSION
    from repro.store import resolve_store_dir

    try:
        config = ServiceConfig(
            seed=args.seed,
            scale=args.scale,
            epochs=args.epochs,
            workers=args.workers,
            fault_profile=args.fault_profile,
            crash_profile=args.crash_profile,
            sweep_hours=args.sweep_hours,
        )
    except ConfigError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2

    store_root = resolve_store_dir(args.store) or ".repro-service-store"
    observer = Observer(name="service")
    controller = EpochController(config, store_root, observer=observer)
    records = controller.run()
    for record in records:
        print(
            f"[epoch {record.epoch}: run={record.run_id} "
            f"crashes={record.crashes} restarts={record.restarts} "
            f"sim_seconds={record.sim_seconds}]"
        )
    if args.json:
        repro_io.save_json(
            {
                "schema": SCHEMA_VERSION,
                "kind": "epochs",
                "epochs": [record.summary() for record in records],
            },
            args.json,
        )
        print(f"[epoch listing archived to {args.json}]")
    # Snapshot before binding: the epochs are the deterministic part, and a
    # daemon killed by signal (the normal way this command ends) would
    # otherwise never write one.
    _write_metrics(observer, args)

    router = ServiceRouter(controller.records, observer)
    if args.no_serve:
        print(f"[{len(records)} epoch(s) computed; store: {store_root}]")
        return 0
    server = serve(
        router, host=args.host, port=args.port, workers=args.http_workers
    )
    print(
        f"[serving on http://{args.host}:{args.port} — "
        f"{len(records)} epoch(s) ready]",
        flush=True,
    )
    server.serve_forever()
    return 0


def _run_bench(args) -> int:
    from repro.errors import BenchError

    try:
        if args.bench_command == "run":
            return _bench_run(args)
        return _bench_compare(args)
    except BenchError as exc:
        print(f"repro bench: error: {exc}", file=sys.stderr)
        return 2


_RUNNERS = {
    "fig1": _run_fig1,
    "table1": _run_table1,
    "fig2": _run_fig2,
    "chaos": _run_chaos,
    "table2": _run_table2,
    "fig3": _run_fig3,
    "sec6": _run_sec6,
    "sec7": _run_sec7,
    "harvest": _run_harvest,
    "all": _run_all,
    "obs": _run_obs,
    "store": _run_store,
    "lint": _run_lint,
    "bench": _run_bench,
    "crashtest": _run_crashtest,
    "serve": _run_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    result = _RUNNERS[args.command](args)
    return result if isinstance(result, int) else 0


if __name__ == "__main__":
    sys.exit(main())
