"""Descriptor publication scheduling.

Each service republishes at its own 24-hour period boundary (staggered by
the first byte of its permanent ID).  The scheduler drives republication on
an :class:`~repro.sim.engine.EventEngine`; experiments that advance in
coarse daily steps can instead call
:meth:`PublishScheduler.publish_due` directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from repro.crypto.keys import Fingerprint
from repro.hs.service import HiddenService
from repro.sim.clock import Timestamp
from repro.sim.engine import EventEngine

if TYPE_CHECKING:  # avoid a circular import: tornet imports repro.hs.service
    from repro.tornet import TorNetwork


class PublishScheduler:
    """Keeps every online service's descriptors fresh.

    All three entry points batch the responsible-HSDir placement: one
    shared secret-part table plus one vectorised ring bisect per call
    covers the whole population, instead of two SHA-1s and two Python
    bisects per service.  Upload order, delivery targets, and every
    counter stay byte-identical to the scalar per-service loop.
    """

    def __init__(self, network: "TorNetwork", services: Iterable[HiddenService]) -> None:
        self.network = network
        self.services: List[HiddenService] = list(services)
        self._next_publish: Dict[int, Timestamp] = {}
        self._last_responsible: Dict[int, frozenset] = {}

    def _placements(
        self, targets: List[Tuple[int, HiddenService]], now: Timestamp
    ) -> Dict[int, List[List[Fingerprint]]]:
        """Batched per-replica placement for ``targets``, keyed by index."""
        if not targets:
            return {}
        per_replica = self.network.responsible_replica_lists_batch(
            [service.onion for _, service in targets], now
        )
        return {index: lists for (index, _), lists in zip(targets, per_replica)}

    def publish_initial(self, now: Timestamp) -> int:
        """Publish every online service once and prime the schedule."""
        online = [
            (index, service)
            for index, service in enumerate(self.services)
            if service.is_online(now)
        ]
        placements = self._placements(online, now)
        delivered = 0
        for index, service in enumerate(self.services):
            if service.is_online(now):
                delivered += self.network.publish_service(
                    service, now, responsible_per_replica=placements[index]
                )
            self._next_publish[index] = service.next_publish_after(now)
        return delivered

    def publish_due(self, now: Timestamp) -> int:
        """Republish services whose period boundary has passed.

        Idempotent per period: a service whose boundary has not passed since
        the previous call is skipped.
        """
        due_online = [
            (index, service)
            for index, service in enumerate(self.services)
            if self._next_publish.get(index) is not None
            and now >= self._next_publish[index]
            and service.is_online(now)
        ]
        placements = self._placements(due_online, now)
        delivered = 0
        for index, service in enumerate(self.services):
            due = self._next_publish.get(index)
            if due is None:
                self._next_publish[index] = service.next_publish_after(now)
                continue
            if now >= due:
                if service.is_online(now):
                    delivered += self.network.publish_service(
                        service, now, responsible_per_replica=placements[index]
                    )
                self._next_publish[index] = service.next_publish_after(now)
        return delivered

    def maintain(self, now: Timestamp) -> int:
        """Keep descriptors where they belong: period boundaries *and*
        responsible-set changes trigger republication.

        Real Tor hidden services re-upload whenever a new consensus changes
        their responsible directories.  This is the behaviour that lets the
        shadow-relay attack harvest descriptors from relays that entered the
        consensus mid-period.  Call once per consensus (hourly).
        """
        delivered = self.publish_due(now)
        online = [
            (index, service)
            for index, service in enumerate(self.services)
            if service.is_online(now)
        ]
        placements = self._placements(online, now)
        for index, service in online:
            replica_lists = placements[index]
            responsible = frozenset(
                fp for replica_fps in replica_lists for fp in replica_fps
            )
            if self._last_responsible.get(index) != responsible:
                delivered += self.network.publish_service(
                    service, now, responsible_per_replica=replica_lists
                )
                self._last_responsible[index] = responsible
        return delivered

    def attach_to_engine(self, engine: EventEngine, horizon: Timestamp) -> int:
        """Schedule per-service republish events up to ``horizon``.

        Returns the number of events scheduled.  Intended for fine-grained
        simulations; the measurement experiments use :meth:`publish_due`
        from their coarse phase loops.
        """
        scheduled = 0
        for service in self.services:
            due = service.next_publish_after(engine.now)
            while due <= horizon:
                engine.schedule_at(
                    due,
                    self._make_publish_callback(service),
                    label=f"publish:{service.onion}",
                )
                scheduled += 1
                due += 24 * 3600
        return scheduled

    def _make_publish_callback(self, service: HiddenService):
        def _publish() -> None:
            if service.is_online(self.network.clock.now):
                self.network.publish_service(service, self.network.clock.now)

        return _publish
