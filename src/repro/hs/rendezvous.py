"""The rendezvous protocol (Section II: "Other Tor users can connect to
them through so-called rendezvous points").

End-to-end connection establishment to a hidden service:

1. the client fetches the service's descriptor (introduction points inside);
2. the client picks a *rendezvous point* (any Fast relay), builds a circuit
   to it, and obtains a rendezvous cookie;
3. the client builds a circuit to one of the service's *introduction
   points* and sends INTRODUCE1 (rendezvous point + cookie);
4. the service builds its own circuit — through *its* guard — to the
   rendezvous point and the two circuits are joined.

The simulator models the path structure and the failure modes the paper's
measurements hinge on (stale descriptors, vanished introduction points),
not the cell cryptography.  The joined connection yields an
application-layer channel to the service's host, so a crawler could speak
HTTP over a fully-modelled rendezvous circuit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.client.circuits import Circuit, CircuitBuilder
from repro.crypto.keys import Fingerprint
from repro.crypto.onion import OnionAddress
from repro.errors import SimulationError
from repro.hs.service import HiddenService
from repro.net.endpoint import ConnectResult
from repro.relay.flags import RelayFlags
from repro.sim.clock import Timestamp

if TYPE_CHECKING:  # circular: tornet imports repro.hs
    from repro.tornet import TorNetwork


@dataclass(frozen=True)
class RendezvousCircuit:
    """A joined client↔service connection."""

    onion: OnionAddress
    rendezvous_point: Fingerprint
    client_circuit: Circuit
    service_circuit: Circuit
    established_at: Timestamp

    @property
    def client_guard(self) -> Fingerprint:
        """First hop on the client side."""
        return self.client_circuit.guard

    @property
    def service_guard(self) -> Fingerprint:
        """First hop on the service side — what the §II.B attack watches."""
        return self.service_circuit.guard

    def connect(
        self, network: "TorNetwork", port: int, rng: random.Random
    ) -> ConnectResult:
        """Open an application stream to ``port`` over the joined circuits."""
        host = None
        # The service side terminates at its own host; resolve through the
        # registry-free path: the service object carries its host.
        service = _service_registry_lookup(network, self.onion)
        if service is not None:
            host = service.host
        if host is None or not host.is_online(network.clock.now):
            from repro.net.endpoint import ConnectOutcome

            return ConnectResult(
                outcome=ConnectOutcome.UNREACHABLE,
                port=port,
                error_message="service host gone",
            )
        endpoint = host.endpoint_on(port)
        if endpoint is None:
            from repro.net.endpoint import ConnectOutcome

            return ConnectResult(
                outcome=ConnectOutcome.REFUSED,
                port=port,
                error_message="connection refused",
            )
        return endpoint.connect(rng)


# The rendezvous layer needs to reach service objects; TorNetwork tracks
# them when they publish (see RendezvousDirectory below).
def _service_registry_lookup(
    network: "TorNetwork", onion: OnionAddress
) -> Optional[HiddenService]:
    return getattr(network, "_rendezvous_services", {}).get(onion)


class RendezvousProtocol:
    """Drives connection establishment for one client identity."""

    def __init__(
        self,
        network: "TorNetwork",
        builder: CircuitBuilder,
        rng: random.Random,
    ) -> None:
        self.network = network
        self._builder = builder
        self._rng = rng
        self.introductions_attempted = 0
        self.failures: List[str] = []

    def register_service(self, service: HiddenService) -> None:
        """Make the service reachable for rendezvous (server side is up)."""
        registry = getattr(self.network, "_rendezvous_services", None)
        if registry is None:
            registry = {}
            setattr(self.network, "_rendezvous_services", registry)
        registry[service.onion] = service

    def pick_introduction_points(
        self, consensus, count: int = 3
    ) -> Tuple[str, ...]:
        """Service-side: choose introduction points (Stable relays)."""
        stable = consensus.with_flag(RelayFlags.STABLE)
        if len(stable) < count:
            stable = list(consensus.entries)
        picked = self._rng.sample(stable, min(count, len(stable)))
        return tuple(entry.fingerprint.hex() for entry in picked)

    def connect(
        self,
        onion: OnionAddress,
        client_guards,
        service: Optional[HiddenService] = None,
    ) -> Optional[RendezvousCircuit]:
        """Full client-side connection establishment.

        Returns None (recording the reason) when any stage fails: no
        descriptor, no usable introduction point, or the service no longer
        answers introductions.
        """
        network = self.network
        now = network.clock.now

        # 1. Fetch the descriptor.
        stored = network.fetch_onion(onion, self._rng, now=now)
        if stored is None:
            self.failures.append("no-descriptor")
            return None
        intro_fingerprints = [
            bytes.fromhex(ip) for ip in stored.introduction_points if ip
        ]
        if not intro_fingerprints:
            self.failures.append("no-introduction-points")
            return None

        # 2. Rendezvous point: any Fast relay not otherwise involved.
        consensus = network.consensus
        candidates = [
            entry.fingerprint
            for entry in consensus.with_flag(RelayFlags.FAST)
            if entry.fingerprint not in intro_fingerprints
        ]
        if not candidates:
            self.failures.append("no-rendezvous-candidates")
            return None
        rendezvous_point = self._rng.choice(candidates)
        client_builder = self._builder
        client_circuit = client_builder.build(
            consensus, purpose="rendezvous", final_hop=rendezvous_point
        )

        # 3. INTRODUCE1 via a live introduction point.
        intro_ok = False
        self._rng.shuffle(intro_fingerprints)
        for intro in intro_fingerprints:
            self.introductions_attempted += 1
            if consensus.entry_for(intro) is not None:
                intro_ok = True
                break
        if not intro_ok:
            self.failures.append("introduction-points-gone")
            return None

        # 4. Service side builds to the rendezvous point through its guard.
        service = service or _service_registry_lookup(network, onion)
        if service is None or not service.is_online(now):
            self.failures.append("service-offline")
            return None
        service_guards = service.ensure_guards(network, self._rng)
        service_builder = CircuitBuilder(service_guards, self._rng)
        service_circuit = service_builder.build(
            consensus, purpose="rendezvous-service", final_hop=rendezvous_point
        )

        return RendezvousCircuit(
            onion=onion,
            rendezvous_point=rendezvous_point,
            client_circuit=client_circuit,
            service_circuit=service_circuit,
            established_at=now,
        )


def connect_to_service(
    network: "TorNetwork",
    client,
    onion: OnionAddress,
    rng: random.Random,
) -> Optional[RendezvousCircuit]:
    """Convenience: full rendezvous connect for a :class:`TorClient`."""
    if not client.guards.fingerprints:
        raise SimulationError("client has no guards; call refresh_guards first")
    builder = CircuitBuilder(client.guards, rng)
    protocol = RendezvousProtocol(network, builder, rng)
    return protocol.connect(onion, client.guards)
