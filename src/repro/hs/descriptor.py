"""Hidden-service descriptors.

A v2 descriptor carries the service's public key and introduction points,
is identified by a rotating descriptor ID, and is published in two replicas.
The descriptor ID is *not* the onion address — "while the onion address
remains fixed, the descriptor ID changes every 24 hours and is derived from
the onion address" (Section V, footnote 6) — which is why resolving harvested
request logs back to onion addresses requires re-deriving IDs per day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.descriptor_id import (
    REPLICAS,
    DescriptorId,
    descriptor_id,
)
from repro.crypto.keys import KeyPair
from repro.crypto.onion import OnionAddress, onion_address_from_key
from repro.errors import DescriptorError
from repro.hsdir.directory import StoredDescriptor
from repro.sim.clock import Timestamp


@dataclass(frozen=True)
class HSDescriptor:
    """One replica of a service's descriptor for one time period."""

    onion: OnionAddress
    descriptor_id: DescriptorId
    replica: int
    public_der: bytes
    published_at: Timestamp
    introduction_points: Tuple[str, ...] = ()

    def verify(self) -> bool:
        """Check internal consistency: the ID must derive from the key.

        A directory (or a harvester) can recompute the expected descriptor
        ID from the embedded public key and the publication time; mismatch
        means a malformed or forged upload.
        """
        derived_onion = onion_address_from_key(self.public_der)
        if derived_onion != self.onion:
            return False
        expected = descriptor_id(self.onion, self.published_at, self.replica)
        return expected == self.descriptor_id

    def to_stored(self) -> StoredDescriptor:
        """Convert to the directory-side representation."""
        return StoredDescriptor(
            descriptor_id=self.descriptor_id,
            public_der=self.public_der,
            replica=self.replica,
            published_at=self.published_at,
            introduction_points=self.introduction_points,
        )


def make_descriptors(
    keypair: KeyPair,
    now: Timestamp,
    introduction_points: Tuple[str, ...] = (),
) -> List[HSDescriptor]:
    """Build both replica descriptors for the period containing ``now``."""
    if not keypair.public_der:
        raise DescriptorError("descriptor needs key material")
    onion = onion_address_from_key(keypair.public_der)
    return [
        HSDescriptor(
            onion=onion,
            descriptor_id=descriptor_id(onion, now, replica),
            replica=replica,
            public_der=keypair.public_der,
            published_at=int(now),
            introduction_points=introduction_points,
        )
        for replica in range(REPLICAS)
    ]
