"""Hidden services: identity, descriptors, publication lifecycle."""

from repro.hs.descriptor import HSDescriptor, make_descriptors
from repro.hs.service import HiddenService
from repro.hs.publisher import PublishScheduler
from repro.hs.rendezvous import (
    RendezvousCircuit,
    RendezvousProtocol,
    connect_to_service,
)

__all__ = [
    "HSDescriptor",
    "make_descriptors",
    "HiddenService",
    "PublishScheduler",
    "RendezvousCircuit",
    "RendezvousProtocol",
    "connect_to_service",
]
